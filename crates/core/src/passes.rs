//! Classic cleanup passes run around the TensorSSA conversion: dead code
//! elimination, common-subexpression elimination and scalar constant
//! folding.
//!
//! Each pass exists in two forms: a unit struct implementing
//! [`Pass`](crate::Pass) (the canonical entry, composable through
//! [`PassManager`](crate::PassManager) for per-pass timing and span
//! emission) and a free function of the same name kept as a thin wrapper
//! for call sites that run one pass in isolation.

use std::collections::HashMap;

use crate::pass::Pass;
use crate::tensorssa::{convert_to_tensorssa, convert_with_options, ConversionStats};
use tssa_ir::{BlockId, ConstValue, Graph, NodeId, Op};

/// Whether removing `n` (given its outputs are unused) preserves semantics.
fn removable(g: &Graph, n: NodeId) -> bool {
    let node = g.node(n);
    match &node.op {
        // Updates are annotations consumed by the conversion's renaming; DCE
        // must never eat them.
        Op::Update => false,
        Op::Mutate(_) => false,
        Op::If | Op::Loop | Op::FusionGroup | Op::ParallelMap { .. } => {
            node.blocks.iter().all(|&b| subtree_side_effect_free(g, b))
        }
        op => op.is_pure(),
    }
}

fn subtree_side_effect_free(g: &Graph, block: BlockId) -> bool {
    g.block(block).nodes.iter().all(|&n| {
        let node = g.node(n);
        match &node.op {
            Op::Mutate(_) | Op::Update => false,
            _ => node.blocks.iter().all(|&b| subtree_side_effect_free(g, b)),
        }
    })
}

/// Remove a node together with everything nested inside it, clearing nested
/// block returns so orphaned blocks do not pin values.
fn remove_subtree(g: &mut Graph, n: NodeId) {
    let blocks = g.node(n).blocks.clone();
    for b in blocks {
        g.set_returns(b, &[]);
        let nodes = g.block(b).nodes.clone();
        for inner in nodes {
            remove_subtree(g, inner);
        }
    }
    g.remove_node(n);
}

fn dce_impl(g: &mut Graph) -> usize {
    let mut removed = 0;
    loop {
        let mut changed = false;
        // Reverse program order so consumers die before their producers.
        let mut nodes = g.nodes_recursive(g.top());
        nodes.reverse();
        for n in nodes {
            if g.is_removed(n) {
                continue;
            }
            let node = g.node(n);
            if node.outputs.iter().all(|&o| !g.has_uses(o)) && removable(g, n) {
                remove_subtree(g, n);
                removed += 1;
                changed = true;
            }
        }
        if !changed {
            return removed;
        }
    }
}

fn cse_impl(g: &mut Graph) -> usize {
    let unstable = unstable_values(g);
    let top = g.top();
    let mut seen = HashMap::new();
    cse_block(g, top, &mut seen, &unstable)
}

/// Values whose observed contents can change between program points: every
/// value that may alias some mutation's receiver.
fn unstable_values(g: &Graph) -> std::collections::HashSet<tssa_ir::ValueId> {
    let analysis = tssa_alias::AliasAnalysis::build(g);
    let receivers: Vec<tssa_ir::ValueId> = g
        .nodes_recursive(g.top())
        .into_iter()
        .filter(|&n| g.node(n).op.is_mutation())
        .map(|n| g.node(n).inputs[0])
        .collect();
    let mut out = std::collections::HashSet::new();
    if receivers.is_empty() {
        return out;
    }
    for v in (0..g.value_count()).map(tssa_ir::ValueId::from_index) {
        if receivers.iter().any(|&r| analysis.may_alias(v, r)) {
            out.insert(v);
        }
    }
    out
}

fn cse_block(
    g: &mut Graph,
    block: BlockId,
    seen: &mut HashMap<String, Vec<tssa_ir::ValueId>>,
    unstable: &std::collections::HashSet<tssa_ir::ValueId>,
) -> usize {
    let mut merged = 0;
    let nodes = g.block(block).nodes.clone();
    for n in nodes {
        if g.is_removed(n) {
            continue;
        }
        let node = g.node(n).clone();
        if !node.blocks.is_empty() {
            for b in &node.blocks {
                let mut inner = seen.clone();
                merged += cse_block(g, *b, &mut inner, unstable);
            }
            continue;
        }
        if !node.op.is_pure() || node.op == Op::Update || node.outputs.is_empty() {
            continue;
        }
        // Reading possibly-mutated storage is point-dependent (views are
        // aliases, not reads, and stay mergeable).
        if !node.op.is_view() && node.inputs.iter().any(|v| unstable.contains(v)) {
            continue;
        }
        let key = format!("{:?}|{:?}", node.op, node.inputs);
        if let Some(prev) = seen.get(&key) {
            for (i, &out) in node.outputs.iter().enumerate() {
                g.replace_all_uses(out, prev[i]);
            }
            g.remove_node(n);
            merged += 1;
        } else {
            seen.insert(key, node.outputs.clone());
        }
    }
    merged
}

fn purify_views_impl(g: &mut Graph) -> usize {
    let analysis = tssa_alias::AliasAnalysis::build(g);
    let receivers: Vec<tssa_ir::ValueId> = g
        .nodes_recursive(g.top())
        .into_iter()
        .filter(|&n| g.node(n).op.is_mutation())
        .map(|n| g.node(n).inputs[0])
        .collect();
    let mut count = 0;
    for n in g.nodes_recursive(g.top()) {
        let node = g.node(n);
        if let Op::View(kind) = node.op.clone() {
            let out = node.outputs[0];
            if receivers.iter().all(|&r| !analysis.may_alias(out, r)) {
                g.set_op(n, Op::Access(kind));
                count += 1;
            }
        }
    }
    count
}

fn revert_unfused_accesses_impl(g: &mut Graph) -> usize {
    let analysis = tssa_alias::AliasAnalysis::build(g);
    let receivers: Vec<tssa_ir::ValueId> = g
        .nodes_recursive(g.top())
        .into_iter()
        .filter(|&n| g.node(n).op.is_mutation())
        .map(|n| g.node(n).inputs[0])
        .collect();
    let mut count = 0;
    for n in g.nodes_recursive(g.top()) {
        let node = g.node(n);
        let Op::Access(kind) = node.op.clone() else {
            continue;
        };
        // Skip accesses compiled into fused kernels.
        if inside_fusion(g, node.owner) {
            continue;
        }
        let base = node.inputs[0];
        if receivers.iter().all(|&r| !analysis.may_alias(base, r)) {
            g.set_op(n, Op::View(kind));
            count += 1;
        }
    }
    count
}

fn inside_fusion(g: &Graph, mut block: BlockId) -> bool {
    loop {
        match g.block(block).owner {
            Some(owner) => {
                if g.node(owner).op == Op::FusionGroup {
                    return true;
                }
                block = g.node(owner).owner;
            }
            None => return false,
        }
    }
}

/// Whether hoisting this operator out of a loop is safe: pure, block-less,
/// and unable to fail at runtime in a way the un-hoisted program would not
/// (division, indexing and host-sync operators stay put).
fn hoistable(op: &Op) -> bool {
    if !op.is_pure() || op.has_blocks() {
        return false;
    }
    !matches!(
        op,
        Op::Update
            | Op::IntDiv
            | Op::IntMod
            | Op::ItemFloat
            | Op::ItemInt
            | Op::ItemBool
            | Op::Access(_)
            | Op::Assign(_)
            | Op::View(_)
    )
}

fn licm_impl(g: &mut Graph) -> usize {
    let unstable = unstable_values(g);
    let mut hoisted = 0;
    loop {
        let mut changed = false;
        for n in g.nodes_recursive(g.top()) {
            if g.is_removed(n) || g.node(n).op != Op::Loop {
                continue;
            }
            let body = g.node(n).blocks[0];
            for inner in g.block(body).nodes.clone() {
                if g.is_removed(inner) {
                    continue;
                }
                let node = g.node(inner);
                if !hoistable(&node.op) {
                    continue;
                }
                // Every operand must be in scope at the loop node itself and
                // must not read possibly-mutated storage (its value would
                // then differ per iteration even with invariant operands).
                // The result must not be mutated either: in the loop each
                // iteration mutates a fresh buffer, hoisted the mutations
                // would accumulate in one shared buffer.
                let invariant = node
                    .inputs
                    .iter()
                    .all(|&v| g.value_available_at(v, n) && !unstable.contains(&v))
                    && node.outputs.iter().all(|&o| !unstable.contains(&o));
                if invariant {
                    g.move_node_before(inner, n);
                    hoisted += 1;
                    changed = true;
                }
            }
        }
        if !changed {
            return hoisted;
        }
    }
}

fn prune_loop_carries_impl(g: &mut Graph) -> usize {
    let mut pruned = 0;
    loop {
        let mut changed = false;
        for n in g.nodes_recursive(g.top()) {
            if g.is_removed(n) || g.node(n).op != Op::Loop {
                continue;
            }
            let body = g.node(n).blocks[0];
            // Carried index k: input 2+k, param 1+k, return 1+k, output k.
            let carried = g.node(n).outputs.len();
            let mut victim = None;
            for k in 0..carried {
                let out = g.node(n).outputs[k];
                if g.has_uses(out) {
                    continue;
                }
                let param = g.block(body).params[1 + k];
                let ret = g.block(body).returns[1 + k];
                // The param may appear only as its own return (a pure
                // pass-through) for the carry to be removable.
                let pass_through = g.uses(param).iter().all(|u| {
                    matches!(
                        u,
                        tssa_ir::Use::Return { block, index }
                            if *block == body && *index == 1 + k
                    )
                });
                let _ = ret;
                if pass_through {
                    victim = Some(k);
                    break;
                }
            }
            if let Some(k) = victim {
                g.remove_return(body, 1 + k);
                g.remove_node_input(n, 2 + k);
                g.remove_block_param(body, 1 + k);
                g.remove_output(n, k);
                pruned += 1;
                changed = true;
            }
        }
        if !changed {
            return pruned;
        }
    }
}

fn const_of(g: &Graph, v: tssa_ir::ValueId) -> Option<ConstValue> {
    let def = g.def_node(v)?;
    match &g.node(def).op {
        Op::Constant(c) => Some(c.clone()),
        _ => None,
    }
}

fn constant_fold_impl(g: &mut Graph) -> usize {
    let mut folded = 0;
    loop {
        let mut changed = false;
        for n in g.nodes_recursive(g.top()) {
            if g.is_removed(n) {
                continue;
            }
            let node = g.node(n).clone();
            if matches!(node.op, Op::Constant(_)) {
                continue;
            }
            let consts: Option<Vec<ConstValue>> =
                node.inputs.iter().map(|&v| const_of(g, v)).collect();
            let Some(consts) = consts else { continue };
            let Some(result) = fold_op(&node.op, &consts) else {
                continue;
            };
            g.set_op(n, Op::Constant(result));
            g.set_inputs(n, &[]);
            folded += 1;
            changed = true;
        }
        if !changed {
            return folded;
        }
    }
}

fn fold_op(op: &Op, inputs: &[ConstValue]) -> Option<ConstValue> {
    use ConstValue::*;
    let int = |i: usize| -> Option<i64> {
        match inputs.get(i)? {
            Int(v) => Some(*v),
            _ => None,
        }
    };
    let float = |i: usize| -> Option<f64> {
        match inputs.get(i)? {
            Float(v) => Some(*v),
            Int(v) => Some(*v as f64),
            _ => None,
        }
    };
    let boolean = |i: usize| -> Option<bool> {
        match inputs.get(i)? {
            Bool(v) => Some(*v),
            _ => None,
        }
    };
    Some(match op {
        Op::IntAdd => Int(int(0)? + int(1)?),
        Op::IntSub => Int(int(0)? - int(1)?),
        Op::IntMul => Int(int(0)? * int(1)?),
        Op::IntDiv => {
            let d = int(1)?;
            if d == 0 {
                return None;
            }
            Int(int(0)? / d)
        }
        Op::IntMod => {
            let d = int(1)?;
            if d == 0 {
                return None;
            }
            Int(int(0)? % d)
        }
        Op::IntNeg => Int(-int(0)?),
        Op::IntLt => Bool(int(0)? < int(1)?),
        Op::IntLe => Bool(int(0)? <= int(1)?),
        Op::IntGt => Bool(int(0)? > int(1)?),
        Op::IntGe => Bool(int(0)? >= int(1)?),
        Op::IntEq => Bool(int(0)? == int(1)?),
        Op::IntNe => Bool(int(0)? != int(1)?),
        Op::BoolAnd => Bool(boolean(0)? && boolean(1)?),
        Op::BoolOr => Bool(boolean(0)? || boolean(1)?),
        Op::BoolNot => Bool(!boolean(0)?),
        Op::FloatAdd => Float(float(0)? + float(1)?),
        Op::FloatSub => Float(float(0)? - float(1)?),
        Op::FloatMul => Float(float(0)? * float(1)?),
        Op::FloatDiv => Float(float(0)? / float(1)?),
        Op::FloatNeg => Float(-float(0)?),
        Op::FloatLt => Bool(float(0)? < float(1)?),
        Op::FloatGt => Bool(float(0)? > float(1)?),
        Op::IntToFloat => Float(int(0)? as f64),
        _ => return None,
    })
}

/// Declare a unit-struct [`Pass`] plus its free-function thin wrapper.
macro_rules! unit_pass {
    ($(#[$doc:meta])+ $pass:ident, $pass_name:literal, $wrapper:ident, $impl_fn:ident;) => {
        $(#[$doc])+
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $pass;

        impl Pass for $pass {
            fn name(&self) -> &'static str {
                $pass_name
            }

            fn run(&mut self, g: &mut Graph) -> usize {
                $impl_fn(g)
            }
        }

        $(#[$doc])+
        ///
        /// Thin wrapper over the pass of the same name; prefer composing
        /// through [`PassManager`](crate::PassManager) when running a
        /// sequence, which adds per-pass timing and tracing.
        pub fn $wrapper(g: &mut Graph) -> usize {
            $pass.run(g)
        }
    };
}

unit_pass! {
    /// Dead code elimination: iteratively remove side-effect-free nodes
    /// none of whose outputs are used. Returns the number of nodes removed.
    Dce, "dce", dce, dce_impl;
}

unit_pass! {
    /// Common-subexpression elimination: within each block (values from
    /// enclosing blocks are inherited), merge pure block-less nodes with
    /// identical operator and operands. Returns the number of nodes merged.
    ///
    /// A pure operator whose tensor operand may alias a mutation receiver is
    /// **not** a common subexpression — its value depends on the program
    /// point (e.g. the recomputed condition of a `while` loop whose body
    /// mutates the inspected tensor). Such nodes are skipped, except for
    /// views: a view is a pure *alias*, identical wherever it is computed.
    Cse, "cse", cse, cse_impl;
}

unit_pass! {
    /// Rewrite views of tensors that are never mutated into `immut::access`.
    ///
    /// When a view's alias component contains no mutation, the aliasing is
    /// unobservable and the view is semantically identical to its immutable
    /// access — which can join fusion groups. This is the data-flow
    /// functionalization functorch performs (and the TensorSSA pipeline also
    /// applies after Algorithm 1 has handled the mutated components).
    /// Returns the number of views rewritten.
    PurifyViews, "purify-views", purify_views, purify_views_impl;
}

unit_pass! {
    /// Convert `immut::access` nodes that did **not** end up inside a fusion
    /// group back into zero-copy views (§3.2: unfused immutable operators
    /// "can be converted back to the original mutable operators").
    ///
    /// Reverting is safe exactly when the access's base cannot alias any
    /// remaining mutation's receiver — then the aliasing a view introduces
    /// is unobservable. Run after fusion. Returns the number of accesses
    /// reverted.
    RevertUnfusedAccesses, "revert-unfused-accesses", revert_unfused_accesses,
        revert_unfused_accesses_impl;
}

unit_pass! {
    /// Loop-invariant code motion: move pure computations whose operands are
    /// defined outside the loop body to just before the loop. Returns the
    /// number of nodes hoisted (fixpoint over nested loops).
    Licm, "licm", licm, licm_impl;
}

unit_pass! {
    /// Remove dead loop carries: a carried value whose loop output is unused
    /// and whose body parameter flows only into its own return slot
    /// contributes nothing — DCE cannot see this because the loop node
    /// itself stays live. Block propagation often introduces such carries
    /// for versions that later turn out to be unread. Returns the number of
    /// carries removed.
    PruneLoopCarries, "prune-loop-carries", prune_loop_carries, prune_loop_carries_impl;
}

unit_pass! {
    /// Scalar constant folding over host int/float/bool arithmetic. Returns
    /// the number of nodes folded.
    ConstantFold, "constant-fold", constant_fold, constant_fold_impl;
}

/// The TensorSSA conversion (Algorithm 1) as a [`Pass`], so pipelines can
/// schedule it through a [`PassManager`](crate::PassManager) and attribute
/// its time alongside the cleanup passes. The rewrite count is the number
/// of mutations removed; the full [`ConversionStats`] of the last run are
/// kept on the pass and surfaced as span counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct Convert {
    /// Run block propagation (§4.1.2); `false` models the non-holistic,
    /// graph-breaking functionalization of functorch/Dynamo.
    pub block_propagation: bool,
    /// [`ConversionStats`] of the most recent run.
    pub last: ConversionStats,
}

impl Convert {
    /// A conversion pass; `block_propagation` selects holistic (`true`)
    /// versus per-block (`false`) functionalization.
    pub fn new(block_propagation: bool) -> Convert {
        Convert {
            block_propagation,
            last: ConversionStats::default(),
        }
    }
}

impl Pass for Convert {
    fn name(&self) -> &'static str {
        "tensorssa-convert"
    }

    fn run(&mut self, g: &mut Graph) -> usize {
        self.last = if self.block_propagation {
            convert_to_tensorssa(g)
        } else {
            convert_with_options(g, false)
        };
        self.last.mutations_removed
    }

    fn counters(&self) -> Vec<(&'static str, i64)> {
        vec![
            ("candidates", self.last.candidates as i64),
            ("mutations_removed", self.last.mutations_removed as i64),
            ("views_rewritten", self.last.views_rewritten as i64),
            ("updates_inserted", self.last.updates_inserted as i64),
            ("loop_carries_added", self.last.loop_carries_added as i64),
            (
                "branch_returns_added",
                self.last.branch_returns_added as i64,
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::parse_graph;

    #[test]
    fn dce_removes_unused_chain() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %a : Tensor = aten::relu(%x)
               %b : Tensor = aten::sigmoid(%a)
               %c : Tensor = aten::tanh(%x)
               return (%c)",
        )
        .unwrap();
        let removed = dce(&mut g);
        assert_eq!(removed, 2);
        assert!(!g.to_string().contains("relu"));
        assert!(g.to_string().contains("tanh"));
    }

    #[test]
    fn dce_keeps_mutations_and_their_views() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %v : Tensor = aten::select[dim=0](%x, %i)
               %m : Tensor = aten::relu_(%v)
               return (%x)",
        )
        .unwrap();
        let removed = dce(&mut g);
        assert_eq!(removed, 0);
    }

    #[test]
    fn dce_removes_side_effect_free_loop() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::relu(%c)
                   -> (%t, %u)
               return (%x)",
        )
        .unwrap();
        let removed = dce(&mut g);
        assert!(removed >= 1, "{g}");
        assert!(!g.to_string().contains("prim::Loop"), "{g}");
    }

    #[test]
    fn cse_merges_duplicate_pure_nodes() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %a : Tensor = aten::relu(%x)
               %b : Tensor = aten::relu(%x)
               %c : Tensor = aten::add(%a, %b)
               return (%c)",
        )
        .unwrap();
        let merged = cse(&mut g);
        assert_eq!(merged, 1);
        assert!(g.verify().is_ok());
        // add now uses the same value twice
        let add = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::Add)
            .unwrap();
        assert_eq!(g.node(add).inputs[0], g.node(add).inputs[1]);
    }

    #[test]
    fn cse_does_not_merge_mutations() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %a : Tensor = aten::relu_(%x)
               %b : Tensor = aten::relu_(%x)
               return (%x)",
        )
        .unwrap();
        assert_eq!(cse(&mut g), 0);
    }

    #[test]
    fn constant_folding_scalar_arithmetic() {
        let mut g = parse_graph(
            "graph():
               %a : int = prim::Constant[value=2]()
               %b : int = prim::Constant[value=3]()
               %c : int = aten::int_add(%a, %b)
               %d : int = aten::int_mul(%c, %c)
               %e : bool = aten::int_lt(%c, %d)
               return (%e)",
        )
        .unwrap();
        let folded = constant_fold(&mut g);
        assert_eq!(folded, 3);
        dce(&mut g);
        let text = g.to_string();
        assert!(text.contains("value=true"), "{text}");
        assert!(!text.contains("int_add"), "{text}");
    }

    #[test]
    fn constant_folding_skips_division_by_zero() {
        let mut g = parse_graph(
            "graph():
               %a : int = prim::Constant[value=2]()
               %z : int = prim::Constant[value=0]()
               %c : int = aten::int_div(%a, %z)
               return (%c)",
        )
        .unwrap();
        assert_eq!(constant_fold(&mut g), 0);
    }

    #[test]
    fn purify_views_only_touches_unmutated_components() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %y : Tensor):
               %i : int = prim::Constant[value=0]()
               %a : Tensor = aten::select[dim=0](%x, %i)
               %b : Tensor = aten::select[dim=0](%y, %i)
               %m : Tensor = aten::relu_(%b)
               %s : Tensor = aten::sigmoid(%a)
               return (%s)",
        )
        .unwrap();
        assert_eq!(purify_views(&mut g), 1);
        let text = g.to_string();
        // The view of the unmutated x becomes an access; y's view stays.
        assert!(text.contains("immut::select"), "{text}");
        assert!(text.contains("aten::select"), "{text}");
    }

    #[test]
    fn revert_unfused_accesses_restores_views() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %a : Tensor = immut::select[dim=0](%x, %i)
               %s : Tensor = aten::sigmoid(%a)
               return (%s)",
        )
        .unwrap();
        assert_eq!(revert_unfused_accesses(&mut g), 1);
        assert!(g.to_string().contains("aten::select"), "{g}");
        assert!(g.verify().is_ok());
    }

    #[test]
    fn revert_skips_accesses_aliasing_mutations() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %a : Tensor = immut::select[dim=0](%x, %i)
               %v : Tensor = aten::select[dim=0](%x, %i)
               %m : Tensor = aten::relu_(%v)
               %s : Tensor = aten::sigmoid(%a)
               return (%s)",
        )
        .unwrap();
        // %a's base is mutated through %v: reverting would change semantics.
        assert_eq!(revert_unfused_accesses(&mut g), 0);
    }

    #[test]
    fn licm_hoists_invariant_computation() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %w : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %inv : Tensor = aten::sigmoid(%w)
                   %u : Tensor = aten::add(%c, %inv)
                   -> (%t, %u)
               return (%o)",
        )
        .unwrap();
        assert_eq!(licm(&mut g), 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        // sigmoid now precedes the loop.
        let text = g.to_string();
        let sig = text.find("aten::sigmoid").unwrap();
        let lp = text.find("prim::Loop").unwrap();
        assert!(sig < lp, "{text}");
        // The loop-dependent add stays inside.
        assert!(text.find("aten::add(").unwrap() > lp, "{text}");
    }

    #[test]
    fn licm_leaves_variant_and_effectful_nodes() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::relu(%c)
                   %m : Tensor = aten::relu_(%u)
                   -> (%t, %u)
               return (%o)",
        )
        .unwrap();
        // relu depends on the carried value; relu_ is a mutation.
        assert_eq!(licm(&mut g), 0);
    }

    #[test]
    fn licm_leaves_mutation_receivers_in_the_loop() {
        // Found by differential fuzzing: %u has invariant operands, but its
        // storage is negated in the loop. Each iteration must negate a fresh
        // relu(%x); hoisted, one buffer would accumulate n negations.
        let mut g = parse_graph(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %u : Tensor = aten::relu(%x)
                   %m : Tensor = aten::neg_(%u)
                   -> (%t, %u)
               return (%o)",
        )
        .unwrap();
        assert_eq!(licm(&mut g), 0);
        let text = g.to_string();
        assert!(
            text.find("aten::relu").unwrap() > text.find("prim::Loop").unwrap(),
            "{text}"
        );
    }

    #[test]
    fn constant_folding_mixed_int_float() {
        let mut g = parse_graph(
            "graph():
               %a : int = prim::Constant[value=2]()
               %f : float = aten::int_to_float(%a)
               %g0 : float = aten::float_mul(%f, %f)
               return (%g0)",
        )
        .unwrap();
        assert_eq!(constant_fold(&mut g), 2);
        dce(&mut g);
        assert!(g.to_string().contains("value=4.0"), "{g}");
    }
}
