//! A [`PassHook`] that forbids passes from *losing* shape information.
//!
//! The symbolic shape analysis in `tssa-ir` proves facts of the form
//! "output dim `d` is the constant `n`". Those facts are monotone
//! currency: an optimization pass may *refine* a dim (unknown → constant,
//! e.g. by constant-folding a shape computation) but must never *widen* one
//! (constant → unknown, or constant → different constant) — a pass that
//! does has changed program semantics or destroyed information later
//! stages (fusion sizing, the shape certifier, plan bucketing) rely on.
//!
//! The ratchet snapshots the statically known constant dims of the graph's
//! top-level returns before the first pass (inference runs rank-free — no
//! input shapes — so only facts derivable from the program text itself are
//! tracked), then re-checks after every pass: every previously known
//! `(return, dim) = n` must still hold, and newly discovered constants are
//! folded into the baseline so later passes are held to the higher bar.

use std::collections::HashMap;

use tssa_ir::{infer_shapes, Graph};

use crate::pass::PassHook;

/// Enforces that passes never widen a statically known output dim.
/// Installed by `tssa-pipelines` in debug builds alongside the effect
/// sanitizer.
#[derive(Default)]
pub struct ShapeRatchet {
    /// `(return index, dim index)` → constant extent, highest water mark.
    baseline: HashMap<(usize, usize), usize>,
    /// Return count at baseline; a pass that changes the graph interface
    /// resets the ratchet instead of mis-attributing dims positionally.
    returns: usize,
}

impl ShapeRatchet {
    /// A fresh ratchet with an empty baseline (set by [`PassHook::begin`]).
    pub fn new() -> ShapeRatchet {
        ShapeRatchet::default()
    }

    fn snapshot(g: &Graph) -> (usize, HashMap<(usize, usize), usize>) {
        let n_inputs = g.block(g.top()).params.len();
        let info = infer_shapes(g, &vec![None; n_inputs]);
        let returns = &g.block(g.top()).returns;
        let mut known = HashMap::new();
        for (i, &r) in returns.iter().enumerate() {
            if let Some(shape) = info.shape(r) {
                for (d, dim) in shape.iter().enumerate() {
                    if let Some(n) = dim.as_const() {
                        known.insert((i, d), n);
                    }
                }
            }
        }
        (returns.len(), known)
    }
}

impl PassHook for ShapeRatchet {
    fn name(&self) -> &'static str {
        "shape-ratchet"
    }

    fn begin(&mut self, g: &Graph) {
        let (returns, known) = Self::snapshot(g);
        self.returns = returns;
        self.baseline = known;
    }

    fn check(&mut self, _pass: &'static str, g: &Graph) -> Result<(), String> {
        let (returns, now) = Self::snapshot(g);
        if returns != self.returns {
            // Interface changed; positional dims are incomparable. Rebase.
            self.returns = returns;
            self.baseline = now;
            return Ok(());
        }
        for (&(i, d), &n) in &self.baseline {
            match now.get(&(i, d)) {
                Some(&m) if m == n => {}
                Some(&m) => {
                    return Err(format!(
                        "output {i} dim {d} changed from statically known {n} to {m}"
                    ));
                }
                None => {
                    return Err(format!(
                        "output {i} dim {d} widened from statically known {n} to unknown"
                    ));
                }
            }
        }
        // Ratchet upward: constants a pass has just made derivable are held
        // for the rest of the pipeline.
        self.baseline = now;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::parse_graph;

    fn const_graph() -> Graph {
        parse_graph(
            "graph(%x : Tensor):
               %z : Tensor = aten::ones[shape=[2, 3]]()
               return (%z)",
        )
        .unwrap()
    }

    #[test]
    fn stable_shapes_pass() {
        let g = const_graph();
        let mut hook = ShapeRatchet::new();
        hook.begin(&g);
        assert!(hook.check("noop", &g).is_ok());
    }

    #[test]
    fn widening_a_known_dim_is_a_violation() {
        let g = const_graph();
        let mut hook = ShapeRatchet::new();
        hook.begin(&g);
        // A "pass" replaced the constant tensor with an input-derived one:
        // the output dims are no longer statically known.
        let widened = parse_graph(
            "graph(%x : Tensor):
               %z : Tensor = aten::relu(%x)
               return (%z)",
        )
        .unwrap();
        let err = hook.check("bad-pass", &widened).unwrap_err();
        assert!(err.contains("widened"), "{err}");
    }

    #[test]
    fn changing_a_known_dim_is_a_violation() {
        let g = const_graph();
        let mut hook = ShapeRatchet::new();
        hook.begin(&g);
        let changed = parse_graph(
            "graph(%x : Tensor):
               %z : Tensor = aten::ones[shape=[2, 4]]()
               return (%z)",
        )
        .unwrap();
        let err = hook.check("bad-pass", &changed).unwrap_err();
        assert!(err.contains("changed"), "{err}");
    }

    #[test]
    fn refinement_ratchets_the_baseline_upward() {
        // Start with an input-derived output (nothing known)…
        let g0 = parse_graph(
            "graph(%x : Tensor):
               %z : Tensor = aten::relu(%x)
               return (%z)",
        )
        .unwrap();
        let mut hook = ShapeRatchet::new();
        hook.begin(&g0);
        // …a pass constant-folds it: refinement is fine…
        let g1 = const_graph();
        assert!(hook.check("fold", &g1).is_ok());
        // …but the new constants are now locked in.
        assert!(hook.check("bad-pass", &g0).is_err());
    }

    #[test]
    fn interface_change_rebases_instead_of_failing() {
        let g = const_graph();
        let mut hook = ShapeRatchet::new();
        hook.begin(&g);
        let two_outputs = parse_graph(
            "graph(%x : Tensor):
               %z : Tensor = aten::ones[shape=[5]]()
               return (%z, %x)",
        )
        .unwrap();
        assert!(hook.check("restructure", &two_outputs).is_ok());
    }
}
