//! The paper's primary contribution: TensorSSA conversion (Algorithm 1 of
//! the DAC'24 paper) plus the supporting pass infrastructure.
//!
//! The entry point is [`convert_to_tensorssa`], which takes a graph
//! containing aliasing view operators and in-place mutations and rewrites the
//! memory-dependency-only alias components (found by `tssa-alias`) into pure
//! functional form:
//!
//! 1. **Rewrite mutation** (§4.1.1) — every view becomes an `immut::access`;
//!    every mutation is decomposed into its functional counterpart, a
//!    *pass-up* chain of `immut::assign` producing a new version of the
//!    origin tensor, and a *pass-down* re-access of every dominated view,
//!    annotated with `tssa::update` markers.
//! 2. **Block propagation** (§4.1.2) — updates whose new version is defined
//!    inside a control-flow block are propagated outward by extending loop
//!    carries and branch returns.
//! 3. **Renaming** — every use of a mutated value after an update is
//!    replaced by the latest version; update markers are removed.
//!
//! The result contains no `aten::*_` mutation inside converted components, so
//! downstream fusion (`tssa-fusion`) can treat the program as pure data flow
//! (§4.2).
//!
//! # Examples
//!
//! The paper's Figure 4 example — mutating a row of `b` inside a loop:
//!
//! ```
//! use tssa_core::{convert_to_tensorssa, passes};
//! use tssa_ir::parse_graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = parse_graph(
//!     "graph(%b0 : Tensor, %n : int):
//!        %b : Tensor = aten::clone(%b0)
//!        %t : bool = prim::Constant[value=true]()
//!        %one : float = prim::Constant[value=1.0]()
//!        prim::Loop(%n, %t)
//!          block0(%i : int):
//!            %bi : Tensor = aten::select[dim=0](%b, %i)
//!            %m : Tensor = aten::add_scalar_(%bi, %one)
//!            -> (%t)
//!        return (%b)",
//! )?;
//! let stats = convert_to_tensorssa(&mut g);
//! assert_eq!(stats.mutations_removed, 1);
//! passes::dce(&mut g);
//! let text = g.to_string();
//! assert!(text.contains("immut::assign"));
//! assert!(!text.contains("aten::add_scalar_"));
//! # Ok(())
//! # }
//! ```

mod defunctionalize;
mod pass;
pub mod passes;
mod shape_ratchet;
mod tensorssa;

pub use defunctionalize::defunctionalize;
pub use pass::{Pass, PassHook, PassManager, PassRun, SanitizerViolation};
pub use shape_ratchet::ShapeRatchet;
pub use tensorssa::{convert_to_tensorssa, convert_with_options, ConversionStats};
