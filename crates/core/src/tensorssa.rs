//! The TensorSSA conversion — Algorithm 1 of the paper.
//!
//! Stages (see the crate docs for an overview):
//!
//! * `normalize_mutation_outputs` — a mutation's output is a must-alias of
//!   its receiver, so every use of it is replaced by the receiver first;
//! * `rewrite_mutation` — §4.1.1 pass-up/pass-down per `Mutate` node;
//! * `block_propagation` — §4.1.2, innermost-first;
//! * `rename_and_strip_updates` — the final renaming walk (`Replace all uses
//!   of v with v' after Update(v', v)`) followed by update removal.

use std::collections::{HashMap, HashSet};

use tssa_alias::AliasAnalysis;
use tssa_ir::{BlockId, Graph, NodeId, Op, Type, ValueId};

/// Counters describing what the conversion did (useful for tests, logging
/// and the ablation benchmarks).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConversionStats {
    /// Alias components functionalized.
    pub candidates: usize,
    /// `Mutate` nodes eliminated.
    pub mutations_removed: usize,
    /// `View` nodes rewritten to `immut::access`.
    pub views_rewritten: usize,
    /// `tssa::update` annotations inserted.
    pub updates_inserted: usize,
    /// Loop carried values added by block propagation.
    pub loop_carries_added: usize,
    /// Branch returns added by block propagation.
    pub branch_returns_added: usize,
}

/// Functionalize every memory-dependency-only alias component of `g`.
///
/// Components whose origin is a graph input, that escape through containers
/// or control-flow aliasing, or that mutate through unsupported views are
/// left untouched (the conservative fallback also used by the paper's
/// implementation). Pair with [`crate::passes::dce`] to drop the dead
/// `immut::access` versions the conversion leaves behind.
pub fn convert_to_tensorssa(g: &mut Graph) -> ConversionStats {
    convert_with_options(g, true)
}

/// Like [`convert_to_tensorssa`] but with block propagation optionally
/// disabled — the "non-holistic" ablation: mutations whose versions would
/// need to cross control-flow boundaries are left imperative.
pub fn convert_with_options(g: &mut Graph, block_prop: bool) -> ConversionStats {
    let mut stats = ConversionStats::default();
    normalize_mutation_outputs(g);
    let analysis = AliasAnalysis::build(g);
    let candidates = analysis.candidates().to_vec();
    for cand in &candidates {
        if !block_prop && component_crosses_blocks(g, cand.origin, &cand.mutations) {
            continue;
        }
        stats.candidates += 1;
        // Rewrite every view of the component to its immutable access
        // (Definition 3.3); identical operands, new pure semantics.
        for &vn in &cand.views {
            if let Op::View(kind) = g.node(vn).op.clone() {
                g.set_op(vn, Op::Access(kind));
                stats.views_rewritten += 1;
            }
        }
        // Handle mutations in program order (§4.1.1).
        let mut muts = cand.mutations.clone();
        muts.sort_by_key(|&m| g.position(m));
        for m in muts {
            rewrite_mutation(g, m, cand.origin, &cand.views, &mut stats);
            stats.mutations_removed += 1;
        }
    }
    if block_prop {
        block_propagation(g, &mut stats);
    }
    rename_and_strip_updates(g);
    stats
}

/// Whether any mutation of the component happens in a block other than the
/// origin's defining block (used by the no-block-propagation ablation).
fn component_crosses_blocks(g: &Graph, origin: ValueId, mutations: &[NodeId]) -> bool {
    let home = g.def_block(origin);
    mutations.iter().any(|&m| g.node(m).owner != home)
}

/// Replace uses of every mutation's output with its receiver: after the
/// mutation executes, the two are indistinguishable aliases.
fn normalize_mutation_outputs(g: &mut Graph) {
    for n in g.nodes_recursive(g.top()) {
        let node = g.node(n);
        if node.op.is_mutation() {
            if let (Some(&out), Some(&recv)) = (node.outputs.first(), node.inputs.first()) {
                g.replace_all_uses(out, recv);
            }
        }
    }
}

/// §4.1.1: decompose one `Mutate` into functional compute + assign chain
/// (pass-up) + re-accessed views with updates (pass-down), then remove it.
fn rewrite_mutation(
    g: &mut Graph,
    m: NodeId,
    origin: ValueId,
    views: &[NodeId],
    stats: &mut ConversionStats,
) {
    let node = g.node(m).clone();
    let Op::Mutate(kind) = node.op else {
        return;
    };
    let recv = node.inputs[0];

    // The new value `w` of the mutated view: its functional counterpart
    // applied to the view's current value.
    let w = {
        let func = kind.functional_op();
        let inputs: Vec<ValueId> = match func {
            // copy_(v, src) → broadcast_like(src, v)
            Op::BroadcastLike => vec![node.inputs[1], recv],
            // everything else keeps (recv, extras…) order
            _ => node.inputs.clone(),
        };
        let n = g.insert_before(m, func, &inputs, &[Type::Tensor]);
        g.out(n)
    };

    // Pass-up: walk the view path from the receiver to the origin tensor,
    // materializing a new version of each base via immut::assign.
    let mut cur_val = recv;
    let mut cur_new = w;
    while cur_val != origin {
        let def = g
            .def_node(cur_val)
            .expect("view chain values are node-defined");
        let def_node = g.node(def).clone();
        let Op::Access(k) = def_node.op else {
            unreachable!("chain rewritten to access before mutation handling");
        };
        let base = def_node.inputs[0];
        let mut inputs = vec![base, cur_new];
        inputs.extend_from_slice(&def_node.inputs[1..]);
        let a = g.insert_before(m, Op::Assign(k), &inputs, &[Type::Tensor]);
        cur_new = g.out(a);
        cur_val = base;
    }

    // Pass-down from the fresh origin version.
    traversal(g, m, origin, cur_new, views, stats);
    g.remove_node(m);
}

/// Algorithm 1's `Traversal(x, x')`: annotate the new version and re-access
/// every dominated view of `x`, recursively.
fn traversal(
    g: &mut Graph,
    m: NodeId,
    x: ValueId,
    x_new: ValueId,
    views: &[NodeId],
    stats: &mut ConversionStats,
) {
    g.insert_before(m, Op::Update, &[x_new, x], &[]);
    stats.updates_inserted += 1;
    for &vn in views {
        if g.is_removed(vn) {
            continue;
        }
        let vnode = g.node(vn).clone();
        if vnode.inputs[0] != x || !g.dominates(vn, m) {
            continue;
        }
        let Op::Access(kind) = vnode.op.clone() else {
            continue;
        };
        let mut inputs = vec![x_new];
        inputs.extend_from_slice(&vnode.inputs[1..]);
        let a = g.insert_before(m, Op::Access(kind), &inputs, &[Type::Tensor]);
        let v_new = g.out(a);
        traversal(g, m, vnode.outputs[0], v_new, views, stats);
    }
}

/// The target of the last `tssa::update(?, old)` directly in `block`, if any.
fn latest_version_in(g: &Graph, block: BlockId, old: ValueId) -> Option<ValueId> {
    let mut latest = None;
    for &n in &g.block(block).nodes {
        let node = g.node(n);
        if node.op == Op::Update && node.inputs[1] == old {
            latest = Some(node.inputs[0]);
        }
    }
    latest
}

/// §4.1.2: propagate versions out of control-flow blocks, innermost first.
fn block_propagation(g: &mut Graph, stats: &mut ConversionStats) {
    let mut done: HashSet<(NodeId, ValueId)> = HashSet::new();
    loop {
        // Find the deepest cross-block update not yet handled.
        let mut best: Option<(NodeId, ValueId, usize)> = None;
        for n in g.nodes_recursive(g.top()) {
            let node = g.node(n);
            if node.op != Op::Update {
                continue;
            }
            let (new, old) = (node.inputs[0], node.inputs[1]);
            let (b_new, b_old) = (g.def_block(new), g.def_block(old));
            if b_new == b_old {
                continue;
            }
            let Some(owner) = g.block(b_new).owner else {
                continue;
            };
            if done.contains(&(owner, old)) {
                continue;
            }
            let depth = g.block_ancestry(b_new).len();
            if best.map(|(_, _, d)| depth > d).unwrap_or(true) {
                best = Some((owner, old, depth));
            }
        }
        let Some((owner, old, _)) = best else {
            break;
        };
        let ty = g.value(old).ty.clone();
        match g.node(owner).op {
            Op::If => {
                let blocks: [BlockId; 2] = [g.node(owner).blocks[0], g.node(owner).blocks[1]];
                for b in blocks {
                    // "Add x to the sibling's returns if x is not mutated
                    // there": the unmutated side returns the old version.
                    let latest = latest_version_in(g, b, old).unwrap_or(old);
                    g.push_return(b, latest);
                    stats.branch_returns_added += 1;
                }
                let x_o = g.add_output(owner, ty);
                g.insert_after(owner, Op::Update, &[x_o, old], &[]);
                stats.updates_inserted += 1;
            }
            Op::Loop => {
                let body = g.node(owner).blocks[0];
                let latest = latest_version_in(g, body, old)
                    .expect("loop propagation triggered by an update in the body");
                g.add_node_input(owner, old);
                let x_p = g.add_block_param(body, ty.clone());
                g.prepend(body, Op::Update, &[x_p, old], &[]);
                stats.updates_inserted += 1;
                g.push_return(body, latest);
                let x_o = g.add_output(owner, ty);
                g.insert_after(owner, Op::Update, &[x_o, old], &[]);
                stats.updates_inserted += 1;
                stats.loop_carries_added += 1;
            }
            _ => {
                // Updates cannot appear inside fusion groups at this stage.
                unreachable!("update inside non-control-flow node");
            }
        }
        done.insert((owner, old));
    }
}

/// Final renaming: walk the program in order keeping, per original value,
/// the current version installed by the updates seen so far; rewrite every
/// later use. Versions are block-scoped (control flow exports them through
/// the outputs added by block propagation). Then remove all updates.
fn rename_and_strip_updates(g: &mut Graph) {
    let top = g.top();
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    rename_block(g, top, &mut map);
    // Strip updates.
    for n in g.nodes_recursive(g.top()) {
        if g.node(n).op == Op::Update {
            g.remove_node(n);
        }
    }
}

fn rename_block(g: &mut Graph, block: BlockId, map: &mut HashMap<ValueId, ValueId>) {
    let nodes: Vec<NodeId> = g.block(block).nodes.clone();
    for n in nodes {
        if g.is_removed(n) {
            continue;
        }
        if g.node(n).op == Op::Update {
            let new = g.node(n).inputs[0];
            let old = g.node(n).inputs[1];
            map.insert(old, new);
            continue;
        }
        // Rewrite operands through the current version map.
        for i in 0..g.node(n).inputs.len() {
            let v = g.node(n).inputs[i];
            if let Some(&cur) = map.get(&v) {
                g.set_input(n, i, cur);
            }
        }
        // Recurse into nested blocks with a scoped copy of the map.
        let blocks = g.node(n).blocks.clone();
        for b in blocks {
            let mut inner = map.clone();
            rename_block(g, b, &mut inner);
        }
    }
    // Returns see the block-final versions.
    let renamed: Vec<ValueId> = g
        .block(block)
        .returns
        .iter()
        .map(|r| *map.get(r).unwrap_or(r))
        .collect();
    g.set_returns(block, &renamed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::parse_graph;

    fn has_op(g: &Graph, fragment: &str) -> bool {
        g.to_string().contains(fragment)
    }

    #[test]
    fn straight_line_mutation_is_functionalized() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %b : Tensor = aten::clone(%x)
               %i : int = prim::Constant[value=0]()
               %v : Tensor = aten::select[dim=0](%b, %i)
               %f : float = prim::Constant[value=5.0]()
               %m : Tensor = aten::fill_(%v, %f)
               return (%b)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.mutations_removed, 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        assert!(!has_op(&g, "aten::fill_"), "{g}");
        assert!(has_op(&g, "immut::assign_select"), "{g}");
        assert!(has_op(&g, "aten::full_like"), "{g}");
        // The graph now returns the new version, not the clone.
        let ret = g.block(g.top()).returns[0];
        let def = g.def_node(ret).unwrap();
        assert!(matches!(g.node(def).op, Op::Assign(_)), "{g}");
    }

    #[test]
    fn base_mutation_without_views() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %b : Tensor = aten::clone(%x)
               %m : Tensor = aten::relu_(%b)
               return (%b)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.mutations_removed, 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        assert!(!has_op(&g, "aten::relu_"), "{g}");
        // relu_ decomposes to pure relu; the return is that value.
        let ret = g.block(g.top()).returns[0];
        let def = g.def_node(ret).unwrap();
        assert_eq!(g.node(def).op, Op::Relu);
    }

    #[test]
    fn figure4_loop_mutation_adds_carried_value() {
        let mut g = parse_graph(
            "graph(%b0 : Tensor, %n : int):
               %b : Tensor = aten::clone(%b0)
               %t : bool = prim::Constant[value=true]()
               %one : float = prim::Constant[value=1.0]()
               prim::Loop(%n, %t)
                 block0(%i : int):
                   %bi : Tensor = aten::select[dim=0](%b, %i)
                   %m : Tensor = aten::add_scalar_(%bi, %one)
                   -> (%t)
               return (%b)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.mutations_removed, 1);
        assert_eq!(stats.loop_carries_added, 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        assert!(!has_op(&g, "aten::add_scalar_("), "{g}");
        // The loop gained a carried tensor and the graph returns its output.
        let text = g.to_string();
        assert!(text.contains("prim::Loop"), "{text}");
        let ret = g.block(g.top()).returns[0];
        let def = g.def_node(ret).unwrap();
        assert_eq!(g.node(def).op, Op::Loop, "{g}");
    }

    #[test]
    fn branch_mutation_extends_if_outputs() {
        let mut g = parse_graph(
            "graph(%x : Tensor, %c : bool):
               %b : Tensor = aten::clone(%x)
               %i : int = prim::Constant[value=0]()
               %one : float = prim::Constant[value=1.0]()
               prim::If(%c)
                 block0():
                   %v : Tensor = aten::select[dim=0](%b, %i)
                   %m : Tensor = aten::add_scalar_(%v, %one)
                   -> ()
                 block1():
                   -> ()
               return (%b)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.mutations_removed, 1);
        assert_eq!(stats.branch_returns_added, 2);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        // The If gained one output; its else-return is the old version.
        let ret = g.block(g.top()).returns[0];
        let def = g.def_node(ret).unwrap();
        assert_eq!(g.node(def).op, Op::If, "{g}");
        let else_b = g.node(def).blocks[1];
        assert_eq!(g.block(else_b).returns.len(), 1);
    }

    #[test]
    fn nested_view_chain_pass_up() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %b : Tensor = aten::clone(%x)
               %i : int = prim::Constant[value=1]()
               %j : int = prim::Constant[value=0]()
               %r : Tensor = aten::select[dim=0](%b, %i)
               %e : Tensor = aten::select[dim=0](%r, %j)
               %m : Tensor = aten::sigmoid_(%e)
               return (%b, %r)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.mutations_removed, 1);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        // Two assigns: one per chain hop.
        let assigns = g
            .nodes_recursive(g.top())
            .into_iter()
            .filter(|&n| matches!(g.node(n).op, Op::Assign(_)))
            .count();
        assert_eq!(assigns, 2, "{g}");
        // %r used after the mutation must be the re-accessed version.
        let r_ret = g.block(g.top()).returns[1];
        let def = g.def_node(r_ret).unwrap();
        assert!(matches!(g.node(def).op, Op::Access(_)), "{g}");
    }

    #[test]
    fn graph_input_mutation_left_imperative() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %v : Tensor = aten::select[dim=0](%x, %i)
               %m : Tensor = aten::relu_(%v)
               return (%x)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.candidates, 0);
        assert!(has_op(&g, "aten::relu_"), "{g}");
        assert!(g.verify().is_ok());
    }

    #[test]
    fn two_sequential_mutations_version_correctly() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %b : Tensor = aten::clone(%x)
               %i : int = prim::Constant[value=0]()
               %one : float = prim::Constant[value=1.0]()
               %v : Tensor = aten::select[dim=0](%b, %i)
               %m1 : Tensor = aten::add_scalar_(%v, %one)
               %m2 : Tensor = aten::mul_scalar_(%v, %one)
               return (%b)",
        )
        .unwrap();
        let stats = convert_to_tensorssa(&mut g);
        assert_eq!(stats.mutations_removed, 2);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        // The second mutation's functional mul reads the re-accessed view of
        // the first mutation's assign, not the original view.
        let text = g.to_string();
        let mul_pos = text.find("aten::mul_scalar(").expect("functional mul");
        let assign_pos = text.find("immut::assign_select").expect("assign");
        assert!(assign_pos < mul_pos, "{text}");
    }

    #[test]
    fn no_block_prop_option_skips_cross_block_components() {
        let mut g = parse_graph(
            "graph(%b0 : Tensor, %n : int):
               %b : Tensor = aten::clone(%b0)
               %t : bool = prim::Constant[value=true]()
               %one : float = prim::Constant[value=1.0]()
               prim::Loop(%n, %t)
                 block0(%i : int):
                   %bi : Tensor = aten::select[dim=0](%b, %i)
                   %m : Tensor = aten::add_scalar_(%bi, %one)
                   -> (%t)
               return (%b)",
        )
        .unwrap();
        let stats = convert_with_options(&mut g, false);
        assert_eq!(stats.candidates, 0);
        assert!(has_op(&g, "aten::add_scalar_("), "{g}");
        assert!(g.verify().is_ok());
    }
}
