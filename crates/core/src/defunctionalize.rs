//! Conversion back from TensorSSA form to mutable operators (§3.2: the
//! immutable operators "can either be fused and compiled or be converted
//! back to the original mutable operators").
//!
//! `immut::access` becomes a zero-copy `aten::` view — safe because a fully
//! functionalized region contains no mutation that could write through the
//! alias. `immut::assign` becomes `clone` + view + `copy_`, preserving value
//! semantics at the cost of one materialized copy.

use tssa_ir::{Graph, MutateKind, Op, Type};

/// Statistics from [`defunctionalize`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DefunctionalizeStats {
    /// `immut::access` nodes turned into views.
    pub accesses_to_views: usize,
    /// `immut::assign` nodes expanded into clone+view+copy_.
    pub assigns_to_mutations: usize,
}

/// Rewrite every `immut::access`/`immut::assign` back to view/mutation form.
pub fn defunctionalize(g: &mut Graph) -> DefunctionalizeStats {
    let mut stats = DefunctionalizeStats::default();
    for n in g.nodes_recursive(g.top()) {
        if g.is_removed(n) {
            continue;
        }
        let node = g.node(n).clone();
        match node.op {
            Op::Access(kind) => {
                g.set_op(n, Op::View(kind));
                stats.accesses_to_views += 1;
            }
            Op::Assign(kind) => {
                let base = node.inputs[0];
                let src = node.inputs[1];
                let extras = &node.inputs[2..];
                let cl = g.insert_before(n, Op::CloneOp, &[base], &[Type::Tensor]);
                let cl_v = g.out(cl);
                let mut view_inputs = vec![cl_v];
                view_inputs.extend_from_slice(extras);
                let vw = g.insert_before(n, Op::View(kind), &view_inputs, &[Type::Tensor]);
                let vw_v = g.out(vw);
                g.insert_before(
                    n,
                    Op::Mutate(MutateKind::Copy),
                    &[vw_v, src],
                    &[Type::Tensor],
                );
                g.replace_all_uses(node.outputs[0], cl_v);
                g.remove_node(n);
                stats.assigns_to_mutations += 1;
            }
            _ => {}
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert_to_tensorssa;
    use crate::passes::dce;
    use tssa_ir::parse_graph;

    #[test]
    fn round_trip_through_tensorssa() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %b : Tensor = aten::clone(%x)
               %i : int = prim::Constant[value=0]()
               %f : float = prim::Constant[value=5.0]()
               %v : Tensor = aten::select[dim=0](%b, %i)
               %m : Tensor = aten::fill_(%v, %f)
               return (%b)",
        )
        .unwrap();
        convert_to_tensorssa(&mut g);
        dce(&mut g);
        assert!(g.to_string().contains("immut::assign_select"));
        let stats = defunctionalize(&mut g);
        assert!(stats.assigns_to_mutations >= 1);
        let text = g.to_string();
        assert!(!text.contains("immut::"), "{text}");
        assert!(text.contains("aten::copy_"), "{text}");
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
    }

    #[test]
    fn pure_access_becomes_view() {
        let mut g = parse_graph(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %v : Tensor = immut::select[dim=0](%x, %i)
               return (%v)",
        )
        .unwrap();
        let stats = defunctionalize(&mut g);
        assert_eq!(stats.accesses_to_views, 1);
        assert!(g.to_string().contains("aten::select"), "{g}");
        assert!(g.verify().is_ok());
    }
}
