//! Uniform pass infrastructure: the [`Pass`] trait and the [`PassManager`]
//! that runs sequences of passes with per-pass timing and graph-delta
//! accounting.
//!
//! The pipelines used to invoke optimization passes as loose free functions,
//! which left no seam for attribution: nobody could say how long DCE took or
//! how many nodes fusion removed on a given compile. Every transformation is
//! now a [`Pass`] — the TensorSSA conversion, the cleanup passes, vertical
//! fusion, loop parallelization — and a [`PassManager`] runs them in order,
//! producing one [`PassRun`] record (and, when a
//! [`tssa_obs::TraceScope`] is supplied, one child span) per pass.
//!
//! # Examples
//!
//! ```
//! use tssa_core::{PassManager, passes::{ConstantFold, Dce}};
//! use tssa_ir::parse_graph;
//! use tssa_obs::TraceScope;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = parse_graph(
//!     "graph():
//!        %a : int = prim::Constant[value=2]()
//!        %b : int = prim::Constant[value=3]()
//!        %c : int = aten::int_add(%a, %b)
//!        return (%c)",
//! )?;
//! let mut pm = PassManager::new().with(ConstantFold).with(Dce);
//! let runs = pm.run(&mut g, &TraceScope::disabled());
//! assert_eq!(runs[0].name, "constant-fold");
//! assert_eq!(runs[0].rewrites, 1);
//! assert!(runs[1].nodes_after < runs[1].nodes_before);
//! # Ok(())
//! # }
//! ```

use std::time::{Duration, Instant};

use tssa_ir::Graph;
use tssa_obs::{MetricsRegistry, TraceScope};

/// One graph transformation with a stable name.
///
/// `run` takes `&mut self` so passes can retain per-run details beyond the
/// rewrite count (e.g. the conversion pass keeps its full
/// [`crate::ConversionStats`]); those extras surface through
/// [`Pass::counters`] and end up on the pass's span and [`PassRun`] record.
pub trait Pass {
    /// Stable display name, e.g. `"dce"` — used as the span name
    /// (`pass:<name>`) and in reports.
    fn name(&self) -> &'static str;

    /// Apply the pass to `g`, returning the number of rewrites performed
    /// (nodes removed, merged, hoisted, fused… — the pass's own unit).
    fn run(&mut self, g: &mut Graph) -> usize;

    /// Extra counters describing the most recent `run`, beyond the rewrite
    /// count and node delta the manager records for every pass.
    fn counters(&self) -> Vec<(&'static str, i64)> {
        Vec::new()
    }
}

/// An invariant checker the [`PassManager`] re-runs after **every** pass —
/// the seam the pass sanitizer in `tssa-lint` plugs into. Hooks observe the
/// graph between passes and report the first broken invariant, which the
/// manager attributes to the pass that just ran (`pass:<name>`).
///
/// `check` takes `&mut self` so hooks can carry state across passes (the
/// effect sanitizer ratchets a violation baseline downward: a pass may
/// remove mutations but never introduce new ones).
pub trait PassHook {
    /// Stable display name of the hook, e.g. `"lint-sanitizer"`.
    fn name(&self) -> &'static str;

    /// Observe the captured graph before the first pass runs (baseline).
    fn begin(&mut self, g: &Graph) {
        let _ = g;
    }

    /// Check invariants after `pass` ran.
    ///
    /// # Errors
    ///
    /// Describe the first violated invariant; the manager wraps it in a
    /// [`SanitizerViolation`] attributing it to `pass`.
    fn check(&mut self, pass: &'static str, g: &Graph) -> Result<(), String>;
}

/// A [`PassHook`] failure, attributed to the pass after which it fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SanitizerViolation {
    /// [`Pass::name`] of the offending pass.
    pub pass: &'static str,
    /// [`PassHook::name`] of the hook that caught it.
    pub hook: &'static str,
    /// Description of the broken invariant.
    pub message: String,
}

impl std::fmt::Display for SanitizerViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pass:{} broke an invariant ({}): {}",
            self.pass, self.hook, self.message
        )
    }
}

impl std::error::Error for SanitizerViolation {}

/// The record of one pass execution inside [`PassManager::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct PassRun {
    /// [`Pass::name`] of the pass that ran.
    pub name: &'static str,
    /// Rewrites the pass reported.
    pub rewrites: usize,
    /// Live nodes in the graph before the pass.
    pub nodes_before: usize,
    /// Live nodes after the pass.
    pub nodes_after: usize,
    /// Wall-clock duration of the pass (bookkeeping included).
    pub duration: Duration,
    /// [`Pass::counters`] of the run.
    pub counters: Vec<(&'static str, i64)>,
}

impl PassRun {
    /// Net change in live node count (positive = grew).
    pub fn node_delta(&self) -> i64 {
        self.nodes_after as i64 - self.nodes_before as i64
    }
}

/// Runs an ordered sequence of passes over a graph, recording timing and
/// graph deltas per pass, and emitting one `pass:<name>` span per pass when
/// given an enabled [`TraceScope`]. Every run also feeds the per-pass
/// wall-time histogram `tssa_pass_wall_us{pass=...}` in a
/// [`MetricsRegistry`] — the process-wide one by default
/// ([`MetricsRegistry::global`]), or the one set via
/// [`PassManager::with_metrics`].
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    hooks: Vec<Box<dyn PassHook>>,
    metrics: MetricsRegistry,
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

impl PassManager {
    /// An empty manager, registering pass timings into
    /// [`MetricsRegistry::global`].
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            hooks: Vec::new(),
            metrics: MetricsRegistry::global().clone(),
        }
    }

    /// Register pass wall-time histograms into `registry` instead of the
    /// process-wide default (isolation for tests and benchmarks).
    #[must_use]
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> PassManager {
        self.metrics = registry;
        self
    }

    /// Append a pass (builder style).
    #[must_use]
    pub fn with(mut self, pass: impl Pass + 'static) -> PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Append a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) {
        self.passes.push(Box::new(pass));
    }

    /// Register a sanitizer hook, re-checked after every pass (builder
    /// style).
    #[must_use]
    pub fn with_hook(mut self, hook: impl PassHook + 'static) -> PassManager {
        self.hooks.push(Box::new(hook));
        self
    }

    /// Register a sanitizer hook, re-checked after every pass.
    pub fn add_hook(&mut self, hook: impl PassHook + 'static) {
        self.hooks.push(Box::new(hook));
    }

    /// Names of the registered hooks.
    pub fn hook_names(&self) -> Vec<&'static str> {
        self.hooks.iter().map(|h| h.name()).collect()
    }

    /// Names of the registered passes, in run order.
    pub fn names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run every pass in order over `g`. Each pass gets a `pass:<name>`
    /// child span under `scope` carrying its rewrite count, node delta and
    /// [`Pass::counters`]; the same data is returned as [`PassRun`]s for
    /// callers that want programmatic access (the pipelines store them on
    /// the compiled program).
    ///
    /// # Panics
    ///
    /// Panics if a registered [`PassHook`] reports a violation — a pass
    /// broke a graph invariant, which is a compiler bug, not a user error.
    /// Use [`PassManager::try_run`] to handle violations programmatically.
    pub fn run(&mut self, g: &mut Graph, scope: &TraceScope) -> Vec<PassRun> {
        match self.try_run(g, scope) {
            Ok(runs) => runs,
            Err(v) => panic!("pass sanitizer: {v}"),
        }
    }

    /// As [`PassManager::run`], but a [`PassHook`] violation stops the
    /// pipeline and is returned (attributed to the offending pass) instead
    /// of panicking. The violation is also recorded on the offending pass's
    /// `pass:<name>` span as a `sanitizer_violations` counter, so it shows
    /// up in the trace tree next to the pass timings.
    ///
    /// # Errors
    ///
    /// The first [`SanitizerViolation`] any hook reports.
    pub fn try_run(
        &mut self,
        g: &mut Graph,
        scope: &TraceScope,
    ) -> Result<Vec<PassRun>, SanitizerViolation> {
        for hook in &mut self.hooks {
            hook.begin(g);
        }
        let mut runs = Vec::with_capacity(self.passes.len());
        for pass in &mut self.passes {
            let mut span = scope.span(format!("pass:{}", pass.name()), "pass");
            let start = Instant::now();
            let nodes_before = g.live_node_count();
            let rewrites = pass.run(g);
            let nodes_after = g.live_node_count();
            let counters = pass.counters();
            let duration = start.elapsed();
            // When this compile is traced, the observation doubles as the
            // series' exemplar: the exposition line links back to the trace
            // (root span id) that produced it.
            self.metrics
                .histogram(
                    "tssa_pass_wall_us",
                    "Per-pass compile wall time (power-of-two buckets, µs)",
                    &[("pass", pass.name())],
                )
                .observe_with_exemplar(
                    duration.as_micros().min(u128::from(u64::MAX)) as u64,
                    span.root_id(),
                );
            span.counter("rewrites", rewrites as i64);
            span.counter("nodes_before", nodes_before as i64);
            span.counter("nodes_after", nodes_after as i64);
            span.counters(counters.iter().copied());
            let mut violation = None;
            for hook in &mut self.hooks {
                if let Err(message) = hook.check(pass.name(), g) {
                    violation = Some(SanitizerViolation {
                        pass: pass.name(),
                        hook: hook.name(),
                        message,
                    });
                    break;
                }
            }
            if violation.is_some() {
                span.counter("sanitizer_violations", 1);
            }
            span.finish();
            runs.push(PassRun {
                name: pass.name(),
                rewrites,
                nodes_before,
                nodes_after,
                duration,
                counters,
            });
            if let Some(v) = violation {
                return Err(v);
            }
        }
        Ok(runs)
    }
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::{ConstantFold, Cse, Dce};
    use tssa_ir::parse_graph;
    use tssa_obs::Tracer;

    fn sample() -> Graph {
        parse_graph(
            "graph(%x : Tensor):
               %a : Tensor = aten::relu(%x)
               %b : Tensor = aten::relu(%x)
               %c : Tensor = aten::add(%a, %b)
               %dead : Tensor = aten::tanh(%x)
               return (%c)",
        )
        .unwrap()
    }

    #[test]
    fn manager_runs_in_order_and_accounts_deltas() {
        let mut g = sample();
        let mut pm = PassManager::new().with(Cse).with(Dce);
        assert_eq!(pm.names(), vec!["cse", "dce"]);
        assert_eq!(pm.len(), 2);
        assert!(!pm.is_empty());
        let runs = pm.run(&mut g, &TraceScope::disabled());
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].name, "cse");
        assert_eq!(runs[0].rewrites, 1, "duplicate relu merged");
        assert_eq!(runs[0].node_delta(), -1);
        // DCE sees the graph CSE left behind: the dead tanh dies.
        assert_eq!(runs[1].nodes_before, runs[0].nodes_after);
        assert!(runs[1].rewrites >= 1);
        assert!(g.verify().is_ok());
    }

    #[test]
    fn manager_emits_one_span_per_pass() {
        let (tracer, sink) = Tracer::ring(16);
        let root = tracer.root("compile", "compile");
        let mut g = sample();
        let mut pm = PassManager::new().with(ConstantFold).with(Cse).with(Dce);
        pm.run(&mut g, &root.scope());
        root.finish();
        let records = sink.snapshot();
        assert_eq!(records.len(), 4);
        let compile = &records[0];
        assert_eq!(compile.name, "compile");
        let names: Vec<&str> = records[1..].iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["pass:constant-fold", "pass:cse", "pass:dce"]);
        for r in &records[1..] {
            assert_eq!(r.parent, Some(compile.id));
            assert_eq!(r.category, "pass");
            assert!(r.counter("rewrites").is_some());
            assert!(r.counter("nodes_before").is_some());
        }
    }

    struct FailAfter {
        target: &'static str,
    }

    impl PassHook for FailAfter {
        fn name(&self) -> &'static str {
            "fail-after"
        }

        fn check(&mut self, pass: &'static str, _g: &Graph) -> Result<(), String> {
            if pass == self.target {
                Err("injected violation".to_string())
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn hook_violation_is_attributed_to_offending_pass() {
        let (tracer, sink) = Tracer::ring(16);
        let root = tracer.root("compile", "compile");
        let mut g = sample();
        let mut pm = PassManager::new()
            .with(Cse)
            .with(Dce)
            .with_hook(FailAfter { target: "dce" });
        assert_eq!(pm.hook_names(), vec!["fail-after"]);
        let err = pm.try_run(&mut g, &root.scope()).unwrap_err();
        root.finish();
        assert_eq!(err.pass, "dce");
        assert_eq!(err.hook, "fail-after");
        assert!(err.to_string().contains("pass:dce"), "{err}");
        // The violation surfaces in the span tree on the offending pass.
        let records = sink.snapshot();
        let dce = records.iter().find(|r| r.name == "pass:dce").unwrap();
        assert_eq!(dce.counter("sanitizer_violations"), Some(1));
        let cse = records.iter().find(|r| r.name == "pass:cse").unwrap();
        assert_eq!(cse.counter("sanitizer_violations"), None);
    }

    #[test]
    #[should_panic(expected = "pass sanitizer")]
    fn run_panics_on_hook_violation() {
        let mut g = sample();
        let mut pm = PassManager::new()
            .with(Dce)
            .with_hook(FailAfter { target: "dce" });
        pm.run(&mut g, &TraceScope::disabled());
    }

    #[test]
    fn pass_timings_land_in_the_metrics_registry() {
        let registry = MetricsRegistry::new();
        let mut g = sample();
        let mut pm = PassManager::new()
            .with(Cse)
            .with(Dce)
            .with_metrics(registry.clone());
        pm.run(&mut g, &TraceScope::disabled());
        pm.run(&mut g, &TraceScope::disabled());
        let dce = registry.histogram("tssa_pass_wall_us", "", &[("pass", "dce")]);
        assert_eq!(dce.count(), 2, "one sample per dce run");
        let text = registry.prometheus_text();
        assert!(
            text.contains("tssa_pass_wall_us_count{pass=\"cse\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn pass_runs_report_counters() {
        let mut g = sample();
        let mut pm = PassManager::new().with(Dce);
        let runs = pm.run(&mut g, &TraceScope::disabled());
        assert_eq!(runs[0].counters, Vec::new());
        assert!(runs[0].duration >= Duration::ZERO);
    }
}
