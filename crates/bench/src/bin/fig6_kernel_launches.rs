//! Figure 6: counts of kernel launches per workload per pipeline.

use tssa_backend::DeviceProfile;
use tssa_bench::{measure_all_pipelines, print_table};
use tssa_workloads::all_workloads;

fn main() {
    let device = DeviceProfile::consumer();
    let mut records = Vec::new();
    for w in all_workloads() {
        records.extend(measure_all_pipelines(&w, &device, 0, 0, 42));
    }
    let pipelines: Vec<String> = {
        let mut v = Vec::new();
        for r in &records {
            if !v.contains(&r.pipeline) {
                v.push(r.pipeline.clone());
            }
        }
        v
    };
    let mut header = vec!["workload".to_string()];
    header.extend(pipelines.iter().cloned());
    let mut rows = Vec::new();
    for w in all_workloads() {
        let mut row = vec![w.name.to_string()];
        for p in &pipelines {
            let launches = records
                .iter()
                .find(|r| r.workload == w.name && &r.pipeline == p)
                .map(|r| r.stats.kernel_launches)
                .unwrap();
            row.push(launches.to_string());
        }
        rows.push(row);
    }
    print_table("Figure 6 — kernel launches", &header, &rows);
}
