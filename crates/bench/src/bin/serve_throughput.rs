//! Closed-loop load generator for the `tssa-serve` inference engine.
//!
//! Three experiments, documented in `EXPERIMENTS.md`:
//!
//! 1. **Cold vs warm** — per workload, the latency of acquiring a plan
//!    through a cold cache (frontend parse + full pipeline compile) versus
//!    a warm cache (a keyed lookup), plus first-request versus steady-state
//!    end-to-end latency for context. A second table drills the *restart*
//!    variant: first load on a cold boot (compile + write-back) versus on a
//!    disk-warm boot (deserialize from the persistent plan store), the
//!    ratio `EXPERIMENTS.md` quotes for warm-restart deployments.
//! 2. **Worker scaling** — closed-loop throughput with 8 client threads as
//!    the pool grows 1 → 2 → 4 workers.
//! 3. **Overload** — a shallow admission queue offered far more load than
//!    capacity: everything completes or is shed with a typed error.
//! 4. **Trace attribution** — requests run under a tracer; end-to-end time
//!    is decomposed into queue / batch / exec phases from the span tree.
//! 5. **Tracing overhead** — the same closed-loop load with tracing off and
//!    with always-on sampled tracing; the simulated makespan must agree
//!    within 5%, the bound production deployments rely on.
//! 6. **Sampled-trace walkthrough** — head-sampling at rate 0 with one
//!    injected slow execution: the tail-keep rules retain exactly the
//!    interesting trace, printed as a text tree next to the sampler ledger
//!    and the registry's Prometheus series.
//! 7. **Edge overhead** — the same requests issued via direct `submit`
//!    versus a real TCP round trip through the `tssa-net` gateway (HTTP
//!    framing + JSON wire codec); the per-request overhead in µs is the
//!    cost of the network front-end.
//! 8. **Autoscaling** — closed-loop TCP load against a deliberately slow
//!    single worker; the autoscaler reads the live queue-wait histogram,
//!    grows the pool, and shrinks it back after the load stops. Both
//!    transitions are timed and the ledger must still reconcile.
//! 9. **Shape classes** — every workload loaded at six batch sizes through
//!    one service. The shape-class cache admits them all from a single
//!    compile; the gate is the global `tssa_pass_wall_us` histogram, which
//!    must record zero new samples after each class's first compile. The
//!    recompiles a per-shape cache would have paid are written to
//!    `perf/BENCH_9.json` with `--json`.
//! 10. **Profiling overhead** — the same closed-loop load with the op-level
//!     execution profiler off and with sampled (10%) profiling on; the
//!     simulated makespan must agree within 5%, the bound that keeps the
//!     profiler always-on in production. Written to `perf/BENCH_10.json`
//!     with `--json`.
//!
//! Throughput experiments report two figures with explicit tags: `sim` is
//! the simulated-device makespan (the repository's evaluation methodology
//! — deterministic, and what every assertion checks) and `wall` is host
//! wall-clock (informational only; bounded by the host's core count and
//! scheduler, never asserted).
//!
//! The scaling experiment runs with sampled tracing *on by default* — the
//! production posture this crate is arguing for — and the overhead
//! experiment is what makes that default defensible.
//!
//! Run all experiments with no arguments, or one by name
//! (`serve_throughput shape-class --json perf/BENCH_9.json`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tssa_backend::ExecStats;
use tssa_bench::print_table;
use tssa_net::{
    encode_infer_request, roundtrip, AutoscaleConfig, Autoscaler, Gateway, GatewayConfig,
};
use tssa_obs::text_tree;
use tssa_serve::{
    ArgRole, BatchSpec, FaultKind, FaultPlan, MetricsRegistry, PipelineKind, PlanStore, Profiler,
    RingSink, Sampler, ServeConfig, ServeError, Service, TraceSink, Tracer,
};
use tssa_workloads::{all_workloads, Workload};

/// The default production tracer for these experiments: head-sample 1% of
/// traces, tail-keep anything slower than 50ms or carrying a fault mark.
fn sampled_tracer() -> (Tracer, Arc<RingSink>) {
    let sink = Arc::new(RingSink::new(64 * 1024));
    let sampler = Sampler::new(0x5EED, 0.01).slow_after(Duration::from_millis(50));
    let tracer = Tracer::sampled(Arc::clone(&sink) as Arc<dyn TraceSink>, sampler);
    (tracer, sink)
}

/// Batch contract per workload: which arguments carry per-request rows
/// along dimension 0, and which are shared (weights, anchors, lengths).
fn spec_for(w: &Workload) -> BatchSpec {
    let (args, outputs) = match w.name {
        "yolov3" => (vec![ArgRole::Stacked], vec![ArgRole::Stacked]),
        "yolact" => (vec![ArgRole::Stacked], vec![ArgRole::Stacked]),
        "fcos" => (
            vec![
                ArgRole::Stacked,
                ArgRole::Stacked,
                ArgRole::Stacked,
                ArgRole::Shared,
            ],
            vec![ArgRole::Stacked, ArgRole::Stacked],
        ),
        // ssd loops over a runtime batch-count argument and the NLP and
        // attention workloads batch along dimension 1 (or scale the head
        // dimension), so they run unbatched: the service still caches,
        // pools and meters them.
        _ => (vec![ArgRole::Shared; w.inputs(0, 0, 1).len()], Vec::new()),
    };
    BatchSpec { args, outputs }
}

fn median_us(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn cold_vs_warm() {
    const WARM_SAMPLES: usize = 25;
    let mut rows = Vec::new();
    let mut min_load_ratio = f64::MAX;
    for w in all_workloads() {
        let service = Service::new(ServeConfig::default().with_workers(1));
        let inputs = w.inputs(0, 0, 42);
        let spec = spec_for(&w);

        // Cold: the cache has never seen this (source, pipeline, signature).
        let t = Instant::now();
        let model = service
            .loader(w.source)
            .pipeline(PipelineKind::TensorSsa)
            .example(&inputs)
            .batch(spec.clone())
            .load()
            .expect("workload compiles");
        let cold_load_us = t.elapsed().as_secs_f64() * 1e6;
        let t = Instant::now();
        service
            .submit(&model, inputs.clone())
            .expect("admitted")
            .wait()
            .expect("first request completes");
        let cold_req_us = cold_load_us + t.elapsed().as_secs_f64() * 1e6;

        // Warm: same key, plan already resident.
        let warm_load_us = median_us(
            (0..WARM_SAMPLES)
                .map(|_| {
                    let t = Instant::now();
                    service
                        .loader(w.source)
                        .pipeline(PipelineKind::TensorSsa)
                        .example(&inputs)
                        .batch(spec.clone())
                        .load()
                        .expect("cache hit");
                    t.elapsed().as_secs_f64() * 1e6
                })
                .collect(),
        );
        let warm_req_us = median_us(
            (0..WARM_SAMPLES)
                .map(|_| {
                    let t = Instant::now();
                    service
                        .submit(&model, inputs.clone())
                        .expect("admitted")
                        .wait()
                        .expect("completes");
                    t.elapsed().as_secs_f64() * 1e6
                })
                .collect(),
        );
        let load_ratio = cold_load_us / warm_load_us.max(1e-3);
        min_load_ratio = min_load_ratio.min(load_ratio);
        rows.push(vec![
            w.name.to_string(),
            format!("{cold_load_us:.1}"),
            format!("{warm_load_us:.1}"),
            format!("{load_ratio:.0}x"),
            format!("{cold_req_us:.1}"),
            format!("{warm_req_us:.1}"),
            format!("{:.2}x", cold_req_us / warm_req_us.max(1e-3)),
        ]);
        drop(service);
    }
    print_table(
        "Serve — cold vs warm plan cache (TensorSSA pipeline)",
        &[
            "workload".into(),
            "cold load us".into(),
            "warm load us".into(),
            "load ratio".into(),
            "cold req us".into(),
            "warm req us".into(),
            "e2e ratio".into(),
        ],
        &rows,
    );
    println!(
        "  worst-case cold/warm plan-acquisition ratio: {min_load_ratio:.0}x (target >= 10x)\n"
    );
    assert!(
        min_load_ratio >= 10.0,
        "plan cache must cut acquisition latency at least 10x on every workload"
    );
}

/// Experiment 1b: the *restart* story. A fresh process has an empty
/// in-memory cache, so without persistence every deploy pays the full
/// compile again. With a plan store on disk the second boot's first load is
/// a deserialization, not a compile.
fn restart_cold_vs_warm() {
    let dir = std::env::temp_dir().join(format!("tssa-bench-restart-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut rows = Vec::new();
    let mut min_ratio = f64::MAX;
    // The paper's workloads compile in under a millisecond, so the drill
    // also scales a synthetic body to production-sized graphs (the compile
    // cost grows superlinearly with the pass pipeline's work; the
    // deserialize cost only with the plan text). The >= 5x bar is asserted
    // on those depth-scaled cases.
    let deep = |n: usize| -> String {
        let mut s = String::from("def f(x: Tensor):\n    y = x.clone()\n");
        for i in 0..n {
            s.push_str(&format!("    y[{}] = relu(y[{}])\n", i % 8, (i + 1) % 8));
        }
        s.push_str("    return y\n");
        s
    };
    let mut cases: Vec<(String, String, Vec<tssa_backend::RtValue>, BatchSpec)> = all_workloads()
        .into_iter()
        .map(|w| {
            (
                w.name.to_string(),
                w.source.to_string(),
                w.inputs(0, 0, 42),
                spec_for(&w),
            )
        })
        .collect();
    for n in [64usize, 128] {
        cases.push((
            format!("deep-{n}"),
            deep(n),
            vec![tssa_backend::RtValue::Tensor(tssa_tensor::Tensor::ones(&[
                8, 4,
            ]))],
            BatchSpec {
                args: vec![ArgRole::Shared],
                outputs: Vec::new(),
            },
        ));
    }
    for (name, source, inputs, spec) in &cases {
        // Boot 1: empty disk — the load compiles, then writes back.
        let store = Arc::new(PlanStore::open(&dir).expect("open store"));
        let service = Service::new(
            ServeConfig::default()
                .with_workers(1)
                .with_plan_store(Some(Arc::clone(&store))),
        );
        let t = Instant::now();
        service
            .loader(source)
            .pipeline(PipelineKind::TensorSsa)
            .example(inputs)
            .batch(spec.clone())
            .load()
            .expect("cold boot compiles");
        let cold_us = t.elapsed().as_secs_f64() * 1e6;
        store.flush();
        drop(service);

        // Boot 2: a new process image — fresh in-memory cache, same disk.
        let store = Arc::new(PlanStore::open(&dir).expect("reopen store"));
        let service = Service::new(
            ServeConfig::default()
                .with_workers(1)
                .with_plan_store(Some(Arc::clone(&store))),
        );
        let t = Instant::now();
        service
            .loader(source)
            .pipeline(PipelineKind::TensorSsa)
            .example(inputs)
            .batch(spec.clone())
            .load()
            .expect("warm boot loads from disk");
        let warm_us = t.elapsed().as_secs_f64() * 1e6;
        let stats = store.stats();
        assert_eq!(
            stats.disk_hits, 1,
            "{name}: warm boot must hit the disk cache"
        );
        drop(service);

        let ratio = cold_us / warm_us.max(1e-3);
        if name.starts_with("deep-") {
            min_ratio = min_ratio.min(ratio);
        }
        rows.push(vec![
            name.clone(),
            format!("{cold_us:.1}"),
            format!("{warm_us:.1}"),
            format!("{ratio:.1}x"),
        ]);
    }
    std::fs::remove_dir_all(&dir).ok();
    print_table(
        "Serve — restart drill: first load, cold boot vs disk-warm boot",
        &[
            "workload".into(),
            "cold boot us".into(),
            "warm boot us".into(),
            "ratio".into(),
        ],
        &rows,
    );
    println!(
        "  worst-case cold/warm restart ratio at depth >= 64: {min_ratio:.1}x (target >= 5x)\n"
    );
    assert!(
        min_ratio >= 5.0,
        "persistent plan cache must cut restart latency at least 5x on production-sized graphs"
    );
}

fn worker_scaling() {
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 30;
    let mut rows = Vec::new();
    let mut last_sim_rps = 0.0;
    let mut monotonic = true;
    // Always-on sampled tracing: the scaling numbers are measured in the
    // production posture, not a tracing-free lab configuration.
    let (tracer, _sink) = sampled_tracer();
    for workers in [1usize, 2, 4] {
        let service = Arc::new(Service::new(
            ServeConfig::default()
                .with_workers(workers)
                .with_queue_depth(256)
                .with_max_batch(8)
                .with_max_wait(Duration::from_micros(500))
                .with_tracer(tracer.clone())
                // One executor thread each: pool width, not intra-op
                // threading, is the variable under test.
                .with_worker_parallel_threads(Some(1)),
        ));
        let w = Workload::by_name("yolov3").expect("known workload");
        let model = service
            .loader(w.source)
            .pipeline(PipelineKind::TensorSsa)
            .example(&w.inputs(2, 0, 1))
            .batch(spec_for(&w))
            .load()
            .expect("compiles");
        let completed = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..CLIENTS {
                let service = Arc::clone(&service);
                let model = model.clone();
                let completed = &completed;
                let inputs: Vec<_> = (0..REQUESTS_PER_CLIENT)
                    .map(|r| w.inputs(2, 0, (c * REQUESTS_PER_CLIENT + r) as u64))
                    .collect();
                scope.spawn(move || {
                    for i in inputs {
                        // Closed loop: one outstanding request per client.
                        match service.submit(&model, i) {
                            Ok(ticket) => {
                                ticket.wait().expect("request completes");
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("admission failed under closed loop: {e}"),
                        }
                    }
                });
            }
        });
        let elapsed = t0.elapsed().as_secs_f64();
        let done = completed.load(Ordering::Relaxed);
        let wall_rps = done as f64 / elapsed;
        let snapshot = service.metrics();
        let report = Arc::try_unwrap(service)
            .unwrap_or_else(|_| panic!("all clients joined"))
            .shutdown();
        assert_eq!(report.metrics.completed, done);
        // The backend charges simulated device/host time (the repository's
        // evaluation methodology); the pool's simulated makespan is the
        // busiest worker's accumulated execution time. Wall-clock cannot
        // scale past the host's core count, so monotonicity is asserted on
        // the simulated figure.
        let makespan_ns = report
            .per_worker
            .iter()
            .map(ExecStats::total_ns)
            .fold(0.0f64, f64::max);
        let sim_rps = done as f64 / (makespan_ns / 1e9).max(1e-12);
        rows.push(vec![
            workers.to_string(),
            done.to_string(),
            format!("{wall_rps:.0}"),
            format!("{:.2}", makespan_ns / 1e6),
            format!("{sim_rps:.0}"),
            format!("{:.2}", snapshot.avg_batch_occupancy),
        ]);
        if sim_rps < last_sim_rps {
            monotonic = false;
        }
        last_sim_rps = sim_rps;
    }
    print_table(
        "Serve — closed-loop worker scaling (yolov3, 8 clients, serial executors)",
        &[
            "workers".into(),
            "requests".into(),
            "wall req/s".into(),
            "sim makespan ms".into(),
            "sim req/s".into(),
            "avg batch".into(),
        ],
        &rows,
    );
    println!(
        "  sim  (authoritative): simulated-device makespan; monotonic 1 -> 2 -> 4 workers: {monotonic} (asserted)\n  wall (informational): host wall-clock, bounded by the host's {} core(s); never asserted\n",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    assert!(
        monotonic,
        "adding workers must not lower simulated throughput"
    );
}

fn overload() {
    const OFFERED: usize = 400;
    let w = Workload::by_name("fcos").expect("known workload");
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(4)
            .with_max_batch(1),
    );
    let inputs = w.inputs(4, 0, 3);
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(spec_for(&w))
        .load()
        .expect("compiles");
    let mut tickets = Vec::new();
    let mut shed = 0usize;
    for _ in 0..OFFERED {
        match service.submit(&model, inputs.clone()) {
            Ok(t) => tickets.push(t),
            Err(ServeError::QueueFull { .. }) => shed += 1,
            Err(e) => panic!("unexpected admission error: {e}"),
        }
    }
    let accepted = tickets.len();
    for t in tickets {
        t.wait().expect("accepted requests complete");
    }
    let report = service.shutdown();
    println!("Serve — overload (queue depth 4, 1 worker, {OFFERED} offered)");
    println!("  accepted {accepted}, shed {shed}; every request reached a typed terminal state");
    println!("{}\n", report.metrics);
    assert_eq!(report.metrics.resolved(), OFFERED as u64);
    assert!(shed > 0, "overload run must actually shed");
}

fn trace_attribution() {
    const REQUESTS: usize = 40;
    let (tracer, sink) = tssa_obs::Tracer::ring(16 * 1024);
    let w = Workload::by_name("attention").expect("known workload");
    let service = Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_tracer(tracer.clone()),
    );
    let inputs = w.inputs(2, 24, 9);
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(spec_for(&w))
        .load()
        .expect("compiles");
    let tickets: Vec<_> = (0..REQUESTS)
        .map(|_| service.submit(&model, inputs.clone()).expect("admitted"))
        .collect();
    for t in tickets {
        t.wait().expect("completes");
    }
    service.shutdown();

    let records = sink.snapshot();
    let median = |name: &str| {
        median_us(
            records
                .iter()
                .filter(|r| r.name == name)
                .map(|r| r.dur_ns as f64 / 1_000.0)
                .collect(),
        )
    };
    let requests = records.iter().filter(|r| r.name == "request").count();
    assert_eq!(requests, REQUESTS, "one root span per submitted request");
    let rows = vec![
        vec![
            "request (end-to-end)".into(),
            format!("{:.1}", median("request")),
        ],
        vec!["  queue".into(), format!("{:.1}", median("queue"))],
        vec![
            "  batch (shared run)".into(),
            format!("{:.1}", median("batch")),
        ],
        vec!["    exec".into(), format!("{:.1}", median("exec"))],
        vec![
            "    batch[0] kernel".into(),
            format!("{:.1}", median("batch[0]")),
        ],
    ];
    print_table(
        &format!("Serve — trace attribution (attention, {REQUESTS} requests, median us)"),
        &["span".into(), "median us".into()],
        &rows,
    );
    println!(
        "  {} spans captured ({} dropped by the ring buffer)\n",
        records.len(),
        sink.dropped()
    );
}

fn tracing_overhead() {
    const REQUESTS: usize = 120;
    // max_batch 1 pins the execution plan: both runs perform the identical
    // sequence of unbatched executions, so the simulated makespans are
    // directly comparable and the only variable is the tracing layer.
    let run = |tracer: Option<Tracer>| -> f64 {
        let mut config = ServeConfig::default()
            .with_workers(2)
            .with_queue_depth(256)
            .with_max_batch(1)
            .with_worker_parallel_threads(Some(1));
        if let Some(t) = &tracer {
            config = config.with_tracer(t.clone());
        }
        let service = Service::new(config);
        let w = Workload::by_name("yolov3").expect("known workload");
        let inputs = w.inputs(2, 0, 7);
        let model = service
            .loader(w.source)
            .pipeline(PipelineKind::TensorSsa)
            .example(&inputs)
            .batch(spec_for(&w))
            .load()
            .expect("compiles");
        let tickets: Vec<_> = (0..REQUESTS)
            .map(|_| service.submit(&model, inputs.clone()).expect("admitted"))
            .collect();
        for t in tickets {
            t.wait().expect("completes");
        }
        let report = service.shutdown();
        assert_eq!(report.metrics.completed, REQUESTS as u64);
        report
            .per_worker
            .iter()
            .map(ExecStats::total_ns)
            .fold(0.0f64, f64::max)
    };
    let untraced_ns = run(None);
    let (tracer, sink) = sampled_tracer();
    let traced_ns = run(Some(tracer.clone()));
    let ratio = traced_ns / untraced_ns.max(1e-9);
    let stats = tracer.sampler_stats().expect("sampled tracer");
    println!("Serve — tracing overhead (yolov3, {REQUESTS} requests, max_batch 1)");
    println!(
        "  simulated makespan: untraced {:.2}ms, sampled-traced {:.2}ms ({:.3}x)",
        untraced_ns / 1e6,
        traced_ns / 1e6,
        ratio
    );
    println!(
        "  sampler: {} roots, {} head-kept, {} tail-kept, {} traces dropped, {} spans in the ring\n",
        stats.roots,
        stats.head_kept,
        stats.tail_kept,
        stats.dropped_traces,
        sink.snapshot().len()
    );
    assert!(
        ratio <= 1.05,
        "always-on sampled tracing must stay within 5% of untraced makespan ({ratio:.3}x)"
    );
}

fn sampled_trace_walkthrough() {
    const REQUESTS: usize = 32;
    // Rate 0 is the harshest head-sampling setting: *nothing* is kept by
    // the coin flip, so whatever survives did so on the tail-keep rules.
    // One scripted slow execution makes exactly one trace interesting.
    let sink = Arc::new(RingSink::new(16 * 1024));
    let tracer = Tracer::sampled(
        Arc::clone(&sink) as Arc<dyn TraceSink>,
        Sampler::new(7, 0.0),
    );
    let faults = FaultPlan::script()
        .at(FaultKind::SlowExec, 0)
        .with_slow_exec(Duration::from_micros(300))
        .faults();
    let registry = MetricsRegistry::new();
    let w = Workload::by_name("yolov3").expect("known workload");
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_max_batch(4)
            .with_tracer(tracer.clone())
            .with_faults(faults)
            .with_registry(registry.clone()),
    );
    let inputs = w.inputs(2, 0, 5);
    let model = service
        .loader(w.source)
        .named("yolo-post")
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(spec_for(&w))
        .load()
        .expect("compiles");
    for _ in 0..REQUESTS {
        service
            .submit(&model, inputs.clone())
            .expect("admitted")
            .wait()
            .expect("completes");
    }
    let report = service.shutdown();
    report.metrics.register_into(&registry);

    let stats = tracer.sampler_stats().expect("sampled tracer");
    println!("Serve — sampled-trace walkthrough (yolov3, {REQUESTS} requests, head rate 0)");
    println!(
        "  sampler ledger: {} roots, {} head-kept, {} tail-kept, {} traces dropped",
        stats.roots, stats.head_kept, stats.tail_kept, stats.dropped_traces
    );
    assert!(
        stats.tail_kept >= 1,
        "the fault-marked trace must survive tail-keep"
    );
    println!("  the kept trace (every span of the slow request, nothing else):");
    for line in text_tree(&sink.snapshot()).lines() {
        println!("    {line}");
    }
    println!("  registry excerpt (one exposition: first-class series + bridged snapshot):");
    let exposition = registry.prometheus_text();
    for line in exposition.lines().filter(|l| {
        l.starts_with("tssa_queue_wait_us_count")
            || l.starts_with("tssa_batch_occupancy_sum")
            || l.starts_with("tssa_batch_occupancy_count")
            || l.starts_with("tssa_requests_completed_total")
            || l.starts_with("tssa_faults_injected_total")
    }) {
        println!("    {line}");
    }
    println!();
}

fn edge_overhead() {
    const WARMUP: usize = 10;
    const SAMPLES: usize = 60;
    let w = Workload::by_name("yolov3").expect("known workload");
    let service = Arc::new(Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_depth(64)
            .with_max_batch(1),
    ));
    let inputs = w.inputs(2, 0, 11);
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(spec_for(&w))
        .load()
        .expect("compiles");

    // Direct path: in-process submit + wait.
    let direct = |n: usize| -> Vec<f64> {
        (0..n)
            .map(|_| {
                let t = Instant::now();
                service
                    .submit(&model, inputs.clone())
                    .expect("admitted")
                    .wait()
                    .expect("completes");
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect()
    };
    direct(WARMUP);
    let direct_us = median_us(direct(SAMPLES));

    // Network path: the same requests over one keep-alive TCP connection,
    // paying HTTP framing plus the JSON wire codec both ways.
    let gateway = Gateway::bind(GatewayConfig::default(), Arc::clone(&service)).expect("bind");
    gateway.register_model("yolov3", model.clone());
    let body = encode_infer_request("yolov3", &inputs).expect("encodable inputs");
    let mut stream = std::net::TcpStream::connect(gateway.local_addr()).expect("connect");
    let tcp = |stream: &mut std::net::TcpStream, n: usize| -> Vec<f64> {
        (0..n)
            .map(|_| {
                let t = Instant::now();
                let resp = roundtrip(stream, "POST", "/v1/infer", &[], body.as_bytes())
                    .expect("round trip");
                assert_eq!(resp.status, 200, "{}", resp.text());
                t.elapsed().as_secs_f64() * 1e6
            })
            .collect()
    };
    tcp(&mut stream, WARMUP);
    let tcp_us = median_us(tcp(&mut stream, SAMPLES));
    drop(stream);
    gateway.shutdown();

    let overhead_us = tcp_us - direct_us;
    let report = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("gateway drained"))
        .shutdown();
    assert_eq!(report.metrics.resolved(), report.metrics.submitted);
    println!("Serve — network edge overhead (yolov3, {SAMPLES} samples, median us)");
    println!("  direct submit+wait: {direct_us:.1}us");
    println!(
        "  TCP round trip:     {tcp_us:.1}us (HTTP framing + JSON codec, {} byte body)",
        body.len()
    );
    println!(
        "  edge overhead:      {overhead_us:.1}us/request ({:.2}x)\n",
        tcp_us / direct_us.max(1e-3)
    );
}

fn autoscale() {
    const CLIENTS: usize = 8;
    // A deliberately slow single worker: queue wait builds immediately, so
    // the windowed p99 crosses the high watermark within a few ticks.
    let faults = FaultPlan::seeded(1)
        .with_rate(FaultKind::SlowExec, 1.0, 1_000_000)
        .with_slow_exec(Duration::from_millis(2))
        .faults();
    let service = Arc::new(Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(32)
            .with_max_batch(2)
            .with_max_wait(Duration::from_micros(200))
            .with_faults(faults),
    ));
    let w = Workload::by_name("yolov3").expect("known workload");
    let inputs = w.inputs(2, 0, 13);
    let model = service
        .loader(w.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(spec_for(&w))
        .load()
        .expect("compiles");
    let gateway = Gateway::bind(GatewayConfig::default(), Arc::clone(&service)).expect("bind");
    gateway.register_model("yolov3", model.clone());
    let addr = gateway.local_addr();
    let config = AutoscaleConfig {
        min_workers: 1,
        max_workers: 4,
        high_water_us: 400,
        low_water_us: 200,
        high_ticks: 2,
        low_ticks: 3,
        cooldown_ticks: 1,
        tick: Duration::from_millis(25),
    };
    let autoscaler = Autoscaler::spawn(Arc::clone(&service), config);

    let body = encode_infer_request("yolov3", &inputs).expect("encodable inputs");
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let t0 = Instant::now();
    let grow_us = std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let stop = Arc::clone(&stop);
            let body = body.as_str();
            scope.spawn(move || {
                let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                while !stop.load(Ordering::Relaxed) {
                    match roundtrip(&mut stream, "POST", "/v1/infer", &[], body.as_bytes()) {
                        Ok(resp) => {
                            assert!(resp.status == 200 || resp.status == 429, "{}", resp.text())
                        }
                        Err(_) => break,
                    }
                }
            });
        }
        // Load until the pool grows, then idle until it shrinks back.
        let deadline = Instant::now() + Duration::from_secs(30);
        while service.worker_count() <= 1 {
            assert!(Instant::now() < deadline, "autoscaler never grew the pool");
            std::thread::sleep(Duration::from_millis(5));
        }
        let grow_us = t0.elapsed().as_secs_f64() * 1e6;
        stop.store(true, Ordering::Relaxed);
        grow_us
    });
    let t1 = Instant::now();
    let deadline = Instant::now() + Duration::from_secs(30);
    while service.worker_count() > 1 {
        assert!(
            Instant::now() < deadline,
            "autoscaler never shrank back to the floor"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let shrink_us = t1.elapsed().as_secs_f64() * 1e6;

    let registry = service.registry().clone();
    let ups = registry
        .counter("tssa_autoscaler_scale_ups_total", "", &[])
        .get();
    let downs = registry
        .counter("tssa_autoscaler_scale_downs_total", "", &[])
        .get();
    gateway.shutdown();
    autoscaler.stop();
    let report = Arc::try_unwrap(service)
        .unwrap_or_else(|_| panic!("gateway drained"))
        .shutdown();
    assert_eq!(report.metrics.resolved(), report.metrics.submitted);
    assert!(ups >= 1, "at least one scale-up must be recorded");
    assert!(downs >= 1, "at least one scale-down must be recorded");
    println!("Serve — registry-driven autoscaling (slow worker, {CLIENTS} TCP clients)");
    println!(
        "  scale-up after {:.0}ms of load (p99 queue wait over the 400us watermark for 2 ticks)",
        grow_us / 1e3
    );
    println!(
        "  scale-down {:.0}ms after load stopped (p99 under 200us for 3 ticks, cooldown 1)",
        shrink_us / 1e3
    );
    println!(
        "  {ups} scale-up(s), {downs} scale-down(s); {} requests, ledger reconciled\n",
        report.metrics.submitted
    );
}

/// Experiment 9: the shape-class plan cache. Each workload is loaded and
/// served at six batch sizes through one service; the class key erases the
/// polymorphic dims, so one compile covers the whole sweep. The recompile
/// gate reads the *global* registry — `tssa_pass_wall_us` is recorded by
/// the pass manager, not the service's own registry — and fails if the
/// histogram gains any sample after a class's first compile.
fn shape_class(json_path: Option<&str>) {
    const BATCHES: [usize; 6] = [1, 2, 3, 4, 6, 8];
    fn pass_samples() -> u64 {
        MetricsRegistry::global()
            .prometheus_text()
            .lines()
            .filter(|l| l.starts_with("tssa_pass_wall_us_count"))
            .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
            .sum()
    }
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut total_avoided = 0u64;
    for w in all_workloads() {
        let service = Service::new(ServeConfig::default().with_workers(1));
        let before = pass_samples();
        let mut first_compile_samples = 0u64;
        for (i, &b) in BATCHES.iter().enumerate() {
            let inputs = w.inputs(b, 0, 17);
            let model = service
                .loader(w.source)
                .pipeline(PipelineKind::TensorSsa)
                .example(&inputs)
                .batch(spec_for(&w))
                .load()
                .unwrap_or_else(|e| panic!("{} @ batch {b}: {e}", w.name));
            service
                .submit(&model, inputs)
                .expect("admitted")
                .wait()
                .unwrap_or_else(|e| panic!("{} @ batch {b}: {e}", w.name));
            let samples = pass_samples() - before;
            if i == 0 {
                assert!(samples > 0, "{}: first load runs the pass pipeline", w.name);
                first_compile_samples = samples;
            } else {
                assert_eq!(
                    samples, first_compile_samples,
                    "{} @ batch {b}: the pass pipeline ran again after the class compile",
                    w.name
                );
            }
        }
        let stats = service.cache().stats();
        assert_eq!(stats.misses, 1, "{}: one compile per class", w.name);
        assert!(
            stats.class_hits >= (BATCHES.len() - 1) as u64,
            "{}: every later load is a class hit: {stats:?}",
            w.name
        );
        service.shutdown();
        let avoided = (BATCHES.len() - 1) as u64;
        total_avoided += avoided;
        rows.push(vec![
            w.name.to_string(),
            BATCHES.len().to_string(),
            "1".into(),
            stats.class_hits.to_string(),
            avoided.to_string(),
        ]);
        entries.push(format!(
            "    {{\"name\": \"{}\", \"batch_sizes\": {}, \"compiles\": 1, \"class_hits\": {}, \"recompiles_avoided\": {}}}",
            w.name,
            BATCHES.len(),
            stats.class_hits,
            avoided
        ));
    }
    print_table(
        "Serve — shape-class plan cache (one compile per class, six batch sizes)",
        &[
            "workload".into(),
            "shapes".into(),
            "compiles".into(),
            "class hits".into(),
            "avoided".into(),
        ],
        &rows,
    );
    let seed_compiles = entries.len() * BATCHES.len();
    println!(
        "  {total_avoided} recompiles avoided across {} workloads (a per-shape cache pays {seed_compiles})\n",
        entries.len()
    );
    if let Some(path) = json_path {
        // Counts only — deterministic across hosts, so the file can be
        // committed and diffed.
        let json = format!(
            "{{\n  \"experiment\": \"shape_class\",\n  \"batch_sizes\": {:?},\n  \"workloads\": [\n{}\n  ],\n  \"total_compiles\": {},\n  \"per_shape_cache_compiles\": {},\n  \"recompiles_avoided\": {}\n}}\n",
            BATCHES,
            entries.join(",\n"),
            entries.len(),
            seed_compiles,
            total_avoided
        );
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("  report written to {path}\n");
    }
}

/// Experiment 10: the profiling-overhead gate. The same closed-loop load
/// runs with the op-level profiler disabled and with sampled (10%)
/// profiling attached; one worker and `max_batch` 1 pin the execution
/// sequence, so the simulated makespans are directly comparable and
/// deterministic — the `sim` ratio is the asserted (and committed) figure,
/// the `wall` times are informational context only.
fn profiling_overhead(json_path: Option<&str>) {
    const REQUESTS: usize = 120;
    const RATE: f64 = 0.1;
    let run = |profiler: Option<Profiler>| -> (f64, f64) {
        let mut config = ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(256)
            .with_max_batch(1)
            .with_worker_parallel_threads(Some(1));
        if let Some(p) = &profiler {
            config = config.with_profiler(Some(p.clone()));
        }
        let service = Service::new(config);
        let w = Workload::by_name("yolov3").expect("known workload");
        let inputs = w.inputs(2, 0, 7);
        let model = service
            .loader(w.source)
            .named("yolov3")
            .pipeline(PipelineKind::TensorSsa)
            .example(&inputs)
            .batch(spec_for(&w))
            .load()
            .expect("compiles");
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..REQUESTS)
            .map(|_| service.submit(&model, inputs.clone()).expect("admitted"))
            .collect();
        for t in tickets {
            t.wait().expect("completes");
        }
        let wall_s = t0.elapsed().as_secs_f64();
        let report = service.shutdown();
        assert_eq!(report.metrics.completed, REQUESTS as u64);
        let sim_ns = report
            .per_worker
            .iter()
            .map(ExecStats::total_ns)
            .fold(0.0f64, f64::max);
        (sim_ns, wall_s)
    };
    let (off_ns, off_wall) = run(None);
    let profiler = Profiler::sampled(Sampler::new(42, RATE));
    let (on_ns, on_wall) = run(Some(profiler.clone()));
    let ratio = on_ns / off_ns.max(1e-9);
    let snapshot = profiler.snapshot();
    println!("Serve — profiling overhead (yolov3, {REQUESTS} requests, max_batch 1, rate {RATE})");
    println!(
        "  sim  (authoritative): unprofiled {:.3}ms, profiled {:.3}ms ({ratio:.3}x, bound 1.05x)",
        off_ns / 1e6,
        on_ns / 1e6
    );
    println!(
        "  wall (informational): unprofiled {:.1}ms, profiled {:.1}ms",
        off_wall * 1e3,
        on_wall * 1e3
    );
    println!(
        "  profiler: {} executions offered, {} op sites recorded, {} merge(s) costing {}us\n",
        profiler.runs(),
        snapshot.entries.len(),
        snapshot.merges,
        snapshot.merge_us
    );
    assert!(
        !snapshot.entries.is_empty(),
        "sampled profiling must record at least one op site"
    );
    assert!(
        ratio <= 1.05,
        "always-on sampled profiling must stay within 5% of unprofiled simulated makespan ({ratio:.3}x)"
    );
    if let Some(path) = json_path {
        // Simulated figures only — deterministic across hosts, so the file
        // can be committed and diffed.
        let json = format!(
            "{{\n  \"experiment\": \"profiling_overhead\",\n  \"requests\": {REQUESTS},\n  \"profile_rate\": {RATE},\n  \"sim_makespan_unprofiled_ms\": {:.3},\n  \"sim_makespan_profiled_ms\": {:.3},\n  \"sim_ratio\": {ratio:.3},\n  \"bound\": 1.05\n}}\n",
            off_ns / 1e6,
            on_ns / 1e6
        );
        if let Some(parent) = std::path::Path::new(path).parent() {
            std::fs::create_dir_all(parent).expect("create report directory");
        }
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("  report written to {path}\n");
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Option<String> = None;
    let mut json: Option<String> = None;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => match iter.next() {
                Some(path) => json = Some(path.clone()),
                None => {
                    eprintln!("serve_throughput: --json needs a path");
                    std::process::exit(2);
                }
            },
            name if !name.starts_with('-') && which.is_none() => which = Some(name.to_string()),
            other => {
                eprintln!("serve_throughput: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    match which.as_deref() {
        None => {
            cold_vs_warm();
            restart_cold_vs_warm();
            worker_scaling();
            overload();
            trace_attribution();
            tracing_overhead();
            sampled_trace_walkthrough();
            edge_overhead();
            autoscale();
            shape_class(json.as_deref());
            profiling_overhead(None);
        }
        Some("cold-vs-warm") => {
            cold_vs_warm();
            restart_cold_vs_warm();
        }
        Some("worker-scaling") => worker_scaling(),
        Some("overload") => overload(),
        Some("trace-attribution") => trace_attribution(),
        Some("tracing-overhead") => tracing_overhead(),
        Some("sampled-trace") => sampled_trace_walkthrough(),
        Some("edge-overhead") => edge_overhead(),
        Some("autoscale") => autoscale(),
        Some("shape-class") => shape_class(json.as_deref()),
        Some("profiling-overhead") => profiling_overhead(json.as_deref()),
        Some(other) => {
            eprintln!(
                "serve_throughput: unknown experiment `{other}` \
                 (cold-vs-warm, worker-scaling, overload, trace-attribution, \
                 tracing-overhead, sampled-trace, edge-overhead, autoscale, \
                 shape-class, profiling-overhead)"
            );
            std::process::exit(2);
        }
    }
}
