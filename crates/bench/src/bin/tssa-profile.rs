//! `tssa-profile`: the op-level execution profiler as a CLI, over the
//! paper's eight workloads.
//!
//! Every workload is compiled through the TensorSSA pipeline and executed
//! under an always-on [`Profiler`]; the merged table is then presented
//! three ways:
//!
//! * `rank [--top N] [--runs N]` — the codegen work-list: fusion groups
//!   ranked by cumulative wall self-time, with each group's share of the
//!   total and the running cumulative share. The run asserts that the
//!   attributed self-time covers at least 90% of the measured execution
//!   wall time — the profiler accounts for where the time actually went —
//!   and that the flamegraph export parses as collapsed-stack.
//! * `flame [--out PATH] [--runs N]` — collapsed-stack flamegraph lines
//!   (`plan;group;op <self_us>`), renderable by `flamegraph.pl` or
//!   speedscope as-is.
//! * `trace [--out PATH] [--runs N]` — Chrome-trace JSON for
//!   `chrome://tracing` / Perfetto.
//!
//! `rank` is what `scripts/ci.sh` runs; see EXPERIMENTS.md for a measured
//! walkthrough.

use std::sync::Arc;
use std::time::Instant;

use tssa_bench::print_table;
use tssa_obs::{group_frame, Profiler};
use tssa_pipelines::{Pipeline, ProfileRecorder, TensorSsa};
use tssa_workloads::all_workloads;

const USAGE: &str = "usage: tssa-profile [rank|flame|trace] [options]

  rank            fusion-group hotness ranking over the eight workloads
                  (default subcommand)
  flame           collapsed-stack flamegraph to stdout or --out PATH
  trace           Chrome-trace JSON to stdout or --out PATH

  --runs N        executions per workload (default 3)
  --top N         rows in the ranking table (default 12; rank only)
  --out PATH      write flame/trace output to PATH instead of stdout
";

/// Run every workload `runs` times under `profiler`, returning the wall
/// time spent inside execution (the denominator coverage is measured
/// against). Parallelism is capped at one thread so attributed self-time
/// nests inside the measured wall time.
fn profile_all(profiler: &Profiler, runs: usize) -> u64 {
    let mut exec_wall_ns = 0u64;
    for w in all_workloads() {
        let g = w
            .graph()
            .unwrap_or_else(|e| panic!("{}: frontend: {e}", w.name));
        let program = TensorSsa::default().compile(&g);
        let sink = profiler.sink();
        let mut session = program
            .session()
            .cap_parallel_threads(1)
            .observed(Arc::new(ProfileRecorder::new(w.name, sink)));
        let inputs = w.inputs(2, 8, 1);
        for _ in 0..runs {
            let t = Instant::now();
            session
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}: exec: {e}", w.name));
            exec_wall_ns += t.elapsed().as_nanos() as u64;
        }
    }
    exec_wall_ns
}

fn rank(top: usize, runs: usize) {
    let profiler = Profiler::new();
    let exec_wall_ns = profile_all(&profiler, runs);
    let snapshot = profiler.snapshot();
    let total_self_ns = snapshot.total_self_ns();
    let hot = snapshot.hotness();

    let mut rows = Vec::new();
    let mut cumulative = 0u64;
    for (i, g) in hot.iter().take(top).enumerate() {
        cumulative += g.self_ns;
        rows.push(vec![
            (i + 1).to_string(),
            g.plan.to_string(),
            group_frame(g.group),
            format!("{:.3}", g.self_ns as f64 / 1e6),
            format!(
                "{:.1}%",
                100.0 * g.self_ns as f64 / total_self_ns.max(1) as f64
            ),
            format!(
                "{:.1}%",
                100.0 * cumulative as f64 / total_self_ns.max(1) as f64
            ),
            g.count.to_string(),
            g.sites.to_string(),
        ]);
    }
    print_table(
        &format!(
            "tssa-profile — fusion-group hotness, {} workloads x {runs} runs (TensorSSA pipeline)",
            all_workloads().len()
        ),
        &[
            "#".into(),
            "plan".into(),
            "group".into(),
            "self ms".into(),
            "share".into(),
            "cum".into(),
            "ops".into(),
            "sites".into(),
        ],
        &rows,
    );
    let coverage = total_self_ns as f64 / exec_wall_ns.max(1) as f64;
    println!(
        "  {} groups, {} op sites; attributed self-time {:.3}ms of {:.3}ms exec wall ({:.1}% coverage, target >= 90%)",
        hot.len(),
        snapshot.entries.len(),
        total_self_ns as f64 / 1e6,
        exec_wall_ns as f64 / 1e6,
        coverage * 100.0
    );
    assert!(
        coverage >= 0.90,
        "op self-time must cover >= 90% of measured exec wall time ({:.1}%)",
        coverage * 100.0
    );

    // The flamegraph export must round-trip as collapsed-stack: every line
    // is `plan;group;op <count>` with non-empty, space-free frames.
    let collapsed = snapshot.collapsed(usize::MAX);
    let mut lines = 0usize;
    for line in collapsed.lines() {
        let (stack, count) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("flame line lacks a count: {line}"));
        assert_eq!(stack.split(';').count(), 3, "plan;group;op frames: {line}");
        assert!(stack.split(';').all(|f| !f.is_empty() && !f.contains(' ')));
        count
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("flame count not an integer: {line}"));
        lines += 1;
    }
    assert!(lines > 0, "flamegraph export is empty");
    println!("  flamegraph export: {lines} collapsed-stack lines, all parse\n");
}

fn export(kind: &str, out: Option<&str>, runs: usize) {
    let profiler = Profiler::new();
    profile_all(&profiler, runs);
    let snapshot = profiler.snapshot();
    let text = match kind {
        "flame" => snapshot.collapsed(usize::MAX),
        _ => snapshot.chrome_trace(usize::MAX),
    };
    match out {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| panic!("write {path}: {e}"));
            eprintln!("tssa-profile: {kind} output written to {path}");
        }
        None => print!("{text}"),
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut sub: Option<String> = None;
    let mut runs = 3usize;
    let mut top = 12usize;
    let mut out: Option<String> = None;
    let mut iter = argv.iter();
    while let Some(arg) = iter.next() {
        let mut take = |flag: &str| {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("tssa-profile: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--runs" => {
                runs = take("--runs").parse().unwrap_or_else(|_| {
                    eprintln!("tssa-profile: --runs needs an integer");
                    std::process::exit(2);
                });
            }
            "--top" => {
                top = take("--top").parse().unwrap_or_else(|_| {
                    eprintln!("tssa-profile: --top needs an integer");
                    std::process::exit(2);
                });
            }
            "--out" => out = Some(take("--out")),
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            name if !name.starts_with('-') && sub.is_none() => sub = Some(name.to_string()),
            other => {
                eprintln!("tssa-profile: unknown argument `{other}`\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if runs == 0 {
        eprintln!("tssa-profile: --runs must be at least 1");
        std::process::exit(2);
    }
    match sub.as_deref() {
        None | Some("rank") => rank(top.max(1), runs),
        Some("flame") => export("flame", out.as_deref(), runs),
        Some("trace") => export("trace", out.as_deref(), runs),
        Some(other) => {
            eprintln!("tssa-profile: unknown subcommand `{other}`\n{USAGE}");
            std::process::exit(2);
        }
    }
}
