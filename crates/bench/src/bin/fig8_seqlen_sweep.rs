//! Figure 8: latency of the NLP/attention workloads across sequence lengths
//! (the paper reports linear growth with TensorSSA below every baseline).

use tssa_backend::DeviceProfile;
use tssa_bench::{measure_all_pipelines, print_table};
use tssa_workloads::all_workloads;

fn main() {
    let device = DeviceProfile::consumer();
    let seqs = [4usize, 8, 16, 32, 64];
    for w in all_workloads()
        .into_iter()
        .filter(|w| matches!(w.name, "nasrnn" | "lstm" | "seq2seq" | "attention"))
    {
        let mut pipelines: Vec<String> = Vec::new();
        let mut per_seq: Vec<Vec<(String, f64)>> = Vec::new();
        for &s in &seqs {
            let records = measure_all_pipelines(&w, &device, 0, s, 42);
            if pipelines.is_empty() {
                pipelines = records.iter().map(|r| r.pipeline.clone()).collect();
            }
            per_seq.push(
                records
                    .iter()
                    .map(|r| (r.pipeline.clone(), r.stats.total_us()))
                    .collect(),
            );
        }
        let mut header = vec!["pipeline".to_string()];
        header.extend(seqs.iter().map(|s| format!("seq={s}")));
        let mut rows = Vec::new();
        for p in &pipelines {
            let mut row = vec![p.clone()];
            for col in &per_seq {
                let v = col.iter().find(|(n, _)| n == p).map(|(_, v)| *v).unwrap();
                row.push(format!("{v:.0}us"));
            }
            rows.push(row);
        }
        print_table(
            &format!("Figure 8 — latency vs sequence length ({})", w.name),
            &header,
            &rows,
        );
    }
}
