//! Ablation study: TensorSSA with each design choice disabled (block
//! propagation, horizontal parallelization, access/assign fusion) — the
//! three choices called out in DESIGN.md.

use tssa_backend::DeviceProfile;
use tssa_bench::print_table;
use tssa_pipelines::{Pipeline, TensorSsa};
use tssa_workloads::all_workloads;

fn main() {
    let device = DeviceProfile::consumer();
    let variants: Vec<(&str, TensorSsa)> = vec![
        ("full", TensorSsa::default()),
        (
            "-block-prop",
            TensorSsa {
                block_propagation: false,
                ..TensorSsa::default()
            },
        ),
        (
            "-horizontal",
            TensorSsa {
                horizontal: false,
                ..TensorSsa::default()
            },
        ),
        (
            "-assign-fusion",
            TensorSsa {
                fuse_access_assign: false,
                ..TensorSsa::default()
            },
        ),
    ];
    let mut header = vec!["workload".to_string()];
    for (name, _) in &variants {
        header.push(format!("{name} (us)"));
        header.push(format!("{name} (launches)"));
    }
    let mut rows = Vec::new();
    for w in all_workloads() {
        let g = w.graph().expect("workload compiles");
        let inputs = w.inputs(0, 0, 42);
        let mut row = vec![w.name.to_string()];
        for (_, variant) in &variants {
            let cp = variant.compile(&g);
            let (_, stats) = cp
                .run(device.clone(), &inputs)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            row.push(format!("{:.0}", stats.total_us()));
            row.push(stats.kernel_launches.to_string());
        }
        rows.push(row);
    }
    print_table("Ablation — TensorSSA variants", &header, &rows);
}
