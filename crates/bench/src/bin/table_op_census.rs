//! Operator census backing the §1 claim that imperative constructs (views,
//! mutations, control flow) dominate these programs.

use tssa_bench::print_table;
use tssa_ir::Op;
use tssa_workloads::all_workloads;

fn main() {
    let header: Vec<String> = [
        "workload",
        "ops",
        "views",
        "mutations",
        "loops",
        "branches",
        "imperative%",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for w in all_workloads() {
        let g = w.graph().expect("workload compiles");
        let nodes = g.nodes_recursive(g.top());
        let total = nodes.len();
        let views = nodes.iter().filter(|&&n| g.node(n).op.is_view()).count();
        let muts = nodes
            .iter()
            .filter(|&&n| g.node(n).op.is_mutation())
            .count();
        let loops = nodes.iter().filter(|&&n| g.node(n).op == Op::Loop).count();
        let ifs = nodes.iter().filter(|&&n| g.node(n).op == Op::If).count();
        let imperative = views + muts + loops + ifs;
        rows.push(vec![
            w.name.to_string(),
            total.to_string(),
            views.to_string(),
            muts.to_string(),
            loops.to_string(),
            ifs.to_string(),
            format!("{:.0}%", 100.0 * imperative as f64 / total as f64),
        ]);
    }
    print_table(
        "Operator census of the captured imperative programs",
        &header,
        &rows,
    );
}
