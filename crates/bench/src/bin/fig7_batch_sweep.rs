//! Figure 7: speedup of TensorSSA over eager across batch sizes.

use tssa_backend::DeviceProfile;
use tssa_bench::{measure_all_pipelines, print_table, speedups_vs_eager};
use tssa_workloads::all_workloads;

fn main() {
    let device = DeviceProfile::consumer();
    let batches = [1usize, 2, 4, 8, 16];
    let mut header = vec!["workload".to_string()];
    header.extend(batches.iter().map(|b| format!("batch={b}")));
    let mut rows = Vec::new();
    for w in all_workloads() {
        let mut row = vec![w.name.to_string()];
        for &b in &batches {
            let records = measure_all_pipelines(&w, &device, b, 0, 42);
            let speedups = speedups_vs_eager(&records);
            let ours = speedups
                .iter()
                .find(|(r, _)| r.pipeline == "TensorSSA")
                .map(|(_, s)| *s)
                .unwrap();
            row.push(format!("{ours:.2}x"));
        }
        rows.push(row);
    }
    print_table(
        "Figure 7 — TensorSSA speedup over eager across batch sizes",
        &header,
        &rows,
    );
}
