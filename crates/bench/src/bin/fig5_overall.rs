//! Figure 5: end-to-end speedup over PyTorch eager for every pipeline on
//! every workload, on both platforms — plus a compile-time attribution
//! table built from traced TensorSSA compiles (where does the compiler
//! spend its time, per pass?).

use tssa_bench::{both_devices, measure_all_pipelines, print_table, speedups_vs_eager};
use tssa_obs::Tracer;
use tssa_pipelines::{Pipeline, TensorSsa};
use tssa_workloads::all_workloads;

/// Compile every workload with TensorSSA under a tracer and tabulate each
/// pass's share of the compile span.
fn print_compile_attribution() {
    let (tracer, sink) = Tracer::ring(4096);
    for w in all_workloads() {
        let g = w.graph().expect("workload compiles");
        TensorSsa::default().compile_traced(&g, &tracer.scope());
    }
    let records = sink.snapshot();
    let compiles: Vec<_> = records.iter().filter(|r| r.parent.is_none()).collect();
    let mut rows = Vec::new();
    for (compile, w) in compiles.iter().zip(all_workloads()) {
        let children: Vec<_> = records
            .iter()
            .filter(|r| r.parent == Some(compile.id))
            .collect();
        let child_sum: u64 = children.iter().map(|r| r.dur_ns).sum();
        let mut slowest: Option<&tssa_obs::SpanRecord> = None;
        for c in &children {
            if slowest.is_none_or(|s| c.dur_ns > s.dur_ns) {
                slowest = Some(c);
            }
        }
        let slowest = slowest.expect("compile span has children");
        rows.push(vec![
            w.name.to_string(),
            format!("{:.1}", compile.dur_ns as f64 / 1_000.0),
            format!(
                "{:.1}%",
                100.0 * child_sum as f64 / compile.dur_ns.max(1) as f64
            ),
            slowest.name.clone(),
            format!("{:.1}", slowest.dur_ns as f64 / 1_000.0),
        ]);
    }
    print_table(
        "Compile-time attribution — TensorSSA (traced)",
        &[
            "workload".into(),
            "compile us".into(),
            "in passes".into(),
            "slowest pass".into(),
            "us".into(),
        ],
        &rows,
    );
}

fn main() {
    print_compile_attribution();
    for device in both_devices() {
        let mut records = Vec::new();
        for w in all_workloads() {
            records.extend(measure_all_pipelines(&w, &device, 0, 0, 42));
        }
        let speedups = speedups_vs_eager(&records);
        let pipelines: Vec<String> = {
            let mut v = Vec::new();
            for (r, _) in &speedups {
                if !v.contains(&r.pipeline) {
                    v.push(r.pipeline.clone());
                }
            }
            v
        };
        let mut header = vec!["workload".to_string()];
        header.extend(pipelines.iter().cloned());
        let mut rows = Vec::new();
        let mut per_pipeline_product: Vec<f64> = vec![1.0; pipelines.len()];
        let workloads: Vec<String> = all_workloads().iter().map(|w| w.name.to_string()).collect();
        for w in &workloads {
            let mut row = vec![w.clone()];
            for (pi, p) in pipelines.iter().enumerate() {
                let s = speedups
                    .iter()
                    .find(|(r, _)| &r.workload == w && &r.pipeline == p)
                    .map(|(_, s)| *s)
                    .unwrap_or(f64::NAN);
                per_pipeline_product[pi] *= s;
                row.push(format!("{s:.2}x"));
            }
            rows.push(row);
        }
        let mut geo = vec!["geomean".to_string()];
        for product in &per_pipeline_product {
            geo.push(format!(
                "{:.2}x",
                product.powf(1.0 / workloads.len() as f64)
            ));
        }
        rows.push(geo);
        print_table(
            &format!("Figure 5 — speedup over eager ({})", device.name),
            &header,
            &rows,
        );

        // Best-baseline comparison (the paper's headline numbers: up to
        // 1.79x, 1.34x average over the best baseline).
        let mut best_rows = Vec::new();
        let mut product = 1.0;
        let mut max_ratio: f64 = 0.0;
        for w in &workloads {
            let ours = speedups
                .iter()
                .find(|(r, _)| &r.workload == w && r.pipeline == "TensorSSA")
                .map(|(_, s)| *s)
                .unwrap();
            let best_baseline = speedups
                .iter()
                .filter(|(r, _)| &r.workload == w && r.pipeline != "TensorSSA")
                .map(|(_, s)| *s)
                .fold(0.0, f64::max);
            let ratio = ours / best_baseline;
            product *= ratio;
            max_ratio = max_ratio.max(ratio);
            best_rows.push(vec![
                w.clone(),
                format!("{best_baseline:.2}x"),
                format!("{ours:.2}x"),
                format!("{ratio:.2}x"),
            ]);
        }
        best_rows.push(vec![
            "summary".into(),
            String::new(),
            format!("max {max_ratio:.2}x"),
            format!("avg {:.2}x", product.powf(1.0 / workloads.len() as f64)),
        ]);
        print_table(
            &format!(
                "Figure 5 summary — TensorSSA vs best baseline ({})",
                device.name
            ),
            &[
                "workload".into(),
                "best baseline".into(),
                "TensorSSA".into(),
                "ratio".into(),
            ],
            &best_rows,
        );
    }
}
