//! Shared measurement harness for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md`'s per-experiment index):
//!
//! * `fig5_overall` — end-to-end speedup over eager per pipeline/workload/
//!   platform (Figure 5);
//! * `fig6_kernel_launches` — kernel-launch counts (Figure 6);
//! * `fig7_batch_sweep` — speedup across batch sizes (Figure 7);
//! * `fig8_seqlen_sweep` — latency across sequence lengths (Figure 8);
//! * `table_op_census` — imperative-operator census backing the §1 claim;
//! * `ablation` — TensorSSA with individual optimizations disabled.

use tssa_backend::{DeviceProfile, ExecStats};
use tssa_pipelines::all_pipelines;
use tssa_workloads::Workload;

/// One measurement of one (workload, pipeline, device, size) combination.
#[derive(Debug, Clone)]
pub struct Record {
    /// Workload name.
    pub workload: String,
    /// Pipeline name.
    pub pipeline: String,
    /// Device profile name.
    pub device: String,
    /// Batch size used.
    pub batch: usize,
    /// Sequence length used (0 for CV workloads).
    pub seq: usize,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// Execute `workload` under every pipeline on `device`; batch/seq of 0 use
/// the workload defaults.
///
/// # Panics
///
/// Panics if a workload fails to compile or execute — the binaries are
/// developer tools where aborting with the error is the right behaviour.
pub fn measure_all_pipelines(
    workload: &Workload,
    device: &DeviceProfile,
    batch: usize,
    seq: usize,
    seed: u64,
) -> Vec<Record> {
    let g = workload.graph().expect("workload compiles");
    let inputs = workload.inputs(batch, seq, seed);
    all_pipelines()
        .iter()
        .map(|p| {
            let cp = p.compile(&g);
            let (_, stats) = cp
                .session()
                .on_device(device.clone())
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}/{}: {e}", workload.name, p.name()));
            Record {
                workload: workload.name.to_string(),
                pipeline: p.name().to_string(),
                device: device.name.to_string(),
                batch: if batch == 0 {
                    workload.default_batch
                } else {
                    batch
                },
                seq: if seq == 0 { workload.default_seq } else { seq },
                stats,
            }
        })
        .collect()
}

/// Speedup of each record in `records` relative to the `Eager` record of the
/// same (workload, device, batch, seq).
pub fn speedups_vs_eager(records: &[Record]) -> Vec<(Record, f64)> {
    records
        .iter()
        .map(|r| {
            let eager = records
                .iter()
                .find(|e| {
                    e.pipeline == "Eager"
                        && e.workload == r.workload
                        && e.device == r.device
                        && e.batch == r.batch
                        && e.seq == r.seq
                })
                .expect("eager baseline present");
            (r.clone(), eager.stats.total_ns() / r.stats.total_ns())
        })
        .collect()
}

/// Render a fixed-width table: header row then data rows.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// The two platforms of the paper (§5.1).
pub fn both_devices() -> Vec<DeviceProfile> {
    vec![DeviceProfile::consumer(), DeviceProfile::datacenter()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_workloads::all_workloads;

    #[test]
    fn measurement_produces_all_pipelines() {
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == "yolact")
            .unwrap();
        let records = measure_all_pipelines(&w, &DeviceProfile::consumer(), 2, 0, 1);
        assert_eq!(records.len(), 5);
        let speeds = speedups_vs_eager(&records);
        let eager = speeds.iter().find(|(r, _)| r.pipeline == "Eager").unwrap();
        assert!((eager.1 - 1.0).abs() < 1e-9);
    }
}
