//! Criterion wall-clock benchmarks: each workload under each pipeline.
//!
//! Wall time here measures the Rust execution engine (interpreter + fused
//! per-element evaluator), not a GPU; the *simulated* figures come from the
//! `fig*` binaries. These benches still demonstrate the structural effects —
//! fused groups skip intermediate materialization and parallel maps run
//! batched — and guard against performance regressions in the engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tssa_backend::DeviceProfile;
use tssa_pipelines::all_pipelines;
use tssa_workloads::all_workloads;

fn bench_pipelines(c: &mut Criterion) {
    let device = DeviceProfile::consumer();
    for w in all_workloads() {
        let g = w.graph().expect("workload compiles");
        let inputs = w.inputs(0, 0, 42);
        let mut group = c.benchmark_group(w.name);
        group.sample_size(10);
        for p in all_pipelines() {
            let compiled = p.compile(&g);
            group.bench_with_input(
                BenchmarkId::from_parameter(p.name()),
                &compiled,
                |b, compiled| {
                    b.iter(|| {
                        compiled
                            .run(device.clone(), &inputs)
                            .expect("workload executes")
                    })
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_pipelines);
criterion_main!(benches);
