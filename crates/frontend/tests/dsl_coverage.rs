//! DSL surface coverage: every built-in function and method compiles to the
//! expected operator, and representative error cases are rejected with line
//! information.

use tssa_frontend::{compile, FrontendError};

fn ops_of(src: &str) -> String {
    compile(src)
        .unwrap_or_else(|e| panic!("{src}\n{e}"))
        .to_string()
}

#[test]
fn free_functions_map_to_ops() {
    let text = ops_of(
        "def f(x: Tensor, y: Tensor):
             a = sigmoid(x) + exp(x) + relu(x) + tanh(x)
             b = log(relu(x) + 1.0) + sqrt(abs(x)) + neg(x)
             c = minimum(a, b) + maximum(a, b)
             d = pow(c, 2.0)
             e = matmul(x, y)
             return d, e
        ",
    );
    for op in [
        "aten::sigmoid",
        "aten::exp",
        "aten::relu",
        "aten::tanh",
        "aten::log",
        "aten::sqrt",
        "aten::abs",
        "aten::neg",
        "aten::minimum",
        "aten::maximum",
        "aten::pow_scalar",
        "aten::matmul",
    ] {
        assert!(text.contains(op), "missing {op} in\n{text}");
    }
}

#[test]
fn creation_functions() {
    let text = ops_of(
        "def f(x: Tensor, n: int):
             a = zeros([2, 3])
             b = ones([4])
             c = full([2], 5.0)
             d = arange(n)
             e = zeros_like(x)
             g = ones_like(x)
             h = full_like(x, 2.5)
             return a, b, c, d, e, g, h
        ",
    );
    for op in [
        "aten::zeros[shape=[2, 3]]",
        "aten::ones[shape=[4]]",
        "aten::full[shape=[2]]",
        "aten::arange",
        "aten::zeros_like",
        "aten::ones_like",
        "aten::full_like",
    ] {
        assert!(text.contains(op), "missing {op} in\n{text}");
    }
}

#[test]
fn cat_stack_gather_index_select() {
    let text = ops_of(
        "def f(x: Tensor, y: Tensor, idx: Tensor):
             a = cat([x, y], 0)
             b = stack([x, y], 1)
             c = gather(x, 1, idx)
             d = index_select(x, 0, idx)
             return a, b, c, d
        ",
    );
    assert!(text.contains("aten::cat[dim=0]"), "{text}");
    assert!(text.contains("aten::stack[dim=1]"), "{text}");
    assert!(text.contains("aten::gather[dim=1]"), "{text}");
    assert!(text.contains("aten::index_select[dim=0]"), "{text}");
}

#[test]
fn tensor_methods_map_to_ops() {
    let text = ops_of(
        "def f(x: Tensor):
             a = x.softmax(1) + x.cumsum(0)
             b = x.sum(0) + x.mean(1, True)
             c = x.max(0) + x.min(1)
             d = x.argmax(1)
             e = x.clamp(0.0, 1.0)
             g = x.transpose(0, 1).contiguous()
             h = x.permute([1, 0])
             i = x.reshape([-1])
             return a, b, c, d, e, g, h, i
        ",
    );
    for op in [
        "aten::softmax[dim=1]",
        "aten::cumsum[dim=0]",
        "aten::sum[dim=0, keepdim=false]",
        "aten::mean[dim=1, keepdim=true]",
        "aten::max[dim=0, keepdim=false]",
        "aten::min[dim=1, keepdim=false]",
        "aten::argmax[dim=1, keepdim=false]",
        "aten::clamp",
        "aten::transpose[dim0=0, dim1=1]",
        "aten::contiguous",
        "aten::permute[perm=[1, 0]]",
        "aten::reshape[shape=[-1]]",
    ] {
        assert!(text.contains(op), "missing {op} in\n{text}");
    }
}

#[test]
fn inplace_methods_become_mutations() {
    let text = ops_of(
        "def f(x: Tensor, y: Tensor):
             b = x.clone()
             b.copy_(y)
             b.fill_(0.0)
             b.add_(y)
             b.sub_(y)
             b.mul_(y)
             b.div_(y)
             b.add_(2.0)
             b.mul_(0.5)
             b.relu_()
             b.sigmoid_()
             b.tanh_()
             b.exp_()
             b.neg_()
             b.clamp_(-1.0, 1.0)
             return b
        ",
    );
    for op in [
        "aten::copy_",
        "aten::fill_",
        "aten::add_(",
        "aten::sub_(",
        "aten::mul_(",
        "aten::div_(",
        "aten::add_scalar_",
        "aten::mul_scalar_",
        "aten::relu_",
        "aten::sigmoid_",
        "aten::tanh_",
        "aten::exp_",
        "aten::neg_",
        "aten::clamp_",
    ] {
        assert!(text.contains(op), "missing {op} in\n{text}");
    }
}

#[test]
fn scalar_minus_and_division_by_tensor() {
    let text = ops_of(
        "def f(x: Tensor):
             a = 1.0 - x
             b = 2.0 / x
             c = 3.0 + x
             d = 4.0 * x
             return a, b, c, d
        ",
    );
    // 1 - x = neg(x) + 1; 2 / x = 2 * x^-1.
    assert!(text.contains("aten::neg"), "{text}");
    assert!(text.contains("aten::pow_scalar"), "{text}");
    assert!(text.contains("aten::add_scalar"), "{text}");
    assert!(text.contains("aten::mul_scalar"), "{text}");
}

#[test]
fn errors_carry_line_numbers() {
    let err: FrontendError = compile(
        "def f(x: Tensor):
             y = x.relu()
             z = frobnicate(y)
             return z
        ",
    )
    .unwrap_err();
    assert!(err.to_string().contains("frobnicate"), "{err}");

    let err = compile("def f(x: Tensor):\n    y = x +\n    return y\n").unwrap_err();
    assert_eq!(err.line, 2, "{err}");
}

#[test]
fn type_errors_rejected() {
    // Tensor condition in `if`.
    assert!(compile(
        "def f(x: Tensor):
             if x:
                 y = x.relu()
             return x
        "
    )
    .is_err());
    // Arithmetic between bool and tensor.
    assert!(compile(
        "def f(x: Tensor, c: bool):
             y = x + c
             return y
        "
    )
    .is_err());
    // Subscripting an int.
    assert!(compile(
        "def f(n: int):
             y = n[0]
             return y
        "
    )
    .is_err());
}

#[test]
fn negative_slice_bounds_and_steps() {
    let text = ops_of(
        "def f(x: Tensor):
             h = x.size(0)
             a = x[h-2:]
             b = x[::2]
             c = x[1:-1]
             return a, b, c
        ",
    );
    assert!(text.contains("aten::slice"), "{text}");
    assert!(text.contains("aten::int_sub"), "{text}");
}

#[test]
fn chained_method_calls_nest_correctly() {
    let g = compile(
        "def f(x: Tensor):
             y = x.clone().relu().sigmoid().sum(0)
             return y
        ",
    )
    .unwrap();
    // clone -> relu -> sigmoid -> sum, each feeding the next.
    let text = g.to_string();
    let pos = |op: &str| text.find(op).unwrap_or_else(|| panic!("missing {op}"));
    assert!(pos("aten::clone") < pos("aten::relu"));
    assert!(pos("aten::relu") < pos("aten::sigmoid"));
    assert!(pos("aten::sigmoid") < pos("aten::sum"));
}

#[test]
fn boolean_logic_on_scalars_and_tensors() {
    let text = ops_of(
        "def f(x: Tensor, a: int, b: int):
             c = a < b and not (a == b) or a >= b
             m = (x > 0.0) and (x < 1.0)
             n = not m
             return m, n
        ",
    );
    assert!(text.contains("aten::bool_and"), "{text}");
    assert!(text.contains("aten::bool_or"), "{text}");
    assert!(text.contains("aten::bool_not"), "{text}");
    assert!(text.contains("aten::logical_and"), "{text}");
    assert!(text.contains("aten::logical_not"), "{text}");
}
