//! End-to-end semantic tests of the frontend: lowered programs are executed
//! and compared against hand-computed results (not just structural checks).

use tssa_backend::{ExecConfig, Executor, RtValue};
use tssa_frontend::compile;
use tssa_tensor::Tensor;

fn exec(src: &str, inputs: &[RtValue]) -> Vec<RtValue> {
    let g = compile(src).unwrap_or_else(|e| panic!("{src}\n{e}"));
    Executor::new(ExecConfig::compiled())
        .run(&g, inputs)
        .unwrap_or_else(|e| panic!("{src}\n{e}"))
        .0
}

fn t(data: Vec<f32>, shape: &[usize]) -> RtValue {
    RtValue::Tensor(Tensor::from_vec_f32(data, shape).unwrap())
}

fn out_f32(outs: &[RtValue], i: usize) -> Vec<f32> {
    outs[i].as_tensor().unwrap().to_vec_f32().unwrap()
}

#[test]
fn subscript_store_and_read() {
    let outs = exec(
        "def f(x: Tensor):
             b = x.clone()
             b[0] = b[1] * 2.0
             return b
        ",
        &[t(vec![1.0, 2.0, 10.0, 20.0], &[2, 2])],
    );
    assert_eq!(out_f32(&outs, 0), vec![20.0, 40.0, 10.0, 20.0]);
}

#[test]
fn augmented_subscript_operators() {
    let outs = exec(
        "def f(x: Tensor):
             b = x.clone()
             b[0] += 1.0
             b[1] -= 1.0
             b[0] *= 2.0
             b[1] /= 2.0
             return b
        ",
        &[t(vec![1.0, 4.0], &[2])],
    );
    assert_eq!(out_f32(&outs, 0), vec![4.0, 1.5]);
}

#[test]
fn loop_accumulator_scalar_and_tensor() {
    let outs = exec(
        "def f(x: Tensor, n: int):
             acc = 0
             h = x.clone()
             for i in range(n):
                 acc = acc + i
                 h = h + 1.0
             s = h * float(acc)
             return s
        ",
        &[t(vec![0.0], &[1]), RtValue::Int(4)],
    );
    // acc = 0+1+2+3 = 6; h = 0+4 = 4; s = 24.
    assert_eq!(out_f32(&outs, 0), vec![24.0]);
}

#[test]
fn branch_merges_scalar_rebinding() {
    for (flag, expected) in [(true, 10.0f32), (false, 20.0)] {
        let outs = exec(
            "def f(x: Tensor, c: bool):
                 k = 1.0
                 if c:
                     k = 10.0
                 else:
                     k = 20.0
                 y = x * k
                 return y
            ",
            &[t(vec![1.0], &[1]), RtValue::Bool(flag)],
        );
        assert_eq!(out_f32(&outs, 0), vec![expected]);
    }
}

#[test]
fn while_countdown_computes_power() {
    let outs = exec(
        "def f(x: Tensor, n: int):
             b = x.clone()
             k = 0
             while k < n:
                 b *= 2.0
                 k += 1
             return b
        ",
        &[t(vec![1.0], &[1]), RtValue::Int(5)],
    );
    assert_eq!(out_f32(&outs, 0), vec![32.0]);
}

#[test]
fn multidim_slice_assignment() {
    let outs = exec(
        "def f(x: Tensor):
             b = x.clone()
             b[:, 1] = 9.0
             b[1, :] = 7.0
             return b
        ",
        &[t(vec![0.0; 6], &[2, 3])],
    );
    assert_eq!(out_f32(&outs, 0), vec![0.0, 9.0, 0.0, 7.0, 7.0, 7.0]);
}

#[test]
fn comparison_masks_and_where() {
    let outs = exec(
        "def f(x: Tensor):
             m = x > 0.0
             y = where(m, x, x * 0.1)
             return y
        ",
        &[t(vec![-10.0, 5.0], &[2])],
    );
    assert_eq!(out_f32(&outs, 0), vec![-1.0, 5.0]);
}

#[test]
fn size_and_item_round_trip() {
    let outs = exec(
        "def f(x: Tensor):
             n = x.size(0)
             total = x.sum(0).item()
             y = x * float(n) + total
             return y
        ",
        &[t(vec![1.0, 2.0, 3.0], &[3])],
    );
    // n = 3, total = 6: y = x*3 + 6.
    assert_eq!(out_f32(&outs, 0), vec![9.0, 12.0, 15.0]);
}

#[test]
fn integer_division_and_modulo_drive_control_flow() {
    let outs = exec(
        "def f(x: Tensor, n: int):
             b = x.clone()
             for i in range(n):
                 if i % 3 == 0:
                     b += 1.0
                 else:
                     if i // 3 == 1:
                         b += 10.0
             return b
        ",
        &[t(vec![0.0], &[1]), RtValue::Int(6)],
    );
    // i=0: +1; i=1,2: i//3=0 nothing; i=3: +1; i=4,5: i//3=1 → +10 each.
    assert_eq!(out_f32(&outs, 0), vec![22.0]);
}

#[test]
fn nested_function_calls_and_unary_minus() {
    let outs = exec(
        "def f(x: Tensor):
             y = -sigmoid(-x) + abs(x * -1.0)
             return y
        ",
        &[t(vec![0.0], &[1])],
    );
    assert_eq!(out_f32(&outs, 0), vec![-0.5]);
}
