//! Frontend for a small imperative tensor DSL.
//!
//! The paper's input programs are imperative PyTorch functions; this crate
//! plays the role of the TorchScript frontend, turning a Python-flavoured
//! source text into graph-level IR. Whole-variable reassignment (including
//! across `for`/`if`) is resolved to SSA form during lowering — exactly the
//! scalar-SSA capture step the paper assumes (§2.2), leaving only *partial*
//! (view-level) mutation in the graph for the TensorSSA pass to handle.
//!
//! Supported constructs: typed parameters, `for _ in range(n)`, `if`/`else`,
//! tensor views by subscripting (`a[i]`, `a[1:4]`, `a[:, 0]`), in-place
//! methods (`t.copy_(s)`, `t.add_(s)`, subscript assignment `a[i] = x`),
//! elementwise/matrix math and the usual factory functions.
//!
//! # Examples
//!
//! The running example of the paper (Figure 4):
//!
//! ```
//! use tssa_frontend::compile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let graph = compile(
//!     "def add_rows(b0: Tensor, n: int):
//!          b = b0.clone()
//!          for i in range(n):
//!              b[i] = b[i] + 1.0
//!          return b
//! ")?;
//! assert!(graph.to_string().contains("prim::Loop"));
//! assert!(graph.to_string().contains("aten::copy_"));
//! # Ok(())
//! # }
//! ```

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use ast::{Expr, Function, Stmt};
pub use error::FrontendError;
pub use lower::lower;
pub use parser::parse;

use tssa_ir::Graph;

/// Parse and lower a DSL source into graph IR in one step.
///
/// # Errors
///
/// Returns a [`FrontendError`] with a line number on syntax or semantic
/// problems.
pub fn compile(source: &str) -> Result<Graph, FrontendError> {
    let func = parse(source)?;
    let graph = lower(&func)?;
    graph.verify().map_err(|e| FrontendError {
        line: 0,
        message: format!("internal: lowered graph failed verification: {e}"),
    })?;
    Ok(graph)
}
