//! Abstract syntax tree of the DSL.

use tssa_ir::Type;

/// A parsed `def` function.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Typed parameters.
    pub params: Vec<(String, Type)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value`
    Assign {
        /// Assignment target.
        target: Target,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `target op= value`
    AugAssign {
        /// Assignment target.
        target: Target,
        /// `+`, `-`, `*` or `/`.
        op: AugOp,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `for var in range(count):`
    For {
        /// Induction variable name.
        var: String,
        /// Trip count expression.
        count: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `while cond:` — a condition-driven loop.
    While {
        /// Loop condition, evaluated before entry and after every iteration.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `if cond: … else: …`
    If {
        /// Branch condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `return a, b`
    Return {
        /// Returned expressions.
        values: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// A bare expression (side-effecting method call).
    Expr {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: usize,
    },
}

/// Assignment target.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// A plain variable.
    Name(String),
    /// `base[subs…] = …`: a partial (view-level) write.
    Subscript {
        /// The subscripted expression.
        base: Expr,
        /// Subscript items, outermost first.
        subs: Vec<Sub>,
    },
}

/// Augmented-assignment operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugOp {
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
}

/// One subscript item.
#[derive(Debug, Clone, PartialEq)]
pub enum Sub {
    /// `a[i]` — select.
    Index(Expr),
    /// `a[lo:hi:step]` — slice (any bound may be omitted).
    Range {
        /// Start bound.
        start: Option<Expr>,
        /// End bound.
        end: Option<Expr>,
        /// Step.
        step: Option<Expr>,
    },
    /// `a[:, …]` — keep the whole dimension.
    Full,
}

/// Binary arithmetic operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
}

/// Comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Variable reference.
    Name(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Unary minus.
    Neg(Box<Expr>),
    /// `not e`.
    Not(Box<Expr>),
    /// Arithmetic.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Comparison.
    Compare {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `and` / `or`.
    BoolOp {
        /// `true` = and, `false` = or.
        is_and: bool,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Free-function call.
    Call {
        /// Function name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Method call.
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Subscript (view).
    Subscript {
        /// Base expression.
        base: Box<Expr>,
        /// Subscript items.
        subs: Vec<Sub>,
    },
    /// `[a, b, c]` list literal (shapes, concat operands).
    List(Vec<Expr>),
}
