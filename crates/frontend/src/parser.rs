//! Recursive-descent parser for the DSL.

use tssa_ir::Type;

use crate::ast::{AugOp, BinOp, CmpOp, Expr, Function, Stmt, Sub, Target};
use crate::lexer::{tokenize, Tok, Token};
use crate::FrontendError;

/// Parse one `def` function from source.
///
/// # Errors
///
/// Returns a [`FrontendError`] with the line of the first syntax error.
pub fn parse(source: &str) -> Result<Function, FrontendError> {
    let toks = tokenize(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.function()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].kind.clone();
        self.pos += 1;
        t
    }

    fn eat(&mut self, kind: &Tok) -> bool {
        if self.peek() == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: Tok, what: &str) -> Result<(), FrontendError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(FrontendError::at(
                self.line(),
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, FrontendError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(FrontendError::at(
                self.line(),
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn function(&mut self) -> Result<Function, FrontendError> {
        self.expect(Tok::Def, "`def`")?;
        let name = self.ident("function name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let pname = self.ident("parameter name")?;
                self.expect(Tok::Colon, "`:` before parameter type")?;
                let ty = self.ty()?;
                params.push((pname, ty));
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma, "`,`")?;
            }
        }
        self.expect(Tok::Colon, "`:`")?;
        self.expect(Tok::Newline, "newline")?;
        let body = self.block()?;
        Ok(Function { name, params, body })
    }

    fn ty(&mut self) -> Result<Type, FrontendError> {
        let name = self.ident("type")?;
        match name.as_str() {
            "Tensor" => Ok(Type::Tensor),
            "int" => Ok(Type::Int),
            "float" => Ok(Type::Float),
            "bool" => Ok(Type::Bool),
            other => Err(FrontendError::at(
                self.line(),
                format!("unknown type `{other}`"),
            )),
        }
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(Tok::Indent, "an indented block")?;
        let mut stmts = Vec::new();
        loop {
            if self.eat(&Tok::Dedent) || matches!(self.peek(), Tok::Eof) {
                break;
            }
            stmts.push(self.stmt()?);
        }
        if stmts.is_empty() {
            return Err(FrontendError::at(self.line(), "empty block"));
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let line = self.line();
        match self.peek().clone() {
            Tok::Return => {
                self.bump();
                let mut values = vec![self.expr()?];
                while self.eat(&Tok::Comma) {
                    values.push(self.expr()?);
                }
                self.expect(Tok::Newline, "newline")?;
                Ok(Stmt::Return { values, line })
            }
            Tok::For => {
                self.bump();
                let var = self.ident("loop variable")?;
                self.expect(Tok::In, "`in`")?;
                let range = self.ident("`range`")?;
                if range != "range" {
                    return Err(FrontendError::at(
                        line,
                        "only `range(...)` loops are supported",
                    ));
                }
                self.expect(Tok::LParen, "`(`")?;
                let count = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                self.expect(Tok::Colon, "`:`")?;
                self.expect(Tok::Newline, "newline")?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    count,
                    body,
                    line,
                })
            }
            Tok::While => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Colon, "`:`")?;
                self.expect(Tok::Newline, "newline")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            Tok::If => {
                self.bump();
                let cond = self.expr()?;
                self.expect(Tok::Colon, "`:`")?;
                self.expect(Tok::Newline, "newline")?;
                let then_body = self.block()?;
                let else_body = if self.eat(&Tok::Else) {
                    self.expect(Tok::Colon, "`:`")?;
                    self.expect(Tok::Newline, "newline")?;
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            _ => {
                let e = self.expr()?;
                let stmt = match self.peek() {
                    Tok::Assign => {
                        self.bump();
                        let value = self.expr()?;
                        Stmt::Assign {
                            target: expr_to_target(e, line)?,
                            value,
                            line,
                        }
                    }
                    Tok::PlusEq | Tok::MinusEq | Tok::StarEq | Tok::SlashEq => {
                        let op = match self.bump() {
                            Tok::PlusEq => AugOp::Add,
                            Tok::MinusEq => AugOp::Sub,
                            Tok::StarEq => AugOp::Mul,
                            _ => AugOp::Div,
                        };
                        let value = self.expr()?;
                        Stmt::AugAssign {
                            target: expr_to_target(e, line)?,
                            op,
                            value,
                            line,
                        }
                    }
                    _ => Stmt::Expr { expr: e, line },
                };
                self.expect(Tok::Newline, "newline")?;
                Ok(stmt)
            }
        }
    }

    // ----------------------------------------------------------- expressions

    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            lhs = Expr::BoolOp {
                is_and: false,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.not_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.not_expr()?;
            lhs = Expr::BoolOp {
                is_and: true,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, FrontendError> {
        if self.eat(&Tok::Not) {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.additive()?;
        let op = match self.peek() {
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.additive()?;
        Ok(Expr::Compare {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn additive(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::SlashSlash => BinOp::FloorDiv,
                Tok::Percent => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.postfix()
        }
    }

    fn postfix(&mut self) -> Result<Expr, FrontendError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    let name = self.ident("method name")?;
                    self.expect(Tok::LParen, "`(`")?;
                    let args = self.args()?;
                    e = Expr::MethodCall {
                        recv: Box::new(e),
                        name,
                        args,
                    };
                }
                Tok::LBracket => {
                    self.bump();
                    let mut subs = vec![self.sub()?];
                    while self.eat(&Tok::Comma) {
                        subs.push(self.sub()?);
                    }
                    self.expect(Tok::RBracket, "`]`")?;
                    e = Expr::Subscript {
                        base: Box::new(e),
                        subs,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn sub(&mut self) -> Result<Sub, FrontendError> {
        // A subscript item: `:`, `expr`, `expr:expr`, `:expr`, `expr::step` …
        if self.eat(&Tok::Colon) {
            // ':' with optional end / step
            return self.sub_range(None);
        }
        let first = self.expr()?;
        if self.eat(&Tok::Colon) {
            self.sub_range(Some(first))
        } else {
            Ok(Sub::Index(first))
        }
    }

    fn sub_range(&mut self, start: Option<Expr>) -> Result<Sub, FrontendError> {
        let mut end = None;
        let mut step = None;
        if !matches!(self.peek(), Tok::Comma | Tok::RBracket | Tok::Colon) {
            end = Some(self.expr()?);
        }
        if self.eat(&Tok::Colon) && !matches!(self.peek(), Tok::Comma | Tok::RBracket) {
            step = Some(self.expr()?);
        }
        if start.is_none() && end.is_none() && step.is_none() {
            return Ok(Sub::Full);
        }
        Ok(Sub::Range { start, end, step })
    }

    fn args(&mut self) -> Result<Vec<Expr>, FrontendError> {
        let mut args = Vec::new();
        if self.eat(&Tok::RParen) {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.eat(&Tok::RParen) {
                return Ok(args);
            }
            self.expect(Tok::Comma, "`,`")?;
        }
    }

    fn atom(&mut self) -> Result<Expr, FrontendError> {
        let line = self.line();
        match self.bump() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::True => Ok(Expr::Bool(true)),
            Tok::False => Ok(Expr::Bool(false)),
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let args = self.args()?;
                    Ok(Expr::Call { func: name, args })
                } else {
                    Ok(Expr::Name(name))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::LBracket => {
                let mut items = Vec::new();
                if !self.eat(&Tok::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if self.eat(&Tok::RBracket) {
                            break;
                        }
                        self.expect(Tok::Comma, "`,`")?;
                    }
                }
                Ok(Expr::List(items))
            }
            other => Err(FrontendError::at(
                line,
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

fn expr_to_target(e: Expr, line: usize) -> Result<Target, FrontendError> {
    match e {
        Expr::Name(n) => Ok(Target::Name(n)),
        Expr::Subscript { base, subs } => Ok(Target::Subscript { base: *base, subs }),
        _ => Err(FrontendError::at(line, "invalid assignment target")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_signature_and_body() {
        let f = parse(
            "def f(x: Tensor, n: int):
                 y = x.clone()
                 return y
        ",
        )
        .unwrap();
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1], ("n".into(), Type::Int));
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn parses_for_and_if() {
        let f = parse(
            "def f(x: Tensor, n: int):
                 for i in range(n):
                     if i < 2:
                         x = x.relu()
                     else:
                         x = x.sigmoid()
                 return x
        ",
        )
        .unwrap();
        let Stmt::For { body, .. } = &f.body[0] else {
            panic!("statement 0 should be a for loop, got {:?}", f.body[0]);
        };
        assert!(matches!(body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_subscripts() {
        let f = parse(
            "def f(a: Tensor, i: int):
                 b = a[i]
                 c = a[1:4]
                 d = a[:, 0]
                 e = a[::2]
                 a[i] = b + c
                 return d, e
        ",
        )
        .unwrap();
        let Stmt::Assign { value, .. } = &f.body[0] else {
            panic!("statement 0 should be an assignment, got {:?}", f.body[0])
        };
        assert!(matches!(value, Expr::Subscript { .. }));
        let Stmt::Assign { target, .. } = &f.body[4] else {
            panic!("statement 4 should be an assignment, got {:?}", f.body[4])
        };
        assert!(matches!(target, Target::Subscript { .. }));
        let Stmt::Assign { value: e_val, .. } = &f.body[3] else {
            panic!("statement 3 should be an assignment, got {:?}", f.body[3])
        };
        let Expr::Subscript { subs, .. } = e_val else {
            panic!("`a[::2]` should parse as a subscript, got {e_val:?}")
        };
        assert!(matches!(subs[0], Sub::Range { .. }));
    }

    #[test]
    fn parses_precedence() {
        let f = parse(
            "def f(a: int, b: int):
                 c = a + b * 2 - 1
                 d = a < b and b < 10 or not True
                 return c, d
        ",
        )
        .unwrap();
        let Stmt::Assign { value, .. } = &f.body[0] else {
            panic!("statement 0 should be an assignment, got {:?}", f.body[0])
        };
        // (a + (b*2)) - 1: top is Sub
        assert!(matches!(value, Expr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn parses_method_chains_and_calls() {
        let f = parse(
            "def f(x: Tensor):
                 y = sigmoid(x).transpose(0, 1).sum(0)
                 z = cat([x, y], 0)
                 return z
        ",
        )
        .unwrap();
        assert_eq!(f.body.len(), 3);
    }

    #[test]
    fn rejects_bad_targets() {
        assert!(parse("def f(x: int):\n    1 = x\n    return x\n").is_err());
        assert!(parse("def f(x: int):\n    return x +\n").is_err());
        assert!(parse("def f(x: badtype):\n    return x\n").is_err());
    }

    /// Every malformed form must come back as a [`FrontendError`] carrying
    /// the offending line and a message naming what the parser wanted —
    /// never a panic.
    #[test]
    fn malformed_forms_yield_diagnostics() {
        let cases: &[(&str, usize, &str)] = &[
            // Signature errors, all on line 1.
            ("fn f(x: Tensor):\n    return x\n", 1, "`def`"),
            (
                "def f(x Tensor):\n    return x\n",
                1,
                "`:` before parameter type",
            ),
            ("def f(x: Tensor:\n    return x\n", 1, "`,`"),
            ("def f(x: Tensor)\n    return x\n", 1, "`:`"),
            // Body errors carry the body line.
            (
                "def f(n: int):\n    for i range(n):\n        n = i\n    return n\n",
                2,
                "`in`",
            ),
            (
                "def f(n: int):\n    for i in count(n):\n        n = i\n    return n\n",
                2,
                "range",
            ),
            (
                "def f(n: int):\n    if n < 1\n        n = 2\n    return n\n",
                2,
                "`:`",
            ),
            ("def f(n: int):\n    m = (n + 1\n    return m\n", 2, "`)`"),
            ("def f(n: int):\n    m = n[1\n    return m\n", 2, "`]`"),
            ("def f(n: int):\n    return n +\n", 2, "expected"),
        ];
        for (source, line, needle) in cases {
            let err = parse(source).expect_err(source);
            assert_eq!(err.line, *line, "wrong line for {source:?}: {err}");
            assert!(
                err.message.contains(needle),
                "diagnostic for {source:?} should mention {needle:?}, got: {err}"
            );
        }
    }

    #[test]
    fn missing_indent_is_reported() {
        let err = parse("def f(n: int):\nreturn n\n").expect_err("body must be indented");
        assert!(
            err.message.contains("indent"),
            "should ask for an indented block, got: {err}"
        );
    }

    #[test]
    fn parses_augmented_assignment() {
        let f = parse(
            "def f(a: Tensor, i: int):
                 a[i] += 1.0
                 i += 1
                 return a
        ",
        )
        .unwrap();
        assert!(matches!(f.body[0], Stmt::AugAssign { op: AugOp::Add, .. }));
    }
}
