//! Frontend error type.

use std::error::Error;
use std::fmt;

/// Error produced while parsing or lowering DSL source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line (0 when not attributable).
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl FrontendError {
    pub(crate) fn at(line: usize, message: impl Into<String>) -> FrontendError {
        FrontendError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        assert_eq!(FrontendError::at(3, "bad").to_string(), "line 3: bad");
        assert_eq!(FrontendError::at(0, "bad").to_string(), "bad");
    }
}
