//! Indentation-aware lexer for the DSL.

use crate::FrontendError;

/// A lexical token with its source line.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: Tok,
    pub line: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    // keywords
    Def,
    Return,
    For,
    While,
    In,
    If,
    Else,
    Not,
    And,
    Or,
    True,
    False,
    // punctuation
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Dot,
    Assign,
    PlusEq,
    MinusEq,
    StarEq,
    SlashEq,
    Plus,
    Minus,
    Star,
    Slash,
    SlashSlash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    NotEq,
    Newline,
    Indent,
    Dedent,
    Eof,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "def" => Tok::Def,
        "return" => Tok::Return,
        "for" => Tok::For,
        "while" => Tok::While,
        "in" => Tok::In,
        "if" => Tok::If,
        "else" => Tok::Else,
        "not" => Tok::Not,
        "and" => Tok::And,
        "or" => Tok::Or,
        "True" => Tok::True,
        "False" => Tok::False,
        _ => return None,
    })
}

/// Tokenize `source`, emitting `Indent`/`Dedent` pairs from leading
/// whitespace like Python.
pub(crate) fn tokenize(source: &str) -> Result<Vec<Token>, FrontendError> {
    let mut out = Vec::new();
    let mut indents: Vec<usize> = vec![0];
    for (lineno0, raw) in source.lines().enumerate() {
        let line = lineno0 + 1;
        let body = raw.split('#').next().unwrap_or("");
        if body.trim().is_empty() {
            continue;
        }
        let indent = body.len() - body.trim_start_matches(' ').len();
        if body.trim_start().starts_with('\t') || body.starts_with('\t') {
            return Err(FrontendError::at(
                line,
                "tabs are not supported; use spaces",
            ));
        }
        let cur = *indents.last().expect("indent stack never empty");
        if indent > cur {
            indents.push(indent);
            out.push(Token {
                kind: Tok::Indent,
                line,
            });
        } else {
            while indent < *indents.last().expect("indent stack never empty") {
                indents.pop();
                out.push(Token {
                    kind: Tok::Dedent,
                    line,
                });
            }
            if indent != *indents.last().expect("indent stack never empty") {
                return Err(FrontendError::at(line, "inconsistent indentation"));
            }
        }
        lex_line(body.trim_start_matches(' '), line, &mut out)?;
        out.push(Token {
            kind: Tok::Newline,
            line,
        });
    }
    while indents.len() > 1 {
        indents.pop();
        out.push(Token {
            kind: Tok::Dedent,
            line: source.lines().count(),
        });
    }
    out.push(Token {
        kind: Tok::Eof,
        line: source.lines().count() + 1,
    });
    Ok(out)
}

fn lex_line(text: &str, line: usize, out: &mut Vec<Token>) -> Result<(), FrontendError> {
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let push = |out: &mut Vec<Token>, kind: Tok| out.push(Token { kind, line });
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' => i += 1,
            '(' => {
                push(out, Tok::LParen);
                i += 1;
            }
            ')' => {
                push(out, Tok::RParen);
                i += 1;
            }
            '[' => {
                push(out, Tok::LBracket);
                i += 1;
            }
            ']' => {
                push(out, Tok::RBracket);
                i += 1;
            }
            ',' => {
                push(out, Tok::Comma);
                i += 1;
            }
            ':' => {
                push(out, Tok::Colon);
                i += 1;
            }
            '.' => {
                push(out, Tok::Dot);
                i += 1;
            }
            '%' => {
                push(out, Tok::Percent);
                i += 1;
            }
            '+' | '-' | '*' | '/' => {
                let eq = chars.get(i + 1) == Some(&'=');
                if eq {
                    push(
                        out,
                        match c {
                            '+' => Tok::PlusEq,
                            '-' => Tok::MinusEq,
                            '*' => Tok::StarEq,
                            _ => Tok::SlashEq,
                        },
                    );
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'/') {
                    push(out, Tok::SlashSlash);
                    i += 2;
                } else {
                    push(
                        out,
                        match c {
                            '+' => Tok::Plus,
                            '-' => Tok::Minus,
                            '*' => Tok::Star,
                            _ => Tok::Slash,
                        },
                    );
                    i += 1;
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(out, Tok::Le);
                    i += 2;
                } else {
                    push(out, Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(out, Tok::Ge);
                    i += 2;
                } else {
                    push(out, Tok::Gt);
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(out, Tok::EqEq);
                    i += 2;
                } else {
                    push(out, Tok::Assign);
                    i += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(out, Tok::NotEq);
                    i += 2;
                } else {
                    return Err(FrontendError::at(line, "unexpected `!`"));
                }
            }
            _ if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut float = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || (chars[i] == '-' && s.ends_with('e')))
                {
                    // Trailing method call like `1.clone()` is not a float.
                    if chars[i] == '.'
                        && chars.get(i + 1).map(|n| n.is_alphabetic()).unwrap_or(false)
                    {
                        break;
                    }
                    if chars[i] == '.' || chars[i] == 'e' {
                        float = true;
                    }
                    s.push(chars[i]);
                    i += 1;
                }
                let kind = if float {
                    Tok::Float(s.parse().map_err(|_| {
                        FrontendError::at(line, format!("invalid float literal `{s}`"))
                    })?)
                } else {
                    Tok::Int(s.parse().map_err(|_| {
                        FrontendError::at(line, format!("invalid int literal `{s}`"))
                    })?)
                };
                push(out, kind);
            }
            _ if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    i += 1;
                }
                push(out, keyword(&s).unwrap_or(Tok::Ident(s)));
            }
            _ => {
                return Err(FrontendError::at(
                    line,
                    format!("unexpected character {c:?}"),
                ))
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_operators_and_literals() {
        let k = kinds("x = a + 2.5 * b[1:3]\n");
        assert!(k.contains(&Tok::Assign));
        assert!(k.contains(&Tok::Float(2.5)));
        assert!(k.contains(&Tok::Int(1)));
        assert!(k.contains(&Tok::LBracket));
        assert!(k.contains(&Tok::Colon));
    }

    #[test]
    fn emits_indent_dedent() {
        let k = kinds("for i in range(3):\n    x = 1\ny = 2\n");
        let indents = k.iter().filter(|t| **t == Tok::Indent).count();
        let dedents = k.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(indents, 1);
        assert_eq!(dedents, 1);
    }

    #[test]
    fn closes_indents_at_eof() {
        let k = kinds("if x:\n    if y:\n        z = 1\n");
        let dedents = k.iter().filter(|t| **t == Tok::Dedent).count();
        assert_eq!(dedents, 2);
        assert_eq!(*k.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let k = kinds("# a comment\n\nx = 1  # trailing\n");
        assert_eq!(k.iter().filter(|t| matches!(t, Tok::Newline)).count(), 1);
    }

    #[test]
    fn rejects_inconsistent_indentation() {
        assert!(tokenize("if x:\n    a = 1\n  b = 2\n").is_err());
    }

    #[test]
    fn method_call_on_int_receiver_is_not_float() {
        let k = kinds("x = t.size(0)\n");
        assert!(k.contains(&Tok::Dot));
        assert!(k.contains(&Tok::Int(0)));
    }

    #[test]
    fn augmented_assignment_tokens() {
        let k = kinds("a += 1\nb -= 2\nc *= 3\nd /= 4\ne = 7 // 2 % 3\n");
        for t in [
            Tok::PlusEq,
            Tok::MinusEq,
            Tok::StarEq,
            Tok::SlashEq,
            Tok::SlashSlash,
            Tok::Percent,
        ] {
            assert!(k.contains(&t), "{t:?} missing");
        }
    }
}
