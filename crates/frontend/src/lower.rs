//! Lowering from AST to graph IR with scalar SSA.
//!
//! Whole-variable rebinding (including through `for`/`if`) becomes loop
//! carries and branch outputs — the functional-SSA capture TorchScript
//! performs (§2.2 of the paper). *Partial* writes (`a[i] = …`, `t.add_(s)`)
//! lower to view + mutation nodes and are deliberately left imperative:
//! eliminating them is the job of the TensorSSA conversion.

use std::collections::HashMap;

use tssa_ir::{BlockId, ConstValue, Graph, MutateKind, Op, SrcSpan, Type, ValueId, ViewKind};

use crate::ast::{AugOp, BinOp, CmpOp, Expr, Function, Stmt, Sub, Target};
use crate::FrontendError;

type Env = HashMap<String, ValueId>;

/// Lower a parsed function to graph IR.
///
/// # Errors
///
/// Returns a [`FrontendError`] on type errors, unknown functions/methods or
/// unsupported constructs (e.g. `return` inside control flow).
pub fn lower(func: &Function) -> Result<Graph, FrontendError> {
    let mut lw = Lowerer { g: Graph::new() };
    let mut env = Env::new();
    for (name, ty) in &func.params {
        let v = lw.g.add_input(name, ty.clone());
        env.insert(name.clone(), v);
    }
    let top = lw.g.top();
    let mut returned = false;
    for (i, stmt) in func.body.iter().enumerate() {
        if let Stmt::Return { values, line } = stmt {
            if i + 1 != func.body.len() {
                return Err(FrontendError::at(
                    *line,
                    "return must be the last statement",
                ));
            }
            lw.g.set_current_span(Some(SrcSpan::line(*line)));
            let mut rets = Vec::new();
            for v in values {
                rets.push(lw.expr(v, top, &mut env)?);
            }
            lw.g.set_returns(top, &rets);
            returned = true;
        } else {
            lw.stmt(stmt, top, &mut env)?;
        }
    }
    lw.g.set_current_span(None);
    if !returned {
        return Err(FrontendError::at(0, "function must end with a return"));
    }
    Ok(lw.g)
}

struct Lowerer {
    g: Graph,
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, FrontendError> {
    Err(FrontendError::at(line, message))
}

/// Names rebound by `stmts` given the current environment (mutations through
/// views and tensor `+=` do not rebind; scalar `+=` does).
fn rebound_names(stmts: &[Stmt], env: &Env, g: &Graph, out: &mut Vec<String>) {
    for s in stmts {
        match s {
            Stmt::Assign {
                target: Target::Name(n),
                ..
            } if env.contains_key(n) && !out.contains(n) => {
                out.push(n.clone());
            }
            Stmt::AugAssign {
                target: Target::Name(n),
                ..
            } => {
                if let Some(&v) = env.get(n) {
                    if g.value(v).ty != Type::Tensor && !out.contains(n) {
                        out.push(n.clone());
                    }
                }
            }
            Stmt::For { body, .. } | Stmt::While { body, .. } => rebound_names(body, env, g, out),
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                rebound_names(then_body, env, g, out);
                rebound_names(else_body, env, g, out);
            }
            _ => {}
        }
    }
}

fn literal_int(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Neg(inner) => literal_int(inner).map(|v| -v),
        _ => None,
    }
}

fn literal_int_list(e: &Expr) -> Option<Vec<i64>> {
    match e {
        Expr::List(items) => items.iter().map(literal_int).collect(),
        _ => None,
    }
}

impl Lowerer {
    fn ty(&self, v: ValueId) -> Type {
        self.g.value(v).ty.clone()
    }

    fn c_int(&mut self, block: BlockId, v: i64) -> ValueId {
        self.g.constant_in(block, ConstValue::Int(v))
    }

    fn c_float(&mut self, block: BlockId, v: f64) -> ValueId {
        self.g.constant_in(block, ConstValue::Float(v))
    }

    fn c_bool(&mut self, block: BlockId, v: bool) -> ValueId {
        self.g.constant_in(block, ConstValue::Bool(v))
    }

    fn one(&mut self, block: BlockId, op: Op, inputs: &[ValueId], ty: Type) -> ValueId {
        let n = self.g.append(block, op, inputs, &[ty]);
        self.g.out(n)
    }

    /// Coerce an Int value to Float (identity for Float).
    fn coerce_float(
        &mut self,
        block: BlockId,
        v: ValueId,
        line: usize,
    ) -> Result<ValueId, FrontendError> {
        match self.ty(v) {
            Type::Float => Ok(v),
            Type::Int => Ok(self.one(block, Op::IntToFloat, &[v], Type::Float)),
            other => err(line, format!("expected a scalar, found {other}")),
        }
    }

    // ---------------------------------------------------------- statements

    fn stmt(&mut self, stmt: &Stmt, block: BlockId, env: &mut Env) -> Result<(), FrontendError> {
        // Every node appended while lowering this statement inherits its
        // source line, so lints on the resulting graph can point at source.
        let line = match stmt {
            Stmt::Expr { line, .. }
            | Stmt::Assign { line, .. }
            | Stmt::AugAssign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::For { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Return { line, .. } => *line,
        };
        if line > 0 {
            self.g.set_current_span(Some(SrcSpan::line(line)));
        }
        match stmt {
            Stmt::Return { line, .. } => {
                err(*line, "return is only allowed at the end of the function")
            }
            Stmt::Expr { expr, .. } => {
                self.expr(expr, block, env)?;
                Ok(())
            }
            Stmt::Assign {
                target,
                value,
                line,
            } => match target {
                Target::Name(name) => {
                    let v = self.expr(value, block, env)?;
                    env.insert(name.clone(), v);
                    Ok(())
                }
                Target::Subscript { base, subs } => {
                    let base_v = self.expr(base, block, env)?;
                    let view = self.view_chain(base_v, subs, block, env, *line)?;
                    let rhs = self.expr(value, block, env)?;
                    match self.ty(rhs) {
                        Type::Tensor => {
                            self.g.append(
                                block,
                                Op::Mutate(MutateKind::Copy),
                                &[view, rhs],
                                &[Type::Tensor],
                            );
                        }
                        Type::Float | Type::Int => {
                            let f = self.coerce_float(block, rhs, *line)?;
                            self.g.append(
                                block,
                                Op::Mutate(MutateKind::Fill),
                                &[view, f],
                                &[Type::Tensor],
                            );
                        }
                        other => return err(*line, format!("cannot store {other} into a tensor")),
                    }
                    Ok(())
                }
            },
            Stmt::AugAssign {
                target,
                op,
                value,
                line,
            } => {
                match target {
                    Target::Name(name) => {
                        let Some(&cur) = env.get(name) else {
                            return err(*line, format!("undefined variable `{name}`"));
                        };
                        if self.ty(cur) == Type::Tensor {
                            self.mutate_binary(cur, *op, value, block, env, *line)?;
                        } else {
                            // Scalar augmented assignment rebinds.
                            let bin = match op {
                                AugOp::Add => BinOp::Add,
                                AugOp::Sub => BinOp::Sub,
                                AugOp::Mul => BinOp::Mul,
                                AugOp::Div => BinOp::Div,
                            };
                            let rhs = self.expr(value, block, env)?;
                            let v = self.binary(bin, cur, rhs, block, *line)?;
                            env.insert(name.clone(), v);
                        }
                    }
                    Target::Subscript { base, subs } => {
                        let base_v = self.expr(base, block, env)?;
                        let view = self.view_chain(base_v, subs, block, env, *line)?;
                        self.mutate_binary(view, *op, value, block, env, *line)?;
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => self.if_stmt(cond, then_body, else_body, block, env, *line),
            Stmt::For {
                var,
                count,
                body,
                line,
            } => self.for_stmt(var, count, body, block, env, *line),
            Stmt::While { cond, body, line } => self.while_stmt(cond, body, block, env, *line),
        }
    }

    /// In-place `target op= value` on a tensor view.
    fn mutate_binary(
        &mut self,
        view: ValueId,
        op: AugOp,
        value: &Expr,
        block: BlockId,
        env: &mut Env,
        line: usize,
    ) -> Result<(), FrontendError> {
        let rhs = self.expr(value, block, env)?;
        match self.ty(rhs) {
            Type::Tensor => {
                let kind = match op {
                    AugOp::Add => MutateKind::Add,
                    AugOp::Sub => MutateKind::Sub,
                    AugOp::Mul => MutateKind::Mul,
                    AugOp::Div => MutateKind::Div,
                };
                self.g
                    .append(block, Op::Mutate(kind), &[view, rhs], &[Type::Tensor]);
            }
            Type::Float | Type::Int => {
                let f = self.coerce_float(block, rhs, line)?;
                let (kind, operand) = match op {
                    AugOp::Add => (MutateKind::AddScalar, f),
                    AugOp::Sub => {
                        let neg = self.one(block, Op::FloatNeg, &[f], Type::Float);
                        (MutateKind::AddScalar, neg)
                    }
                    AugOp::Mul => (MutateKind::MulScalar, f),
                    AugOp::Div => {
                        let one = self.c_float(block, 1.0);
                        let inv = self.one(block, Op::FloatDiv, &[one, f], Type::Float);
                        (MutateKind::MulScalar, inv)
                    }
                };
                self.g
                    .append(block, Op::Mutate(kind), &[view, operand], &[Type::Tensor]);
            }
            other => return err(line, format!("cannot combine tensor with {other} in place")),
        }
        Ok(())
    }

    fn if_stmt(
        &mut self,
        cond: &Expr,
        then_body: &[Stmt],
        else_body: &[Stmt],
        block: BlockId,
        env: &mut Env,
        line: usize,
    ) -> Result<(), FrontendError> {
        let cond_v = self.expr(cond, block, env)?;
        if self.ty(cond_v) != Type::Bool {
            return err(
                line,
                "if condition must be a host bool (use `.item()` on tensors)",
            );
        }
        let if_node = self.g.append(block, Op::If, &[cond_v], &[]);
        let then_b = self.g.add_node_block(if_node);
        let else_b = self.g.add_node_block(if_node);

        let mut env_then = env.clone();
        for s in then_body {
            self.stmt(s, then_b, &mut env_then)?;
        }
        let mut env_else = env.clone();
        for s in else_body {
            self.stmt(s, else_b, &mut env_else)?;
        }

        // Variables visible before the branch whose binding changed in
        // either arm become If outputs.
        let mut changed: Vec<String> = Vec::new();
        let mut names: Vec<&String> = env.keys().collect();
        names.sort();
        for name in names {
            let before = env[name];
            let t = env_then.get(name).copied().unwrap_or(before);
            let e = env_else.get(name).copied().unwrap_or(before);
            if t != before || e != before {
                if self.ty(t) != self.ty(e) {
                    return err(
                        line,
                        format!("`{name}` has different types in the two branches"),
                    );
                }
                changed.push(name.clone());
            }
        }
        for name in &changed {
            let t = env_then[name];
            let e = env_else[name];
            self.g.push_return(then_b, t);
            self.g.push_return(else_b, e);
            let ty = self.ty(t);
            let out = self.g.add_output(if_node, ty);
            env.insert(name.clone(), out);
        }
        Ok(())
    }

    fn for_stmt(
        &mut self,
        var: &str,
        count: &Expr,
        body: &[Stmt],
        block: BlockId,
        env: &mut Env,
        line: usize,
    ) -> Result<(), FrontendError> {
        let n = self.expr(count, block, env)?;
        if self.ty(n) != Type::Int {
            return err(line, "range() needs an int");
        }
        let t = self.c_bool(block, true);
        let mut carried: Vec<String> = Vec::new();
        rebound_names(body, env, &self.g, &mut carried);
        let inits: Vec<ValueId> = carried.iter().map(|n| env[n]).collect();
        let out_types: Vec<Type> = inits.iter().map(|&v| self.ty(v)).collect();

        let mut loop_inputs = vec![n, t];
        loop_inputs.extend_from_slice(&inits);
        let loop_node = self.g.append(block, Op::Loop, &loop_inputs, &out_types);
        let body_b = self.g.add_node_block(loop_node);
        let i_p = self.g.add_block_param(body_b, Type::Int);
        let mut env_body = env.clone();
        env_body.insert(var.to_string(), i_p);
        for (k, name) in carried.iter().enumerate() {
            let p = self.g.add_block_param(body_b, out_types[k].clone());
            env_body.insert(name.clone(), p);
        }
        for s in body {
            self.stmt(s, body_b, &mut env_body)?;
        }
        let cond = self.c_bool(body_b, true);
        let mut rets = vec![cond];
        for name in &carried {
            rets.push(env_body[name]);
        }
        self.g.set_returns(body_b, &rets);
        for (k, name) in carried.iter().enumerate() {
            let out = self.g.node(loop_node).outputs[k];
            env.insert(name.clone(), out);
        }
        Ok(())
    }

    /// `while cond:` lowers to a `prim::Loop` with trip count `i64::MAX`:
    /// the condition is evaluated once before entry (the loop's initial
    /// condition) and re-evaluated at the end of every iteration (the body's
    /// condition return), following TorchScript's convention.
    fn while_stmt(
        &mut self,
        cond: &Expr,
        body: &[Stmt],
        block: BlockId,
        env: &mut Env,
        line: usize,
    ) -> Result<(), FrontendError> {
        let init_cond = self.expr(cond, block, env)?;
        if self.ty(init_cond) != Type::Bool {
            return err(line, "while condition must be a host bool");
        }
        let trip = self.c_int(block, i64::MAX);
        let mut carried: Vec<String> = Vec::new();
        rebound_names(body, env, &self.g, &mut carried);
        let inits: Vec<ValueId> = carried.iter().map(|n| env[n]).collect();
        let out_types: Vec<Type> = inits.iter().map(|&v| self.ty(v)).collect();

        let mut loop_inputs = vec![trip, init_cond];
        loop_inputs.extend_from_slice(&inits);
        let loop_node = self.g.append(block, Op::Loop, &loop_inputs, &out_types);
        let body_b = self.g.add_node_block(loop_node);
        let _i = self.g.add_block_param(body_b, Type::Int);
        let mut env_body = env.clone();
        for (k, name) in carried.iter().enumerate() {
            let p = self.g.add_block_param(body_b, out_types[k].clone());
            env_body.insert(name.clone(), p);
        }
        for s in body {
            self.stmt(s, body_b, &mut env_body)?;
        }
        let next_cond = self.expr(cond, body_b, &mut env_body)?;
        if self.ty(next_cond) != Type::Bool {
            return err(line, "while condition must be a host bool");
        }
        let mut rets = vec![next_cond];
        for name in &carried {
            rets.push(env_body[name]);
        }
        self.g.set_returns(body_b, &rets);
        for (k, name) in carried.iter().enumerate() {
            let out = self.g.node(loop_node).outputs[k];
            env.insert(name.clone(), out);
        }
        Ok(())
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self, e: &Expr, block: BlockId, env: &mut Env) -> Result<ValueId, FrontendError> {
        match e {
            Expr::Name(n) => env
                .get(n)
                .copied()
                .ok_or_else(|| FrontendError::at(0, format!("undefined variable `{n}`"))),
            Expr::Int(v) => Ok(self.c_int(block, *v)),
            Expr::Float(v) => Ok(self.c_float(block, *v)),
            Expr::Bool(v) => Ok(self.c_bool(block, *v)),
            Expr::Neg(inner) => {
                let v = self.expr(inner, block, env)?;
                Ok(match self.ty(v) {
                    Type::Int => self.one(block, Op::IntNeg, &[v], Type::Int),
                    Type::Float => self.one(block, Op::FloatNeg, &[v], Type::Float),
                    Type::Tensor => self.one(block, Op::Neg, &[v], Type::Tensor),
                    other => return err(0, format!("cannot negate {other}")),
                })
            }
            Expr::Not(inner) => {
                let v = self.expr(inner, block, env)?;
                Ok(match self.ty(v) {
                    Type::Bool => self.one(block, Op::BoolNot, &[v], Type::Bool),
                    Type::Tensor => self.one(block, Op::LogicalNot, &[v], Type::Tensor),
                    other => return err(0, format!("cannot apply `not` to {other}")),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs, block, env)?;
                let r = self.expr(rhs, block, env)?;
                self.binary(*op, l, r, block, 0)
            }
            Expr::Compare { op, lhs, rhs } => {
                let l = self.expr(lhs, block, env)?;
                let r = self.expr(rhs, block, env)?;
                self.compare(*op, l, r, block)
            }
            Expr::BoolOp { is_and, lhs, rhs } => {
                let l = self.expr(lhs, block, env)?;
                let r = self.expr(rhs, block, env)?;
                match (self.ty(l), self.ty(r)) {
                    (Type::Bool, Type::Bool) => {
                        let op = if *is_and { Op::BoolAnd } else { Op::BoolOr };
                        Ok(self.one(block, op, &[l, r], Type::Bool))
                    }
                    (Type::Tensor, Type::Tensor) => {
                        let op = if *is_and {
                            Op::LogicalAnd
                        } else {
                            Op::LogicalOr
                        };
                        Ok(self.one(block, op, &[l, r], Type::Tensor))
                    }
                    (a, b) => err(0, format!("cannot combine {a} and {b} with and/or")),
                }
            }
            Expr::Subscript { base, subs } => {
                let b = self.expr(base, block, env)?;
                self.view_chain(b, subs, block, env, 0)
            }
            Expr::Call { func, args } => self.call(func, args, block, env),
            Expr::MethodCall { recv, name, args } => self.method(recv, name, args, block, env),
            Expr::List(_) => err(0, "list literal is only valid as an operator argument"),
        }
    }

    fn view_chain(
        &mut self,
        base: ValueId,
        subs: &[Sub],
        block: BlockId,
        env: &mut Env,
        line: usize,
    ) -> Result<ValueId, FrontendError> {
        if self.ty(base) != Type::Tensor {
            return err(line, "only tensors can be subscripted");
        }
        let mut cur = base;
        let mut dim = 0i64;
        for sub in subs {
            match sub {
                Sub::Index(e) => {
                    let idx = self.expr(e, block, env)?;
                    if self.ty(idx) != Type::Int {
                        return err(line, "tensor indices must be ints");
                    }
                    cur = self.one(
                        block,
                        Op::View(ViewKind::Select { dim }),
                        &[cur, idx],
                        Type::Tensor,
                    );
                }
                Sub::Range { start, end, step } => {
                    let s = match start {
                        Some(e) => self.expr(e, block, env)?,
                        None => self.c_int(block, 0),
                    };
                    let e_v = match end {
                        Some(e) => self.expr(e, block, env)?,
                        None => self.c_int(block, i64::MAX),
                    };
                    let st = match step {
                        Some(e) => self.expr(e, block, env)?,
                        None => self.c_int(block, 1),
                    };
                    cur = self.one(
                        block,
                        Op::View(ViewKind::SliceView { dim }),
                        &[cur, s, e_v, st],
                        Type::Tensor,
                    );
                    dim += 1;
                }
                Sub::Full => dim += 1,
            }
        }
        Ok(cur)
    }

    fn binary(
        &mut self,
        op: BinOp,
        l: ValueId,
        r: ValueId,
        block: BlockId,
        line: usize,
    ) -> Result<ValueId, FrontendError> {
        use Type::*;
        Ok(match (self.ty(l), self.ty(r)) {
            (Int, Int) => {
                let o = match op {
                    BinOp::Add => Op::IntAdd,
                    BinOp::Sub => Op::IntSub,
                    BinOp::Mul => Op::IntMul,
                    BinOp::FloorDiv => Op::IntDiv,
                    BinOp::Mod => Op::IntMod,
                    BinOp::Div => {
                        let lf = self.coerce_float(block, l, line)?;
                        let rf = self.coerce_float(block, r, line)?;
                        return Ok(self.one(block, Op::FloatDiv, &[lf, rf], Float));
                    }
                };
                self.one(block, o, &[l, r], Int)
            }
            (Float, Float) | (Float, Int) | (Int, Float) => {
                let lf = self.coerce_float(block, l, line)?;
                let rf = self.coerce_float(block, r, line)?;
                let o = match op {
                    BinOp::Add => Op::FloatAdd,
                    BinOp::Sub => Op::FloatSub,
                    BinOp::Mul => Op::FloatMul,
                    BinOp::Div | BinOp::FloorDiv => Op::FloatDiv,
                    BinOp::Mod => return err(line, "float modulo is not supported"),
                };
                self.one(block, o, &[lf, rf], Float)
            }
            (Tensor, Tensor) => {
                let o = match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::FloorDiv | BinOp::Mod => {
                        return err(line, "floor-div/mod are not defined on tensors")
                    }
                };
                self.one(block, o, &[l, r], Tensor)
            }
            (Tensor, Float) | (Tensor, Int) => {
                let s = self.coerce_float(block, r, line)?;
                let o = match op {
                    BinOp::Add => Op::AddScalar,
                    BinOp::Sub => Op::SubScalar,
                    BinOp::Mul => Op::MulScalar,
                    BinOp::Div => Op::DivScalar,
                    BinOp::FloorDiv | BinOp::Mod => {
                        return err(line, "floor-div/mod are not defined on tensors")
                    }
                };
                self.one(block, o, &[l, s], Tensor)
            }
            (Float, Tensor) | (Int, Tensor) => {
                let s = self.coerce_float(block, l, line)?;
                match op {
                    BinOp::Add => self.one(block, Op::AddScalar, &[r, s], Tensor),
                    BinOp::Mul => self.one(block, Op::MulScalar, &[r, s], Tensor),
                    BinOp::Sub => {
                        // s - t = (-t) + s
                        let neg = self.one(block, Op::Neg, &[r], Tensor);
                        self.one(block, Op::AddScalar, &[neg, s], Tensor)
                    }
                    BinOp::Div => {
                        // s / t = s * t^-1
                        let m1 = self.c_float(block, -1.0);
                        let inv = self.one(block, Op::PowScalar, &[r, m1], Tensor);
                        self.one(block, Op::MulScalar, &[inv, s], Tensor)
                    }
                    BinOp::FloorDiv | BinOp::Mod => {
                        return err(line, "floor-div/mod are not defined on tensors")
                    }
                }
            }
            (a, b) => return err(line, format!("cannot apply arithmetic to {a} and {b}")),
        })
    }

    fn compare(
        &mut self,
        op: CmpOp,
        l: ValueId,
        r: ValueId,
        block: BlockId,
    ) -> Result<ValueId, FrontendError> {
        use Type::*;
        Ok(match (self.ty(l), self.ty(r)) {
            (Int, Int) => {
                let o = match op {
                    CmpOp::Lt => Op::IntLt,
                    CmpOp::Le => Op::IntLe,
                    CmpOp::Gt => Op::IntGt,
                    CmpOp::Ge => Op::IntGe,
                    CmpOp::Eq => Op::IntEq,
                    CmpOp::Ne => Op::IntNe,
                };
                self.one(block, o, &[l, r], Bool)
            }
            (Float, Float) | (Float, Int) | (Int, Float) => {
                let lf = self.coerce_float(block, l, 0)?;
                let rf = self.coerce_float(block, r, 0)?;
                match op {
                    CmpOp::Lt => self.one(block, Op::FloatLt, &[lf, rf], Bool),
                    CmpOp::Gt => self.one(block, Op::FloatGt, &[lf, rf], Bool),
                    CmpOp::Le => {
                        let gt = self.one(block, Op::FloatGt, &[lf, rf], Bool);
                        self.one(block, Op::BoolNot, &[gt], Bool)
                    }
                    CmpOp::Ge => {
                        let lt = self.one(block, Op::FloatLt, &[lf, rf], Bool);
                        self.one(block, Op::BoolNot, &[lt], Bool)
                    }
                    CmpOp::Eq | CmpOp::Ne => return err(0, "float equality is not supported"),
                }
            }
            (Tensor, Tensor) => self.tensor_compare(op, l, r, block),
            (Tensor, Float) | (Tensor, Int) => {
                let s = self.coerce_float(block, r, 0)?;
                let full = self.one(block, Op::FullLike, &[l, s], Tensor);
                self.tensor_compare(op, l, full, block)
            }
            (Float, Tensor) | (Int, Tensor) => {
                let s = self.coerce_float(block, l, 0)?;
                let full = self.one(block, Op::FullLike, &[r, s], Tensor);
                self.tensor_compare(op, full, r, block)
            }
            (a, b) => return err(0, format!("cannot compare {a} and {b}")),
        })
    }

    fn tensor_compare(&mut self, op: CmpOp, l: ValueId, r: ValueId, block: BlockId) -> ValueId {
        let o = match op {
            CmpOp::Lt => Op::Lt,
            CmpOp::Le => Op::Le,
            CmpOp::Gt => Op::Gt,
            CmpOp::Ge => Op::Ge,
            CmpOp::Eq | CmpOp::Ne => Op::EqElem,
        };
        let v = self.one(block, o, &[l, r], Type::Tensor);
        if op == CmpOp::Ne {
            self.one(block, Op::LogicalNot, &[v], Type::Tensor)
        } else {
            v
        }
    }

    fn call(
        &mut self,
        func: &str,
        args: &[Expr],
        block: BlockId,
        env: &mut Env,
    ) -> Result<ValueId, FrontendError> {
        let tensor_arg =
            |lw: &mut Self, env: &mut Env, i: usize| -> Result<ValueId, FrontendError> {
                let v = lw.expr(&args[i], block, env)?;
                if lw.ty(v) != Type::Tensor {
                    return err(0, format!("`{func}` argument {i} must be a tensor"));
                }
                Ok(v)
            };
        match func {
            "sigmoid" | "exp" | "relu" | "tanh" | "log" | "sqrt" | "abs" | "neg" => {
                let t = tensor_arg(self, env, 0)?;
                let op = match func {
                    "sigmoid" => Op::Sigmoid,
                    "exp" => Op::Exp,
                    "relu" => Op::Relu,
                    "tanh" => Op::Tanh,
                    "log" => Op::Log,
                    "sqrt" => Op::Sqrt,
                    "abs" => Op::Abs,
                    _ => Op::Neg,
                };
                Ok(self.one(block, op, &[t], Type::Tensor))
            }
            "zeros" | "ones" => {
                let shape = literal_int_list(&args[0])
                    .ok_or_else(|| FrontendError::at(0, "zeros/ones need a literal shape list"))?;
                let op = if func == "zeros" {
                    Op::Zeros { shape }
                } else {
                    Op::Ones { shape }
                };
                Ok(self.one(block, op, &[], Type::Tensor))
            }
            "full" => {
                let shape = literal_int_list(&args[0])
                    .ok_or_else(|| FrontendError::at(0, "full needs a literal shape list"))?;
                let v = self.expr(&args[1], block, env)?;
                let f = self.coerce_float(block, v, 0)?;
                Ok(self.one(block, Op::Full { shape }, &[f], Type::Tensor))
            }
            "arange" => {
                let n = self.expr(&args[0], block, env)?;
                Ok(self.one(block, Op::Arange, &[n], Type::Tensor))
            }
            "zeros_like" | "ones_like" => {
                let t = tensor_arg(self, env, 0)?;
                let op = if func == "zeros_like" {
                    Op::ZerosLike
                } else {
                    Op::OnesLike
                };
                Ok(self.one(block, op, &[t], Type::Tensor))
            }
            "full_like" => {
                let t = tensor_arg(self, env, 0)?;
                let v = self.expr(&args[1], block, env)?;
                let f = self.coerce_float(block, v, 0)?;
                Ok(self.one(block, Op::FullLike, &[t, f], Type::Tensor))
            }
            "cat" | "stack" => {
                let Expr::List(items) = &args[0] else {
                    return err(0, "cat/stack need a list of tensors");
                };
                let dim = literal_int(&args[1])
                    .ok_or_else(|| FrontendError::at(0, "cat/stack need a literal dim"))?;
                let mut vals = Vec::new();
                for item in items {
                    let v = self.expr(item, block, env)?;
                    vals.push(v);
                }
                let op = if func == "cat" {
                    Op::Concat { dim }
                } else {
                    Op::Stack { dim }
                };
                Ok(self.one(block, op, &vals, Type::Tensor))
            }
            "where" => {
                let c = tensor_arg(self, env, 0)?;
                let a = tensor_arg(self, env, 1)?;
                let b = tensor_arg(self, env, 2)?;
                Ok(self.one(block, Op::WhereSelect, &[c, a, b], Type::Tensor))
            }
            "minimum" | "maximum" => {
                let a = tensor_arg(self, env, 0)?;
                let b = tensor_arg(self, env, 1)?;
                let op = if func == "minimum" {
                    Op::Minimum
                } else {
                    Op::Maximum
                };
                Ok(self.one(block, op, &[a, b], Type::Tensor))
            }
            "pow" => {
                let t = tensor_arg(self, env, 0)?;
                let v = self.expr(&args[1], block, env)?;
                let f = self.coerce_float(block, v, 0)?;
                Ok(self.one(block, Op::PowScalar, &[t, f], Type::Tensor))
            }
            "matmul" => {
                let a = tensor_arg(self, env, 0)?;
                let b = tensor_arg(self, env, 1)?;
                Ok(self.one(block, Op::Matmul, &[a, b], Type::Tensor))
            }
            "bmm" => {
                let a = tensor_arg(self, env, 0)?;
                let b = tensor_arg(self, env, 1)?;
                Ok(self.one(block, Op::Bmm, &[a, b], Type::Tensor))
            }
            "gather" => {
                let t = tensor_arg(self, env, 0)?;
                let dim = literal_int(&args[1])
                    .ok_or_else(|| FrontendError::at(0, "gather needs a literal dim"))?;
                let idx = tensor_arg(self, env, 2)?;
                Ok(self.one(block, Op::Gather { dim }, &[t, idx], Type::Tensor))
            }
            "index_select" => {
                let t = tensor_arg(self, env, 0)?;
                let dim = literal_int(&args[1])
                    .ok_or_else(|| FrontendError::at(0, "index_select needs a literal dim"))?;
                let idx = tensor_arg(self, env, 2)?;
                Ok(self.one(block, Op::IndexSelect { dim }, &[t, idx], Type::Tensor))
            }
            "float" => {
                let v = self.expr(&args[0], block, env)?;
                self.coerce_float(block, v, 0)
            }
            other => err(0, format!("unknown function `{other}`")),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn method(
        &mut self,
        recv: &Expr,
        name: &str,
        args: &[Expr],
        block: BlockId,
        env: &mut Env,
    ) -> Result<ValueId, FrontendError> {
        let r = self.expr(recv, block, env)?;
        if self.ty(r) != Type::Tensor {
            return err(0, format!("method `{name}` requires a tensor receiver"));
        }
        let lit = |e: &Expr, what: &str| -> Result<i64, FrontendError> {
            literal_int(e)
                .ok_or_else(|| FrontendError::at(0, format!("`{name}` needs a literal {what}")))
        };
        let keepdim = |args: &[Expr]| -> bool { matches!(args.get(1), Some(Expr::Bool(true))) };
        Ok(match name {
            "clone" => self.one(block, Op::CloneOp, &[r], Type::Tensor),
            "contiguous" => self.one(block, Op::Contiguous, &[r], Type::Tensor),
            "relu" => self.one(block, Op::Relu, &[r], Type::Tensor),
            "sigmoid" => self.one(block, Op::Sigmoid, &[r], Type::Tensor),
            "tanh" => self.one(block, Op::Tanh, &[r], Type::Tensor),
            "exp" => self.one(block, Op::Exp, &[r], Type::Tensor),
            "log" => self.one(block, Op::Log, &[r], Type::Tensor),
            "sqrt" => self.one(block, Op::Sqrt, &[r], Type::Tensor),
            "abs" => self.one(block, Op::Abs, &[r], Type::Tensor),
            "neg" => self.one(block, Op::Neg, &[r], Type::Tensor),
            "clamp" => {
                let lo = self.expr(&args[0], block, env)?;
                let hi = self.expr(&args[1], block, env)?;
                let lo = self.coerce_float(block, lo, 0)?;
                let hi = self.coerce_float(block, hi, 0)?;
                self.one(block, Op::Clamp, &[r, lo, hi], Type::Tensor)
            }
            "softmax" => {
                let dim = lit(&args[0], "dim")?;
                self.one(block, Op::Softmax { dim }, &[r], Type::Tensor)
            }
            "cumsum" => {
                let dim = lit(&args[0], "dim")?;
                self.one(block, Op::Cumsum { dim }, &[r], Type::Tensor)
            }
            "sum" | "mean" | "max" | "min" | "argmax" => {
                let dim = lit(&args[0], "dim")?;
                let kd = keepdim(args);
                let op = match name {
                    "sum" => Op::SumDim { dim, keepdim: kd },
                    "mean" => Op::MeanDim { dim, keepdim: kd },
                    "max" => Op::MaxDim { dim, keepdim: kd },
                    "min" => Op::MinDim { dim, keepdim: kd },
                    _ => Op::ArgmaxDim { dim, keepdim: kd },
                };
                self.one(block, op, &[r], Type::Tensor)
            }
            "matmul" => {
                let b = self.expr(&args[0], block, env)?;
                self.one(block, Op::Matmul, &[r, b], Type::Tensor)
            }
            "bmm" => {
                let b = self.expr(&args[0], block, env)?;
                self.one(block, Op::Bmm, &[r, b], Type::Tensor)
            }
            "size" => {
                let dim = lit(&args[0], "dim")?;
                self.one(block, Op::Size { dim }, &[r], Type::Int)
            }
            "item" => self.one(block, Op::ItemFloat, &[r], Type::Float),
            "item_int" => self.one(block, Op::ItemInt, &[r], Type::Int),
            "item_bool" => self.one(block, Op::ItemBool, &[r], Type::Bool),
            "transpose" => {
                let d0 = lit(&args[0], "dim")?;
                let d1 = lit(&args[1], "dim")?;
                self.one(
                    block,
                    Op::View(ViewKind::Transpose { dim0: d0, dim1: d1 }),
                    &[r],
                    Type::Tensor,
                )
            }
            "permute" => {
                let perm = literal_int_list(&args[0])
                    .ok_or_else(|| FrontendError::at(0, "permute needs a literal list"))?;
                self.one(
                    block,
                    Op::View(ViewKind::Permute { perm }),
                    &[r],
                    Type::Tensor,
                )
            }
            "unsqueeze" => {
                let dim = lit(&args[0], "dim")?;
                self.one(
                    block,
                    Op::View(ViewKind::Unsqueeze { dim }),
                    &[r],
                    Type::Tensor,
                )
            }
            "squeeze" => {
                let dim = lit(&args[0], "dim")?;
                self.one(
                    block,
                    Op::View(ViewKind::Squeeze { dim }),
                    &[r],
                    Type::Tensor,
                )
            }
            "view" => {
                let shape = literal_int_list(&args[0])
                    .ok_or_else(|| FrontendError::at(0, "view needs a literal shape"))?;
                self.one(
                    block,
                    Op::View(ViewKind::ViewShape { shape }),
                    &[r],
                    Type::Tensor,
                )
            }
            "expand" => {
                let shape = literal_int_list(&args[0])
                    .ok_or_else(|| FrontendError::at(0, "expand needs a literal shape"))?;
                self.one(
                    block,
                    Op::View(ViewKind::Expand { shape }),
                    &[r],
                    Type::Tensor,
                )
            }
            "reshape" => {
                let shape = literal_int_list(&args[0])
                    .ok_or_else(|| FrontendError::at(0, "reshape needs a literal shape"))?;
                self.one(block, Op::Reshape { shape }, &[r], Type::Tensor)
            }
            // ------------------------------------------------ in-place ops
            "copy_" => {
                let s = self.expr(&args[0], block, env)?;
                self.g.append(
                    block,
                    Op::Mutate(MutateKind::Copy),
                    &[r, s],
                    &[Type::Tensor],
                );
                r
            }
            "fill_" => {
                let v = self.expr(&args[0], block, env)?;
                let f = self.coerce_float(block, v, 0)?;
                self.g.append(
                    block,
                    Op::Mutate(MutateKind::Fill),
                    &[r, f],
                    &[Type::Tensor],
                );
                r
            }
            "add_" | "sub_" | "mul_" | "div_" => {
                let s = self.expr(&args[0], block, env)?;
                if self.ty(s) == Type::Tensor {
                    let kind = match name {
                        "add_" => MutateKind::Add,
                        "sub_" => MutateKind::Sub,
                        "mul_" => MutateKind::Mul,
                        _ => MutateKind::Div,
                    };
                    self.g
                        .append(block, Op::Mutate(kind), &[r, s], &[Type::Tensor]);
                } else {
                    let aug = match name {
                        "add_" => AugOp::Add,
                        "sub_" => AugOp::Sub,
                        "mul_" => AugOp::Mul,
                        _ => AugOp::Div,
                    };
                    self.mutate_binary(r, aug, &args[0], block, env, 0)?;
                }
                r
            }
            "relu_" | "sigmoid_" | "tanh_" | "exp_" | "neg_" => {
                let kind = match name {
                    "relu_" => MutateKind::Relu,
                    "sigmoid_" => MutateKind::Sigmoid,
                    "tanh_" => MutateKind::Tanh,
                    "exp_" => MutateKind::Exp,
                    _ => MutateKind::Neg,
                };
                self.g
                    .append(block, Op::Mutate(kind), &[r], &[Type::Tensor]);
                r
            }
            "clamp_" => {
                let lo = self.expr(&args[0], block, env)?;
                let hi = self.expr(&args[1], block, env)?;
                let lo = self.coerce_float(block, lo, 0)?;
                let hi = self.coerce_float(block, hi, 0)?;
                self.g.append(
                    block,
                    Op::Mutate(MutateKind::Clamp),
                    &[r, lo, hi],
                    &[Type::Tensor],
                );
                r
            }
            other => return err(0, format!("unknown method `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    #[test]
    fn lowers_figure4() {
        let g = compile(
            "def f(b0: Tensor, n: int):
                 b = b0.clone()
                 for i in range(n):
                     b[i] = b[i] + 1.0
                 return b
        ",
        )
        .unwrap();
        let text = g.to_string();
        assert!(text.contains("prim::Loop"), "{text}");
        assert!(text.contains("aten::select"), "{text}");
        assert!(text.contains("aten::copy_"), "{text}");
        assert!(g.verify().is_ok());
    }

    #[test]
    fn nodes_carry_source_spans() {
        let g = compile(
            "def f(b0: Tensor, n: int):
                 b = b0.clone()
                 for i in range(n):
                     b[i] = b[i] + 1.0
                 return b
        ",
        )
        .unwrap();
        assert!(g.span_count() > 0);
        // The mutation was written on line 4 of the source.
        let m = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op.is_mutation())
            .unwrap();
        assert_eq!(g.node_span(m).map(|s| s.line), Some(4));
    }

    #[test]
    fn scalar_ssa_through_if() {
        let g = compile(
            "def f(x: Tensor, c: bool):
                 y = x.relu()
                 if c:
                     y = y.sigmoid()
                 else:
                     y = y.tanh()
                 return y
        ",
        )
        .unwrap();
        let text = g.to_string();
        assert!(text.contains("prim::If"), "{text}");
        // Both branches return their version of y.
        let iff = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::If)
            .unwrap();
        assert_eq!(g.node(iff).outputs.len(), 1);
    }

    #[test]
    fn scalar_ssa_through_loop() {
        let g = compile(
            "def f(h: Tensor, n: int):
                 acc = 0
                 for i in range(n):
                     h = h.tanh()
                     acc = acc + i
                 return h
        ",
        )
        .unwrap();
        let lp = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::Loop)
            .unwrap();
        // Two carried values: h (tensor) and acc (int).
        assert_eq!(g.node(lp).outputs.len(), 2);
    }

    #[test]
    fn tensor_augassign_does_not_rebind() {
        let g = compile(
            "def f(x: Tensor, n: int):
                 b = x.clone()
                 for i in range(n):
                     b += 1.0
                 return b
        ",
        )
        .unwrap();
        let lp = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::Loop)
            .unwrap();
        // In-place add mutates storage: nothing is carried.
        assert_eq!(g.node(lp).outputs.len(), 0);
        assert!(g.to_string().contains("aten::add_scalar_"));
    }

    #[test]
    fn multidim_subscript_mix() {
        let g = compile(
            "def f(a: Tensor):
                 v = a[:, 0]
                 w = a[1:3, :]
                 a[0, 1:2] = v[0:1]
                 return w
        ",
        )
        .unwrap();
        let text = g.to_string();
        assert!(text.contains("aten::select[dim=1]"), "{text}");
        assert!(text.contains("aten::slice[dim=0]"), "{text}");
    }

    #[test]
    fn comparisons_and_where() {
        let g = compile(
            "def f(x: Tensor):
                 mask = x > 0.5
                 y = where(mask, x, zeros_like(x))
                 return y
        ",
        )
        .unwrap();
        let text = g.to_string();
        assert!(text.contains("aten::gt"), "{text}");
        assert!(text.contains("aten::where"), "{text}");
        assert!(text.contains("aten::full_like"), "{text}");
    }

    #[test]
    fn rejects_misplaced_return_and_unknowns() {
        assert!(compile(
            "def f(x: Tensor, c: bool):
                 if c:
                     return x
                 else:
                     return x
                 return x
        "
        )
        .is_err());
        assert!(compile("def f(x: Tensor):\n    y = frobnicate(x)\n    return y\n").is_err());
        assert!(compile("def f(x: Tensor):\n    y = x.frobnicate()\n    return y\n").is_err());
        assert!(compile("def f(x: Tensor):\n    y = x.relu()\n").is_err());
    }

    #[test]
    fn branch_type_mismatch_is_rejected() {
        assert!(compile(
            "def f(x: Tensor, c: bool):
                 y = 1
                 if c:
                     y = x.relu()
                 else:
                     y = 2
                 return y
        "
        )
        .is_err());
    }

    #[test]
    fn while_loop_lowers_to_conditional_loop() {
        let g = compile(
            "def f(x: Tensor, n: int):
                 h = x.clone()
                 k = 0
                 while k < n:
                     h = h.tanh()
                     k += 1
                 return h
        ",
        )
        .unwrap();
        let lp = g
            .nodes_recursive(g.top())
            .into_iter()
            .find(|&n| g.node(n).op == Op::Loop)
            .unwrap();
        // Carries h and k; condition recomputed in the body.
        assert_eq!(g.node(lp).outputs.len(), 2);
        assert!(g.verify().is_ok(), "{:?}\n{g}", g.verify());
        let body = g.node(lp).blocks[0];
        let cond_ret = g.block(body).returns[0];
        assert_eq!(g.value(cond_ret).ty, Type::Bool);
    }

    #[test]
    fn while_condition_must_be_bool() {
        assert!(compile(
            "def f(x: Tensor):
                 while x:
                     x = x.relu()
                 return x
        "
        )
        .is_err());
    }

    #[test]
    fn scalar_arith_and_methods() {
        let g = compile(
            "def f(x: Tensor, n: int):
                 m = x.size(0)
                 k = (m + n) * 2 - 1
                 l = k // 2 % 3
                 s = x.sum(0).item()
                 t = s * 2.0 + float(l)
                 y = x * t
                 return y
        ",
        )
        .unwrap();
        let text = g.to_string();
        assert!(text.contains("aten::size"), "{text}");
        assert!(text.contains("aten::item_float"), "{text}");
        assert!(text.contains("aten::int_to_float"), "{text}");
    }
}
