//! `tssa-serve-bin`: the TensorSSA inference server.
//!
//! Boots a [`tssa_serve::Service`], puts the [`tssa_net::Gateway`] in
//! front of it, starts the [`tssa_net::Autoscaler`], and runs until
//! SIGTERM/SIGINT — then drains: stop accepting, finish in-flight
//! requests, join every thread, exit 0.
//!
//! ```text
//! tssa-serve-bin [--addr HOST:PORT] [--workers N]
//!                [--min-workers N] [--max-workers N] [--tick-ms N]
//!                [--high-water-us N] [--low-water-us N]
//!                [--max-connections N] [--spans PATH] [--cache-dir PATH]
//!                [--example-batch N]
//! ```
//!
//! The default model (`default`) is an in-place sigmoid update over a
//! `[2, 4]` f32 tensor — the paper's running example — so the server is
//! curl-able out of the box; see EXPERIMENTS.md for a walkthrough.
//! `--spans PATH` streams NDJSON spans to a size-rotated file whose
//! rotation counter shows up on `/metrics`. `--cache-dir PATH` persists
//! compiled plans across restarts: a rebooted server loads its models from
//! disk instead of recompiling (watch
//! `tssa_plan_cache_disk_hits_total` on `/metrics`).

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tssa_backend::RtValue;
use tssa_net::{AutoscaleConfig, Autoscaler, Gateway, GatewayConfig};
use tssa_obs::RotatingFile;
use tssa_serve::{
    BatchSpec, PipelineKind, PlanStore, Profiler, Sampler, ServeConfig, Service, StreamSink,
    TraceSink, Tracer,
};
use tssa_tensor::Tensor;

const USAGE: &str = "usage: tssa-serve-bin [options]

  --addr HOST:PORT      bind address (default 127.0.0.1:0 — ephemeral port)
  --workers N           initial worker pool size (default 2)
  --min-workers N       autoscaler floor (default 1)
  --max-workers N       autoscaler ceiling (default 8)
  --tick-ms N           autoscaler tick period (default 100)
  --high-water-us N     grow when window p99 queue wait exceeds this (default 2000)
  --low-water-us N      shrink when window p99 queue wait stays below this (default 200)
  --max-connections N   concurrent connection cap (default 128)
  --spans PATH          stream NDJSON spans to PATH, rotating at 4 MiB
  --cache-dir PATH      persist compiled plans under PATH (warm restarts)
  --example-batch N     batch size of the default model's example (default 2);
                        the compiled plan is shape-class cached, so any batch
                        size serves regardless of this value
  --profile-rate R      fraction of batches the op-level execution profiler
                        records (default 0.1; 1 = every batch, 0 = disabled).
                        Snapshot via GET /debug/profile
";

const DEFAULT_SOURCE: &str =
    "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";

/// SIGTERM/SIGINT land here: flip a flag the main thread polls. Raw
/// `signal(2)` via FFI — the only libc surface this binary needs, so no
/// dependency is taken for it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

struct Args {
    addr: String,
    workers: usize,
    min_workers: usize,
    max_workers: usize,
    tick_ms: u64,
    high_water_us: u64,
    low_water_us: u64,
    max_connections: usize,
    spans: Option<String>,
    cache_dir: Option<String>,
    example_batch: usize,
    profile_rate: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        min_workers: 1,
        max_workers: 8,
        tick_ms: 100,
        high_water_us: 2_000,
        low_water_us: 200,
        max_connections: 128,
        spans: None,
        cache_dir: None,
        example_batch: 2,
        profile_rate: 0.1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = argv.iter();
    while let Some(flag) = iter.next() {
        let mut take = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let parse = |v: String, flag: &str| {
            v.parse::<u64>()
                .map_err(|_| format!("{flag} needs an integer, got `{v}`"))
        };
        match flag.as_str() {
            "--addr" => args.addr = take()?,
            "--workers" => args.workers = parse(take()?, flag)? as usize,
            "--min-workers" => args.min_workers = parse(take()?, flag)? as usize,
            "--max-workers" => args.max_workers = parse(take()?, flag)? as usize,
            "--tick-ms" => args.tick_ms = parse(take()?, flag)?,
            "--high-water-us" => args.high_water_us = parse(take()?, flag)?,
            "--low-water-us" => args.low_water_us = parse(take()?, flag)?,
            "--max-connections" => args.max_connections = parse(take()?, flag)? as usize,
            "--spans" => args.spans = Some(take()?),
            "--cache-dir" => args.cache_dir = Some(take()?),
            "--example-batch" => args.example_batch = parse(take()?, flag)? as usize,
            "--profile-rate" => {
                let v = take()?;
                args.profile_rate = v
                    .parse::<f64>()
                    .map_err(|_| format!("--profile-rate needs a number, got `{v}`"))?;
                if !(0.0..=1.0).contains(&args.profile_rate) {
                    return Err("--profile-rate must be within [0, 1]".into());
                }
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    if args.min_workers == 0 || args.max_workers < args.min_workers {
        return Err("worker bounds must satisfy 1 <= min <= max".into());
    }
    if args.example_batch == 0 {
        return Err("--example-batch must be at least 1".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("tssa-serve-bin: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    install_signal_handlers();

    let mut config = ServeConfig::default().with_workers(args.workers);
    // Optional span streaming to a size-rotated NDJSON file.
    let sink = match &args.spans {
        Some(path) => {
            let file = RotatingFile::create(path, 4 * 1024 * 1024, 4)
                .map_err(|e| format!("{path}: {e}"))?;
            let sink = Arc::new(StreamSink::new(file));
            config = config.with_tracer(Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>));
            Some(sink)
        }
        None => None,
    };
    // Persistent plan cache: a rebooted server with the same --cache-dir
    // warm-starts its models from disk instead of recompiling.
    let store = match &args.cache_dir {
        Some(dir) => {
            let store = PlanStore::open(dir).map_err(|e| format!("{dir}: {e}"))?;
            let store = Arc::new(store);
            config = config.with_plan_store(Some(Arc::clone(&store)));
            Some(store)
        }
        None => None,
    };
    // Always-available op-level profiler: seeded sampling keeps steady-state
    // overhead bounded; `GET /debug/profile` serves the merged table.
    if args.profile_rate > 0.0 {
        let profiler = if args.profile_rate >= 1.0 {
            Profiler::new()
        } else {
            Profiler::sampled(Sampler::new(42, args.profile_rate))
        };
        config = config.with_profiler(Some(profiler));
    }
    let service = Arc::new(Service::new(config));

    // The out-of-the-box model: the paper's running example. The batch dim
    // is polymorphic — with a --cache-dir, a reboot at a different
    // --example-batch still warm-starts off the class entry on disk.
    let example = vec![RtValue::Tensor(Tensor::ones(&[args.example_batch, 4]))];
    let model = service
        .loader(DEFAULT_SOURCE)
        .named("default")
        .pipeline(PipelineKind::TensorSsa)
        .example(&example)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .map_err(|e| format!("load default model: {e}"))?;

    let gateway = Gateway::bind(
        GatewayConfig {
            addr: args.addr.clone(),
            max_connections: args.max_connections,
            ..GatewayConfig::default()
        },
        Arc::clone(&service),
    )
    .map_err(|e| format!("bind {}: {e}", args.addr))?;
    gateway.register_model("default", model);
    if let Some(sink) = &sink {
        let sink = Arc::clone(sink);
        gateway.on_metrics(move |registry| {
            registry.set_counter(
                "tssa_obs_spans_written_total",
                "Spans written by the streaming trace sink",
                &[],
                sink.written(),
            );
            registry.set_counter(
                "tssa_obs_spans_dropped_total",
                "Spans dropped by the trace sink (write errors / backpressure)",
                &[],
                sink.dropped(),
            );
            registry.set_counter(
                "tssa_obs_sink_rotations_total",
                "Size-triggered rotations of the streaming sink's output file",
                &[],
                sink.rotations(),
            );
        });
    }

    let autoscaler = Autoscaler::spawn(
        Arc::clone(&service),
        AutoscaleConfig {
            min_workers: args.min_workers,
            max_workers: args.max_workers,
            tick: Duration::from_millis(args.tick_ms.max(1)),
            high_water_us: args.high_water_us,
            low_water_us: args.low_water_us,
            ..AutoscaleConfig::default()
        },
    );

    // The parseable boot line: CI and scripts read the ephemeral port from
    // here.
    println!("tssa-serve-bin listening on {}", gateway.local_addr());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("tssa-serve-bin: signal received, draining");

    // Drain order: edge first (stop accepting, finish in-flight HTTP),
    // then the control loop, then the service itself (workers join after
    // every queued request reaches a terminal state).
    gateway.shutdown();
    autoscaler.stop();
    let report = match Arc::try_unwrap(service) {
        Ok(service) => service.shutdown(),
        Err(_) => return Err("service still shared at shutdown".into()),
    };
    if let Some(sink) = &sink {
        let _ = sink.flush();
    }
    // Make sure every queued plan write has reached disk before exit: the
    // next boot's warm start depends on it.
    if let Some(store) = &store {
        store.flush();
    }
    eprintln!(
        "tssa-serve-bin: drained — {} submitted, {} completed, {} workers at exit",
        report.metrics.submitted,
        report.metrics.completed,
        report.per_worker.len()
    );
    Ok(())
}
