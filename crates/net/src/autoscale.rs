//! Registry-driven worker autoscaling.
//!
//! The autoscaler closes a feedback loop that already half-exists in the
//! stack: the dispatcher records every request's admission-to-dispatch
//! wait into the `tssa_queue_wait_us` histogram; the pool can now
//! [`grow`](tssa_serve::Service::grow) and
//! [`shrink`](tssa_serve::Service::shrink) safely. The autoscaler reads
//! the *live* histogram — not a snapshot export — by diffing its
//! cumulative buckets each tick, computes the p99 queue wait over just
//! that window, and steps the pool between `min_workers` and
//! `max_workers`.
//!
//! Two dampers keep the loop from flapping:
//!
//! - **Hysteresis**: scaling needs `high_ticks` consecutive ticks over the
//!   high watermark (or `low_ticks` under the low one) — a single noisy
//!   window moves nothing. The watermarks themselves are split
//!   (`high_water_us` > `low_water_us`) so the system is not chasing a
//!   single set point.
//! - **Cooldown**: after any scaling action the controller holds for
//!   `cooldown_ticks`, long enough for the previous action's effect to
//!   show up in the queue-wait signal it is reacting to.
//!
//! The decision logic lives in the pure [`ScaleController`] (unit-testable
//! without threads or clocks); [`Autoscaler`] is the thin thread that
//! feeds it real histogram windows on a timer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use tssa_serve::Service;

/// Autoscaling policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct AutoscaleConfig {
    /// Never shrink below this many workers.
    pub min_workers: usize,
    /// Never grow above this many workers.
    pub max_workers: usize,
    /// Window p99 queue wait (µs) above which the pool wants to grow.
    pub high_water_us: u64,
    /// Window p99 queue wait (µs) below which the pool wants to shrink.
    pub low_water_us: u64,
    /// Consecutive over-watermark ticks required before growing.
    pub high_ticks: u32,
    /// Consecutive under-watermark ticks required before shrinking.
    pub low_ticks: u32,
    /// Ticks to hold after any scaling action.
    pub cooldown_ticks: u32,
    /// Tick period.
    pub tick: Duration,
}

impl Default for AutoscaleConfig {
    fn default() -> AutoscaleConfig {
        AutoscaleConfig {
            min_workers: 1,
            max_workers: 8,
            high_water_us: 2_000,
            low_water_us: 200,
            high_ticks: 2,
            low_ticks: 10,
            cooldown_ticks: 5,
            tick: Duration::from_millis(100),
        }
    }
}

/// What the controller wants done after a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add one worker.
    Grow,
    /// Retire one worker.
    Shrink,
    /// Do nothing this tick.
    Hold,
}

/// The pure scaling policy: feed it one histogram window per tick.
#[derive(Debug)]
pub struct ScaleController {
    config: AutoscaleConfig,
    /// Cumulative buckets at the previous tick, for windowed deltas.
    prev: Vec<(u64, u64)>,
    high_streak: u32,
    low_streak: u32,
    cooldown: u32,
    /// The last window's p99 (µs), for observability.
    window_p99_us: u64,
}

impl ScaleController {
    /// A controller with no history (first window counts from zero).
    pub fn new(config: AutoscaleConfig) -> ScaleController {
        ScaleController {
            config,
            prev: Vec::new(),
            high_streak: 0,
            low_streak: 0,
            cooldown: 0,
            window_p99_us: 0,
        }
    }

    /// The p99 queue wait of the most recent window (µs). Zero when the
    /// window was empty.
    pub fn window_p99_us(&self) -> u64 {
        self.window_p99_us
    }

    /// Observe this tick's cumulative histogram buckets (as returned by
    /// [`tssa_obs::HistogramMetric::cumulative_buckets`]) and the current
    /// active worker count; decide.
    pub fn observe(&mut self, buckets: &[(u64, u64)], active: usize) -> ScaleDecision {
        self.window_p99_us = window_p99(&self.prev, buckets);
        self.prev = buckets.to_vec();
        if self.cooldown > 0 {
            self.cooldown -= 1;
            // Streaks do not accumulate during cooldown: the signal still
            // reflects the pre-action pool.
            self.high_streak = 0;
            self.low_streak = 0;
            return ScaleDecision::Hold;
        }
        if self.window_p99_us > self.config.high_water_us {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if self.window_p99_us < self.config.low_water_us {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            // Between the watermarks: the dead band. Hold position.
            self.high_streak = 0;
            self.low_streak = 0;
        }
        if self.high_streak >= self.config.high_ticks && active < self.config.max_workers {
            self.high_streak = 0;
            self.cooldown = self.config.cooldown_ticks;
            return ScaleDecision::Grow;
        }
        if self.low_streak >= self.config.low_ticks && active > self.config.min_workers {
            self.low_streak = 0;
            self.cooldown = self.config.cooldown_ticks;
            return ScaleDecision::Shrink;
        }
        ScaleDecision::Hold
    }
}

/// The p99 of the histogram window between two cumulative snapshots.
/// An empty window (no new samples) reads as 0 — idle.
fn window_p99(prev: &[(u64, u64)], now: &[(u64, u64)]) -> u64 {
    let prev_at = |bound: u64| -> u64 {
        prev.iter()
            .find(|(b, _)| *b == bound)
            .map_or(0, |(_, c)| *c)
    };
    // Per-bucket window counts (cumulative-to-cumulative difference of
    // cumulative counts is itself cumulative; diff against prev first).
    let window: Vec<(u64, u64)> = now
        .iter()
        .map(|(bound, cum)| (*bound, cum.saturating_sub(prev_at(*bound))))
        .collect();
    let total = window.last().map_or(0, |(_, c)| *c);
    if total == 0 {
        return 0;
    }
    let rank = ((total as f64) * 0.99).ceil() as u64;
    for (bound, cum) in &window {
        if *cum >= rank {
            return *bound;
        }
    }
    window.last().map_or(0, |(b, _)| *b)
}

/// The autoscaler thread: drives a [`ScaleController`] off the service's
/// live `tssa_queue_wait_us` histogram and applies its decisions.
pub struct Autoscaler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Autoscaler {
    /// Start autoscaling `service` under `config`. The service's pool
    /// should start within `[min_workers, max_workers]`; the autoscaler
    /// publishes `tssa_autoscaler_*` series into the service's registry.
    pub fn spawn(service: Arc<Service>, config: AutoscaleConfig) -> Autoscaler {
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tssa-autoscaler".into())
            .spawn(move || run(&service, config, &thread_stop))
            .expect("spawn autoscaler thread");
        Autoscaler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stop the loop and join the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Autoscaler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn run(service: &Arc<Service>, config: AutoscaleConfig, stop: &AtomicBool) {
    let registry = service.registry();
    // The same shared handle the dispatcher records into: reading it here
    // observes live traffic, not a point-in-time export.
    let queue_wait = registry.histogram(
        "tssa_queue_wait_us",
        "Admission-to-dispatch queue wait (power-of-two buckets, µs)",
        &[],
    );
    let workers_gauge = registry.gauge(
        "tssa_autoscaler_workers",
        "Active workers as seen by the autoscaler",
        &[],
    );
    let p99_gauge = registry.gauge(
        "tssa_autoscaler_window_p99_us",
        "p99 queue wait over the autoscaler's last tick window (µs)",
        &[],
    );
    let ups = registry.counter(
        "tssa_autoscaler_scale_ups_total",
        "Workers added by the autoscaler",
        &[],
    );
    let downs = registry.counter(
        "tssa_autoscaler_scale_downs_total",
        "Workers retired by the autoscaler",
        &[],
    );
    let mut controller = ScaleController::new(config);
    workers_gauge.set(service.worker_count() as f64);
    while !stop.load(Ordering::SeqCst) {
        // Sleep in small slices so stop() returns promptly even with slow
        // ticks.
        let mut slept = Duration::ZERO;
        while slept < config.tick && !stop.load(Ordering::SeqCst) {
            let slice = (config.tick - slept).min(Duration::from_millis(20));
            std::thread::sleep(slice);
            slept += slice;
        }
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let active = service.worker_count();
        match controller.observe(&queue_wait.cumulative_buckets(), active) {
            ScaleDecision::Grow => {
                service.grow(1);
                ups.inc();
            }
            ScaleDecision::Shrink => {
                service.shrink(1);
                downs.inc();
            }
            ScaleDecision::Hold => {}
        }
        p99_gauge.set(controller.window_p99_us() as f64);
        workers_gauge.set(service.worker_count() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig {
            min_workers: 1,
            max_workers: 4,
            high_water_us: 1_000,
            low_water_us: 100,
            high_ticks: 2,
            low_ticks: 3,
            cooldown_ticks: 2,
            tick: Duration::from_millis(1),
        }
    }

    /// Cumulative buckets with `n` samples all at `bound` µs.
    fn all_at(bound: u64, n: u64) -> Vec<(u64, u64)> {
        vec![(bound / 2, 0), (bound, n)]
    }

    #[test]
    fn grows_only_after_consecutive_high_ticks() {
        let mut c = ScaleController::new(cfg());
        assert_eq!(c.observe(&all_at(4096, 10), 1), ScaleDecision::Hold);
        assert_eq!(c.window_p99_us(), 4096);
        // One calm window resets the streak.
        assert_eq!(c.observe(&all_at(4096, 10), 1), ScaleDecision::Hold);
        assert_eq!(c.window_p99_us(), 0, "no new samples → idle window");
        assert_eq!(c.observe(&all_at(4096, 20), 1), ScaleDecision::Hold);
        assert_eq!(c.observe(&all_at(4096, 30), 1), ScaleDecision::Grow);
    }

    #[test]
    fn cooldown_blocks_back_to_back_actions() {
        let mut c = ScaleController::new(cfg());
        let mut n = 10;
        let mut grow = || {
            n += 10;
            c.observe(&all_at(4096, n), 1)
        };
        assert_eq!(grow(), ScaleDecision::Hold);
        assert_eq!(grow(), ScaleDecision::Grow);
        // Cooldown: two held ticks even though the signal stays hot.
        assert_eq!(grow(), ScaleDecision::Hold);
        assert_eq!(grow(), ScaleDecision::Hold);
        // Then the streak must rebuild from zero.
        assert_eq!(grow(), ScaleDecision::Hold);
        assert_eq!(grow(), ScaleDecision::Grow);
    }

    #[test]
    fn shrinks_after_sustained_idle_but_never_below_min() {
        let mut c = ScaleController::new(cfg());
        let busy = all_at(4096, 50);
        c.observe(&busy, 2);
        // Idle windows: same cumulative counts, no new samples.
        assert_eq!(c.observe(&busy, 2), ScaleDecision::Hold);
        assert_eq!(c.observe(&busy, 2), ScaleDecision::Hold);
        assert_eq!(c.observe(&busy, 2), ScaleDecision::Shrink);
        // Cooldown, then rebuild the idle streak.
        assert_eq!(c.observe(&busy, 1), ScaleDecision::Hold);
        assert_eq!(c.observe(&busy, 1), ScaleDecision::Hold);
        for _ in 0..10 {
            // At min_workers the controller never shrinks again.
            assert_eq!(c.observe(&busy, 1), ScaleDecision::Hold);
        }
    }

    #[test]
    fn dead_band_between_watermarks_holds_position() {
        let mut c = ScaleController::new(cfg());
        let mut n = 0;
        for _ in 0..20 {
            n += 5;
            // 512µs: above low (100), below high (1000).
            assert_eq!(c.observe(&all_at(512, n), 2), ScaleDecision::Hold);
        }
    }

    #[test]
    fn never_grows_past_max_workers() {
        let mut c = ScaleController::new(cfg());
        let mut n = 0;
        for _ in 0..20 {
            n += 10;
            assert_eq!(c.observe(&all_at(8192, n), 4), ScaleDecision::Hold);
        }
    }

    #[test]
    fn window_p99_ranks_within_the_window_only() {
        // Previous totals: 100 fast samples. Window: 10 slow ones.
        let prev = vec![(64, 100), (8192, 100)];
        let now = vec![(64, 100), (8192, 110)];
        assert_eq!(window_p99(&prev, &now), 8192);
        // And with no history, the full histogram is the window.
        assert_eq!(window_p99(&[], &prev), 64);
    }
}
