//! The TCP gateway: accept loop, per-connection handlers, and routing.
//!
//! The edge is a thread-per-connection design on blocking `std::net`
//! sockets with a hard connection cap — the bounded-everything philosophy
//! of `tssa-serve` extended one layer out. Backpressure composes end to
//! end: a client pipelining requests on one connection is serialized by
//! its handler thread; the handler blocks on the ticket it submitted, so
//! at most `max_connections` requests are in flight at the edge; and the
//! service's own bounded admission sheds the rest as 429s. Nothing in the
//! path queues unboundedly.
//!
//! Routes:
//!
//! | route            | behaviour |
//! |------------------|-----------|
//! | `POST /v1/infer` | JSON body → [`Service::submit_with`]; `Timeout-Ms` header sets the deadline |
//! | `GET /metrics`   | consolidated Prometheus exposition, chunked at line boundaries |
//! | `GET /debug/profile` | op-level profiler snapshot — JSON by default, collapsed-stack (flamegraph) with `?format=collapsed`; 404 when the service has no profiler |
//! | `GET /healthz`   | liveness — 200 while the process accepts connections |
//! | `GET /readyz`    | readiness — 503 while degraded or shutting down |
//!
//! Shutdown is drain-first: [`Gateway::shutdown`] stops the accept loop,
//! lets every in-flight request complete, and joins all handler threads
//! before returning — the binary then drains the service itself.

use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use tssa_obs::MetricsRegistry;
use tssa_serve::{ModelHandle, Service};

use crate::http::{self, HttpError, HttpRequest, Limits};
use crate::wire;

/// Gateway tuning knobs.
#[derive(Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Hard cap on concurrently-served connections; excess connections are
    /// refused with a 503 and closed.
    pub max_connections: usize,
    /// Socket read timeout: how often an idle keep-alive handler wakes to
    /// poll the shutdown flag (also bounds how long shutdown waits).
    pub read_timeout: Duration,
    /// Request framing limits.
    pub limits: Limits,
    /// Deadline applied to infer requests that carry no `Timeout-Ms`
    /// header.
    pub default_deadline: Option<Duration>,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:0".into(),
            max_connections: 128,
            read_timeout: Duration::from_millis(100),
            limits: Limits::default(),
            default_deadline: None,
        }
    }
}

/// A callback run before each `/metrics` render to refresh registry
/// series owned by other subsystems (e.g. span-sink counters).
type MetricsRefresher = Box<dyn Fn(&MetricsRegistry) + Send>;

/// Everything a connection handler needs, shared by `Arc`.
struct Shared {
    service: Arc<Service>,
    models: Mutex<HashMap<String, ModelHandle>>,
    stopping: AtomicBool,
    active: AtomicUsize,
    config: GatewayConfig,
    refreshers: Mutex<Vec<MetricsRefresher>>,
}

impl Shared {
    fn registry(&self) -> &MetricsRegistry {
        self.service.registry()
    }

    fn count_request(&self, route: &str) {
        self.registry()
            .counter(
                "tssa_net_requests_total",
                "HTTP requests accepted by the gateway, by route",
                &[("route", route)],
            )
            .inc();
    }

    fn count_response(&self, status: u16) {
        self.registry()
            .counter(
                "tssa_net_responses_total",
                "HTTP responses sent by the gateway, by status code",
                &[("code", &status.to_string())],
            )
            .inc();
    }
}

/// The running gateway: owns the accept thread and all handler threads.
pub struct Gateway {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Gateway {
    /// Bind and start accepting.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(config: GatewayConfig, service: Arc<Service>) -> std::io::Result<Gateway> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            models: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            config,
            refreshers: Mutex::new(Vec::new()),
        });
        shared.registry().gauge(
            "tssa_net_connections",
            "Connections currently being served by the gateway",
            &[],
        );
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tssa-net-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &handlers))
                .expect("spawn accept thread")
        };
        Ok(Gateway {
            shared,
            local_addr,
            accept: Some(accept),
            handlers,
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Make `model` routable as `name` on `/v1/infer`. Re-registering a
    /// name swaps the model for subsequent requests.
    pub fn register_model(&self, name: &str, model: ModelHandle) {
        self.shared.models.lock().insert(name.to_string(), model);
    }

    /// Register a callback run before every `/metrics` render, for
    /// bridging counters owned by other subsystems into the registry.
    pub fn on_metrics<F: Fn(&MetricsRegistry) + Send + 'static>(&self, f: F) {
        self.shared.refreshers.lock().push(Box::new(f));
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.shared.stopping.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handlers.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        // Connection cap: refuse beyond the limit with a 503 rather than
        // letting handler threads grow without bound.
        let active = shared.active.fetch_add(1, Ordering::SeqCst) + 1;
        if active > shared.config.max_connections {
            shared.active.fetch_sub(1, Ordering::SeqCst);
            shared.count_response(503);
            let mut stream = stream;
            let _ = http::write_response(
                &mut stream,
                503,
                "application/json",
                wire::encode_error("overloaded", "connection limit reached").as_bytes(),
                false,
            );
            continue;
        }
        shared.registry().set_gauge(
            "tssa_net_connections",
            "Connections currently being served by the gateway",
            &[],
            active as f64,
        );
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("tssa-net-conn".into())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                let now = conn_shared.active.fetch_sub(1, Ordering::SeqCst) - 1;
                conn_shared.registry().set_gauge(
                    "tssa_net_connections",
                    "Connections currently being served by the gateway",
                    &[],
                    now as f64,
                );
            })
            .expect("spawn connection thread");
        let mut guard = handlers.lock();
        // Reap finished handlers opportunistically so a long-lived gateway
        // does not accumulate joinable-but-dead threads.
        guard.retain(|h| !h.is_finished());
        guard.push(handle);
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match http::read_request(&mut reader, &shared.config.limits) {
            Ok(req) => req,
            // Idle keep-alive: poll the shutdown flag and wait on.
            Err(HttpError::Idle) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(HttpError::Closed) => break,
            Err(HttpError::TooLarge(what)) => {
                let status = if what == "body" { 413 } else { 431 };
                shared.count_response(status);
                let _ = http::write_response(
                    &mut writer,
                    status,
                    "application/json",
                    wire::encode_error("too_large", &format!("{what} exceeds limit")).as_bytes(),
                    false,
                );
                break;
            }
            Err(HttpError::Malformed(m)) => {
                shared.count_response(400);
                let _ = http::write_response(
                    &mut writer,
                    400,
                    "application/json",
                    wire::encode_error("malformed", &m).as_bytes(),
                    false,
                );
                break;
            }
            Err(HttpError::Io(_)) => break,
        };
        if !route(&request, &mut writer, shared) {
            break;
        }
        // Drain-first shutdown: the request we already read was served
        // (with `Connection: close` if shutdown began meanwhile); stop
        // reusing the connection now.
        if !request.keep_alive() || shared.stopping.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// Dispatch one request; returns `false` when the connection must close
/// (write failure).
fn route(request: &HttpRequest, writer: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    // Evaluated at write time, after any blocking work: a shutdown that
    // begins while a request executes still closes its connection.
    let keep_alive = || request.keep_alive() && !shared.stopping.load(Ordering::SeqCst);
    let respond = |writer: &mut TcpStream, status: u16, body: &[u8]| -> bool {
        shared.count_response(status);
        http::write_response(writer, status, "application/json", body, keep_alive()).is_ok()
    };
    // Routes may carry a query string (`/debug/profile?format=collapsed`);
    // match on the bare path.
    let (path, query) = request
        .path
        .split_once('?')
        .unwrap_or((request.path.as_str(), ""));
    match (request.method.as_str(), path) {
        ("POST", "/v1/infer") => {
            shared.count_request("infer");
            infer(request, writer, shared)
        }
        ("GET", "/metrics") => {
            shared.count_request("metrics");
            for refresh in shared.refreshers.lock().iter() {
                refresh(shared.registry());
            }
            let text = shared.service.prometheus();
            shared.count_response(200);
            http::write_chunked(
                writer,
                200,
                "text/plain; version=0.0.4",
                &text,
                4096,
                keep_alive(),
            )
            .is_ok()
        }
        ("GET", "/debug/profile") => {
            shared.count_request("profile");
            let Some(profiler) = shared.service.profiler() else {
                return respond(
                    writer,
                    404,
                    wire::encode_error(
                        "profiler_disabled",
                        "service was started without an execution profiler",
                    )
                    .as_bytes(),
                );
            };
            let snapshot = profiler.snapshot();
            // Bounded either way: entries beyond the cap are the cold tail.
            const MAX_ENTRIES: usize = 500;
            let collapsed = query.split('&').any(|kv| kv == "format=collapsed");
            let (text, content_type) = if collapsed {
                (snapshot.collapsed(MAX_ENTRIES), "text/plain")
            } else {
                (snapshot.json(MAX_ENTRIES), "application/json")
            };
            shared.count_response(200);
            http::write_chunked(writer, 200, content_type, &text, 4096, keep_alive()).is_ok()
        }
        ("GET", "/healthz") => {
            shared.count_request("healthz");
            respond(writer, 200, b"{\"ok\":true,\"status\":\"alive\"}")
        }
        ("GET", "/readyz") => {
            shared.count_request("readyz");
            if shared.stopping.load(Ordering::SeqCst) {
                respond(
                    writer,
                    503,
                    wire::encode_error("shutting_down", "gateway is draining").as_bytes(),
                )
            } else if shared.service.is_degraded() {
                respond(
                    writer,
                    503,
                    wire::encode_error("degraded", "service is in degraded mode").as_bytes(),
                )
            } else {
                respond(writer, 200, b"{\"ok\":true,\"status\":\"ready\"}")
            }
        }
        ("POST" | "GET", _) => {
            shared.count_request("other");
            respond(
                writer,
                404,
                wire::encode_error("not_found", &format!("no route for {}", request.path))
                    .as_bytes(),
            )
        }
        _ => {
            shared.count_request("other");
            respond(
                writer,
                405,
                wire::encode_error("method_not_allowed", &request.method).as_bytes(),
            )
        }
    }
}

fn infer(request: &HttpRequest, writer: &mut TcpStream, shared: &Arc<Shared>) -> bool {
    // Content negotiation: `application/x-tssa-tensor` selects the binary
    // tagged encoding for both directions; anything else is JSON.
    let binary = wire::is_binary_content_type(request.header("content-type"));
    let content_type = if binary {
        wire::BINARY_CONTENT_TYPE
    } else {
        "application/json"
    };
    let respond = |writer: &mut TcpStream, status: u16, body: &[u8]| -> bool {
        let keep_alive = request.keep_alive() && !shared.stopping.load(Ordering::SeqCst);
        shared.count_response(status);
        http::write_response(writer, status, content_type, body, keep_alive).is_ok()
    };
    let error_body = |kind: &str, message: &str| -> Vec<u8> {
        if binary {
            wire::encode_error_binary(kind, message)
        } else {
            wire::encode_error(kind, message).into_bytes()
        }
    };
    let parsed = if binary {
        wire::parse_infer_binary(&request.body)
    } else {
        match std::str::from_utf8(&request.body) {
            Ok(b) => wire::parse_infer(b),
            Err(_) => Err("body is not UTF-8".to_string()),
        }
    };
    let parsed = match parsed {
        Ok(p) => p,
        Err(e) => return respond(writer, 400, &error_body("invalid_request", &e)),
    };
    // Deadline: the `Timeout-Ms` header wins; otherwise the configured
    // default (possibly none — wait without bound).
    let deadline = match request.header("timeout-ms") {
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) => Some(Duration::from_millis(ms)),
            Err(_) => {
                return respond(
                    writer,
                    400,
                    &error_body(
                        "invalid_request",
                        &format!("Timeout-Ms header `{v}` is not an integer"),
                    ),
                )
            }
        },
        None => shared.config.default_deadline,
    };
    let model = match shared.models.lock().get(&parsed.model) {
        Some(m) => m.clone(),
        None => {
            return respond(
                writer,
                404,
                &error_body("unknown_model", &format!("no model `{}`", parsed.model)),
            )
        }
    };
    let outcome = shared
        .service
        .submit_with(&model, parsed.inputs, deadline)
        .and_then(|ticket| ticket.wait());
    match outcome {
        Ok(response) => {
            let encoded = if binary {
                wire::encode_response_binary(&response)
            } else {
                wire::encode_response(&response).map(String::into_bytes)
            };
            match encoded {
                Ok(body) => respond(writer, 200, &body),
                Err(e) => respond(writer, 500, &error_body("encode", &e)),
            }
        }
        Err(e) => {
            let (status, kind) = wire::error_parts(&e);
            respond(writer, status, &error_body(kind, &e.to_string()))
        }
    }
}

/// Client-side helper: send one request over `stream` and read the
/// response. Used by tests and embedded smoke checks; not a general HTTP
/// client.
///
/// # Errors
///
/// [`HttpError::Io`] on connection failures, [`HttpError::Malformed`] on
/// unparseable responses.
pub fn roundtrip(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> Result<http::HttpResponse, HttpError> {
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: gateway\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes()).map_err(HttpError::Io)?;
    stream.write_all(body).map_err(HttpError::Io)?;
    stream.flush().map_err(HttpError::Io)?;
    let mut reader = BufReader::new(stream.try_clone().map_err(HttpError::Io)?);
    http::read_response(&mut reader)
}
