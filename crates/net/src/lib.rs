//! `tssa-net`: the network front-end for [`tssa_serve`].
//!
//! `tssa-serve` answers "many clients, many programs, one machine" for
//! in-process callers. This crate puts that service on a TCP port and
//! closes the remaining production loops, using nothing beyond `std::net`:
//!
//! 1. **HTTP edge** ([`http`], [`server`]) — a minimal HTTP/1.1
//!    implementation (request framing with hard size limits, keep-alive,
//!    chunked responses cut at line boundaries) under a thread-per-
//!    connection gateway with a bounded connection count. Backpressure
//!    composes: connection cap at the edge, bounded admission in the
//!    service, typed sheds all the way out (429/503/504 with JSON bodies).
//! 2. **Wire format** ([`wire`]) — JSON requests and responses over the
//!    existing `tssa-obs` JSON parser, with a stable machine-readable
//!    error `kind` per [`tssa_serve::ServeError`] variant.
//! 3. **Autoscaling** ([`autoscale`]) — a controller that reads the live
//!    `tssa_queue_wait_us` histogram from the shared
//!    [`MetricsRegistry`](tssa_obs::MetricsRegistry), computes windowed
//!    p99 queue wait by diffing cumulative buckets tick over tick, and
//!    grows or shrinks the service's worker pool between configured
//!    bounds with hysteresis and cooldown.
//!
//! The `tssa-serve-bin` binary wires all three together behind SIGTERM-
//! driven graceful drain; `GET /metrics` exposes the whole stack —
//! service, gateway, autoscaler — as one Prometheus exposition.

pub mod autoscale;
pub mod http;
pub mod server;
pub mod wire;

pub use autoscale::{AutoscaleConfig, Autoscaler, ScaleController, ScaleDecision};
pub use http::{HttpError, HttpRequest, HttpResponse, Limits};
pub use server::{roundtrip, Gateway, GatewayConfig};
pub use wire::{
    encode_error, encode_error_binary, encode_infer_request, encode_infer_request_binary,
    encode_response, encode_response_binary, error_parts, is_binary_content_type, parse_infer,
    parse_infer_binary, parse_response_binary, BinaryReply, InferRequest, BINARY_CONTENT_TYPE,
};
