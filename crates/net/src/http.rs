//! A minimal, dependency-free HTTP/1.1 implementation on `std::io`.
//!
//! This is deliberately not a general web server: it implements exactly the
//! subset the gateway speaks — request framing with hard size limits,
//! keep-alive connection reuse, fixed-length and chunked responses — and
//! nothing else. Every limit sheds with a typed [`HttpError`] that the
//! server maps to a 4xx status, never by closing the socket silently, so a
//! misbehaving client learns *why* it was refused.
//!
//! The reader distinguishes three ways a read can end without a request:
//!
//! - [`HttpError::Closed`] — the peer shut down cleanly between requests
//!   (the normal end of a keep-alive session);
//! - [`HttpError::Idle`] — the socket's read timeout expired before the
//!   *first* byte of a new request (the connection is fine; the handler
//!   uses this to poll its shutdown flag);
//! - [`HttpError::Io`] — the connection died mid-request.

use std::io::{self, BufRead, Write};

/// Hard limits on request framing. Exceeding any of them is a typed
/// refusal, not a hang or an unbounded allocation.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line (method + target + version).
    pub max_request_line: usize,
    /// Most header lines per request.
    pub max_headers: usize,
    /// Longest accepted single header line.
    pub max_header_line: usize,
    /// Largest accepted body.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_request_line: 8 * 1024,
            max_headers: 64,
            max_header_line: 8 * 1024,
            max_body: 4 * 1024 * 1024,
        }
    }
}

/// A parsed request: the framing the gateway routes on.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path and query, unparsed).
    pub path: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Header name/value pairs in arrival order; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should be reused after this request:
    /// HTTP/1.1 defaults to keep-alive, 1.0 to close, and an explicit
    /// `Connection` header overrides either way.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.http11,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Clean close between requests — the normal keep-alive ending.
    Closed,
    /// Read timeout with zero bytes of a new request consumed; the caller
    /// decides whether to keep waiting.
    Idle,
    /// A framing limit was exceeded; the payload names which.
    TooLarge(&'static str),
    /// Syntactically invalid framing.
    Malformed(String),
    /// The connection failed mid-request.
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Idle => write!(f, "idle timeout"),
            HttpError::TooLarge(what) => write!(f, "{what} exceeds limit"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Read one CRLF- (or LF-) terminated line, capped at `max` bytes. Returns
/// the line without its terminator. `consumed_any` reports whether any byte
/// of this request was already read (turns a timeout from `Idle` into
/// `Io`).
fn read_line<R: BufRead>(
    reader: &mut R,
    max: usize,
    what: &'static str,
    consumed_any: &mut bool,
) -> Result<String, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if is_timeout(&e) && !*consumed_any && line.is_empty() => {
                return Err(HttpError::Idle)
            }
            Err(e) => return Err(HttpError::Io(e)),
        };
        if buf.is_empty() {
            // EOF. At the very start of a request this is a clean close.
            if !*consumed_any && line.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::Malformed(format!("{what}: unexpected EOF")));
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                *consumed_any = true;
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                if line.len() > max {
                    return Err(HttpError::TooLarge(what));
                }
                return String::from_utf8(line)
                    .map_err(|_| HttpError::Malformed(format!("{what}: not UTF-8")));
            }
            None => {
                let n = buf.len();
                line.extend_from_slice(buf);
                reader.consume(n);
                *consumed_any = true;
                if line.len() > max {
                    return Err(HttpError::TooLarge(what));
                }
            }
        }
    }
}

/// Read and frame one request from `reader`, enforcing `limits`.
///
/// # Errors
///
/// See [`HttpError`]; notably [`HttpError::Idle`] when the socket's read
/// timeout fires before a request starts, and [`HttpError::Closed`] on a
/// clean peer close between requests.
pub fn read_request<R: BufRead>(reader: &mut R, limits: &Limits) -> Result<HttpRequest, HttpError> {
    let mut consumed = false;
    let request_line = read_line(
        reader,
        limits.max_request_line,
        "request line",
        &mut consumed,
    )?;
    let mut parts = request_line.split_ascii_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line `{request_line}`"
            )))
        }
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(HttpError::Malformed(format!("version `{other}`"))),
    };
    let mut headers = Vec::new();
    loop {
        if headers.len() > limits.max_headers {
            return Err(HttpError::TooLarge("header count"));
        }
        let line = read_line(reader, limits.max_header_line, "header line", &mut consumed)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("header `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("content-length `{v}`")))?,
        None => 0,
    };
    if content_length > limits.max_body {
        return Err(HttpError::TooLarge("body"));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    }
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        http11,
        headers,
        body,
    })
}

/// Canonical reason phrase for the statuses the gateway emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

/// Write a fixed-length response.
///
/// # Errors
///
/// Propagates write failures on the connection.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    w.write_all(body)?;
    w.flush()
}

/// Stream `text` as a chunked response, cutting chunks at line boundaries
/// (each chunk holds whole lines totalling at least `chunk_hint` bytes).
/// Line-aligned chunks keep a line-oriented payload — Prometheus
/// exposition, NDJSON — greppable even in the raw on-wire form.
///
/// # Errors
///
/// Propagates write failures on the connection.
pub fn write_chunked<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    text: &str,
    chunk_hint: usize,
    keep_alive: bool,
) -> io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        reason(status),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    let mut start = 0;
    while start < text.len() {
        // Grow the chunk line by line until it reaches the hint (or the
        // remainder runs out).
        let mut end = start;
        while end < text.len() && end - start < chunk_hint {
            end = match text[end..].find('\n') {
                Some(pos) => end + pos + 1,
                None => text.len(),
            };
        }
        let chunk = &text[start..end];
        write!(w, "{:x}\r\n", chunk.len())?;
        w.write_all(chunk.as_bytes())?;
        w.write_all(b"\r\n")?;
        start = end;
    }
    w.write_all(b"0\r\n\r\n")?;
    w.flush()
}

/// A parsed response (used by tests, the CI smoke client, and any embedded
/// caller that wants to talk to the gateway without an HTTP library).
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The decoded body (de-chunked when the response was chunked).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — client-side helper).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

/// Read one response, decoding `Content-Length` or chunked framing.
///
/// # Errors
///
/// [`HttpError::Malformed`] on framing violations, [`HttpError::Io`] on
/// connection failures.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<HttpResponse, HttpError> {
    let mut consumed = false;
    let limits = Limits::default();
    let status_line = read_line(
        reader,
        limits.max_request_line,
        "status line",
        &mut consumed,
    )?;
    let status = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| HttpError::Malformed(format!("status line `{status_line}`")))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, limits.max_header_line, "header line", &mut consumed)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(reader, 32, "chunk size", &mut consumed)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| HttpError::Malformed(format!("chunk size `{size_line}`")))?;
            if size == 0 {
                // Trailer-free: expect the final blank line.
                let _ = read_line(reader, limits.max_header_line, "trailer", &mut consumed)?;
                break;
            }
            let at = body.len();
            body.resize(at + size, 0);
            reader.read_exact(&mut body[at..]).map_err(HttpError::Io)?;
            let blank = read_line(reader, 8, "chunk terminator", &mut consumed)?;
            if !blank.is_empty() {
                return Err(HttpError::Malformed("chunk not CRLF-terminated".into()));
            }
        }
    } else {
        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        body.resize(len, 0);
        reader.read_exact(&mut body).map_err(HttpError::Io)?;
    }
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<HttpRequest, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()), &Limits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_headers() {
        let req = parse(
            "POST /v1/infer HTTP/1.1\r\nHost: x\r\nTimeout-Ms: 250\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer");
        assert!(req.http11);
        assert_eq!(req.header("timeout-ms"), Some("250"));
        assert_eq!(req.header("TIMEOUT-MS"), Some("250"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive(), "1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_header_overrides_version_default() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive(), "1.0 defaults to close");
    }

    #[test]
    fn malformed_framing_is_typed() {
        assert!(matches!(
            parse("HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: soon\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn limits_shed_with_typed_errors() {
        let limits = Limits {
            max_request_line: 16,
            max_headers: 2,
            max_header_line: 32,
            max_body: 8,
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64));
        assert!(matches!(
            read_request(&mut BufReader::new(long_line.as_bytes()), &limits),
            Err(HttpError::TooLarge("request line"))
        ));
        let many = "GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\nd: 4\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(many.as_bytes()), &limits),
            Err(HttpError::TooLarge("header count"))
        ));
        let big = "POST / HTTP/1.1\r\nContent-Length: 64\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(big.as_bytes()), &limits),
            Err(HttpError::TooLarge("body"))
        ));
    }

    #[test]
    fn clean_close_and_truncation_differ() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        assert!(matches!(parse("GET / HT"), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn fixed_response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let resp = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.text(), "{\"ok\":true}");
    }

    #[test]
    fn chunked_response_round_trips_and_cuts_at_line_boundaries() {
        let payload: String = (0..100).map(|i| format!("metric_{i} {i}\n")).collect();
        let mut wire = Vec::new();
        write_chunked(&mut wire, 200, "text/plain", &payload, 256, false).unwrap();
        // Every chunk the writer produced ends on a line boundary, so the
        // raw wire form never splits a metric line across chunks.
        let raw = String::from_utf8(wire.clone()).unwrap();
        let body_at = raw.find("\r\n\r\n").unwrap() + 4;
        let mut rest = &raw[body_at..];
        while !rest.starts_with("0\r\n") {
            let (size_str, after) = rest.split_once("\r\n").unwrap();
            let size = usize::from_str_radix(size_str, 16).unwrap();
            assert!(after.as_bytes()[size - 1] == b'\n', "chunk ends mid-line");
            rest = &after[size + 2..];
        }
        let resp = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.text(), payload);
    }

    #[test]
    fn empty_chunked_body_is_valid() {
        let mut wire = Vec::new();
        write_chunked(&mut wire, 200, "text/plain", "", 256, true).unwrap();
        let resp = read_response(&mut BufReader::new(wire.as_slice())).unwrap();
        assert_eq!(resp.body, b"");
    }
}
