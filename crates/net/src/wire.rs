//! The JSON wire format for `/v1/infer`.
//!
//! Requests name a registered model and carry its positional inputs:
//!
//! ```json
//! {"model": "default",
//!  "inputs": [{"tensor": {"dtype": "f32", "shape": [2, 4],
//!              "data": [1, 1, 1, 1, 1, 1, 1, 1]}},
//!             {"int": 3}]}
//! ```
//!
//! Responses mirror [`tssa_serve::Response`] — outputs in the same tagged
//! encoding plus the batch-coalescing count — and every error is a JSON
//! object with a stable machine-readable `kind` alongside the human
//! message, so clients can branch on overload vs. deadline vs. caller bug
//! without parsing prose:
//!
//! ```json
//! {"ok": true, "coalesced": 4, "outputs": [{"tensor": {...}}]}
//! {"ok": false, "kind": "queue_full", "error": "admission queue full (depth 64)"}
//! ```
//!
//! Parsing reuses the recursive-descent JSON parser from `tssa-obs`
//! ([`tssa_obs::json`]) — no new dependency for the edge.

use tssa_backend::RtValue;
use tssa_obs::json::{self, JsonValue};
use tssa_serve::ServeError;
use tssa_tensor::{DType, Tensor};

/// A decoded `/v1/infer` request body.
#[derive(Debug)]
pub struct InferRequest {
    /// The registered model name to run.
    pub model: String,
    /// Positional inputs in the model's argument order.
    pub inputs: Vec<RtValue>,
}

/// Decode a request body.
///
/// # Errors
///
/// A human-readable description of the first violation (surfaced to the
/// client as a 400).
pub fn parse_infer(body: &str) -> Result<InferRequest, String> {
    let value = json::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
    let model = value
        .get("model")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field `model`")?
        .to_string();
    let inputs = value
        .get("inputs")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field `inputs`")?;
    let inputs = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| parse_value(v).map_err(|e| format!("inputs[{i}]: {e}")))
        .collect::<Result<Vec<RtValue>, String>>()?;
    Ok(InferRequest { model, inputs })
}

fn parse_value(value: &JsonValue) -> Result<RtValue, String> {
    if let Some(t) = value.get("tensor") {
        return parse_tensor(t).map(RtValue::Tensor);
    }
    if let Some(v) = value.get("int") {
        let n = v.as_f64().ok_or("`int` is not a number")?;
        return Ok(RtValue::Int(n as i64));
    }
    if let Some(v) = value.get("float") {
        let n = v.as_f64().ok_or("`float` is not a number")?;
        return Ok(RtValue::Float(n));
    }
    if let Some(v) = value.get("bool") {
        return match v {
            JsonValue::Bool(b) => Ok(RtValue::Bool(*b)),
            _ => Err("`bool` is not a boolean".into()),
        };
    }
    Err("expected one of `tensor`, `int`, `float`, `bool`".into())
}

fn parse_tensor(value: &JsonValue) -> Result<Tensor, String> {
    let shape = value
        .get("shape")
        .and_then(JsonValue::as_array)
        .ok_or("tensor: missing array field `shape`")?
        .iter()
        .map(|d| {
            d.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as usize)
                .ok_or("tensor: shape entries must be non-negative integers".to_string())
        })
        .collect::<Result<Vec<usize>, String>>()?;
    let data = value
        .get("data")
        .and_then(JsonValue::as_array)
        .ok_or("tensor: missing array field `data`")?;
    let dtype = match value.get("dtype").and_then(JsonValue::as_str) {
        None | Some("f32") => DType::F32,
        Some("i64") => DType::I64,
        Some("bool") => DType::Bool,
        Some(other) => return Err(format!("tensor: unknown dtype `{other}`")),
    };
    let numbers = |elems: &[JsonValue]| -> Result<Vec<f64>, String> {
        elems
            .iter()
            .map(|e| match e {
                JsonValue::Num(n) => Ok(*n),
                JsonValue::Null => Ok(f64::NAN),
                _ => Err("tensor: data entries must be numbers".to_string()),
            })
            .collect()
    };
    let tensor = match dtype {
        DType::F32 => Tensor::from_vec_f32(
            numbers(data)?.into_iter().map(|n| n as f32).collect(),
            &shape,
        ),
        DType::I64 => Tensor::from_vec_i64(
            numbers(data)?.into_iter().map(|n| n as i64).collect(),
            &shape,
        ),
        DType::Bool => Tensor::from_vec_bool(
            data.iter()
                .map(|e| match e {
                    JsonValue::Bool(b) => Ok(*b),
                    _ => Err("tensor: data entries must be booleans".to_string()),
                })
                .collect::<Result<Vec<bool>, String>>()?,
            &shape,
        ),
    };
    tensor.map_err(|e| format!("tensor: {e}"))
}

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Inf; encode them as null (decoded back to NaN).
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn encode_tensor(out: &mut String, t: &Tensor) -> Result<(), String> {
    let (dtype, data): (&str, String) = match t.dtype() {
        DType::F32 => {
            let mut s = String::new();
            for (i, v) in t
                .to_vec_f32()
                .map_err(|e| e.to_string())?
                .into_iter()
                .enumerate()
            {
                if i > 0 {
                    s.push(',');
                }
                push_f64(&mut s, f64::from(v));
            }
            ("f32", s)
        }
        DType::I64 => {
            let v = t.to_vec_i64().map_err(|e| e.to_string())?;
            let s: Vec<String> = v.iter().map(i64::to_string).collect();
            ("i64", s.join(","))
        }
        DType::Bool => {
            let v = t.to_vec_bool().map_err(|e| e.to_string())?;
            let s: Vec<&str> = v
                .iter()
                .map(|b| if *b { "true" } else { "false" })
                .collect();
            ("bool", s.join(","))
        }
    };
    let shape: Vec<String> = t.shape().iter().map(usize::to_string).collect();
    out.push_str(&format!(
        "{{\"tensor\":{{\"dtype\":\"{dtype}\",\"shape\":[{}],\"data\":[{data}]}}}}",
        shape.join(",")
    ));
    Ok(())
}

fn encode_value(out: &mut String, value: &RtValue) -> Result<(), String> {
    match value {
        RtValue::Tensor(t) => encode_tensor(out, t)?,
        RtValue::Int(v) => out.push_str(&format!("{{\"int\":{v}}}")),
        RtValue::Float(v) => {
            out.push_str("{\"float\":");
            push_f64(out, *v);
            out.push('}');
        }
        RtValue::Bool(v) => out.push_str(&format!("{{\"bool\":{v}}}")),
        RtValue::List(items) => {
            out.push_str("{\"list\":[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_value(out, item)?;
            }
            out.push_str("]}");
        }
    }
    Ok(())
}

/// Encode an infer request body — the client-side inverse of
/// [`parse_infer`], used by load generators and tests.
///
/// # Errors
///
/// When an input tensor cannot be materialized.
pub fn encode_infer_request(model: &str, inputs: &[RtValue]) -> Result<String, String> {
    let mut out = format!("{{\"model\":\"{}\",\"inputs\":[", json_escape(model));
    for (i, v) in inputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_value(&mut out, v)?;
    }
    out.push_str("]}");
    Ok(out)
}

/// Encode a successful response body.
///
/// # Errors
///
/// When an output tensor cannot be materialized (surfaced as a 500).
pub fn encode_response(response: &tssa_serve::Response) -> Result<String, String> {
    let mut out = String::from("{\"ok\":true,\"coalesced\":");
    out.push_str(&response.coalesced.to_string());
    out.push_str(",\"outputs\":[");
    for (i, v) in response.outputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_value(&mut out, v)?;
    }
    out.push_str("]}");
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encode an error body with a stable `kind` discriminator.
pub fn encode_error(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"kind\":\"{}\",\"error\":\"{}\"}}",
        json_escape(kind),
        json_escape(message)
    )
}

/// Map a service error to its HTTP status and wire `kind`.
///
/// Backpressure and deadline outcomes get distinct retryable statuses
/// (429/504); caller bugs are 4xx; everything else is a 5xx.
pub fn error_parts(e: &ServeError) -> (u16, &'static str) {
    match e {
        ServeError::QueueFull { .. } => (429, "queue_full"),
        ServeError::DeadlineExceeded { .. } => (504, "deadline_exceeded"),
        ServeError::Timeout { .. } => (504, "timeout"),
        ServeError::ShuttingDown => (503, "shutting_down"),
        ServeError::Canceled => (503, "canceled"),
        ServeError::InvalidRequest(_) => (400, "invalid_request"),
        ServeError::Frontend(_) => (400, "frontend"),
        ServeError::CompilePanic => (500, "compile_panic"),
        ServeError::Exec(_) => (500, "exec"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_request_round_trips_every_value_kind() {
        let body = r#"{"model": "m", "inputs": [
            {"tensor": {"shape": [2, 2], "data": [1, 2.5, -3, 0.125]}},
            {"tensor": {"dtype": "i64", "shape": [3], "data": [1, -2, 3]}},
            {"tensor": {"dtype": "bool", "shape": [2], "data": [true, false]}},
            {"int": 7}, {"float": -0.5}, {"bool": true}]}"#;
        let req = parse_infer(body).unwrap();
        assert_eq!(req.model, "m");
        assert_eq!(req.inputs.len(), 6);
        let t = req.inputs[0].as_tensor().unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.to_vec_f32().unwrap(), vec![1.0, 2.5, -3.0, 0.125]);
        assert_eq!(
            req.inputs[1].as_tensor().unwrap().to_vec_i64().unwrap(),
            vec![1, -2, 3]
        );
        assert_eq!(
            req.inputs[2].as_tensor().unwrap().to_vec_bool().unwrap(),
            vec![true, false]
        );
        assert_eq!(req.inputs[3].as_int().unwrap(), 7);
        assert_eq!(req.inputs[4].as_float().unwrap(), -0.5);
        assert!(req.inputs[5].as_bool().unwrap());

        // Encode the same values back out and re-parse: a full round trip.
        let response = tssa_serve::Response {
            outputs: req.inputs.clone(),
            coalesced: 4,
            stats: Default::default(),
        };
        let encoded = encode_response(&response).unwrap();
        let value = json::parse(&encoded).unwrap();
        assert_eq!(
            value.get("coalesced").and_then(JsonValue::as_f64),
            Some(4.0)
        );
        let outputs = value.get("outputs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(outputs.len(), 6);
        let back = parse_value(&outputs[0]).unwrap();
        assert!(back
            .as_tensor()
            .unwrap()
            .allclose(req.inputs[0].as_tensor().unwrap(), 0.0));
    }

    #[test]
    fn encode_infer_request_round_trips_through_parse() {
        use tssa_tensor::Tensor;
        let inputs = vec![
            RtValue::Tensor(Tensor::ones(&[2, 3])),
            RtValue::Int(-4),
            RtValue::Float(0.25),
            RtValue::Bool(false),
        ];
        let body = encode_infer_request("yolo\"v3", &inputs).unwrap();
        let req = parse_infer(&body).unwrap();
        assert_eq!(req.model, "yolo\"v3", "model names are escaped");
        assert_eq!(req.inputs.len(), 4);
        assert!(req.inputs[0]
            .as_tensor()
            .unwrap()
            .allclose(inputs[0].as_tensor().unwrap(), 0.0));
        assert_eq!(req.inputs[1].as_int().unwrap(), -4);
        assert_eq!(req.inputs[2].as_float().unwrap(), 0.25);
        assert!(!req.inputs[3].as_bool().unwrap());
    }

    #[test]
    fn malformed_bodies_name_the_violation() {
        for (body, needle) in [
            ("not json", "not JSON"),
            ("{}", "`model`"),
            (r#"{"model": "m"}"#, "`inputs`"),
            (r#"{"model": "m", "inputs": [{}]}"#, "inputs[0]"),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"shape": [1]}}]}"#,
                "`data`",
            ),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"shape": [-1], "data": []}}]}"#,
                "non-negative",
            ),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"dtype": "f16", "shape": [1], "data": [0]}}]}"#,
                "dtype",
            ),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"shape": [2], "data": [1]}}]}"#,
                "tensor",
            ),
        ] {
            let err = parse_infer(body).unwrap_err();
            assert!(
                err.contains(needle),
                "body {body:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let response = tssa_serve::Response {
            outputs: vec![RtValue::Float(f64::NAN)],
            coalesced: 1,
            stats: Default::default(),
        };
        let encoded = encode_response(&response).unwrap();
        assert!(encoded.contains("{\"float\":null}"), "{encoded}");
        json::parse(&encoded).expect("still valid JSON");
    }

    #[test]
    fn error_bodies_are_json_with_stable_kinds() {
        let body = encode_error("queue_full", "queue is \"full\"\n");
        let value = json::parse(&body).unwrap();
        assert_eq!(
            value.get("kind").and_then(JsonValue::as_str),
            Some("queue_full")
        );
        assert_eq!(
            value.get("ok"),
            Some(&JsonValue::Bool(false)),
            "errors are marked not-ok"
        );
    }

    #[test]
    fn every_serve_error_maps_to_a_status_and_kind() {
        use std::time::Duration;
        let cases = [
            (ServeError::QueueFull { depth: 8 }, 429),
            (
                ServeError::DeadlineExceeded {
                    waited: Duration::from_millis(1),
                },
                504,
            ),
            (
                ServeError::Timeout {
                    waited: Duration::from_millis(1),
                },
                504,
            ),
            (ServeError::ShuttingDown, 503),
            (ServeError::Canceled, 503),
            (ServeError::InvalidRequest("x".into()), 400),
            (ServeError::CompilePanic, 500),
        ];
        for (err, status) in cases {
            let (s, kind) = error_parts(&err);
            assert_eq!(s, status, "{err}");
            assert!(!kind.is_empty());
        }
    }
}
