//! The JSON wire format for `/v1/infer`.
//!
//! Requests name a registered model and carry its positional inputs:
//!
//! ```json
//! {"model": "default",
//!  "inputs": [{"tensor": {"dtype": "f32", "shape": [2, 4],
//!              "data": [1, 1, 1, 1, 1, 1, 1, 1]}},
//!             {"int": 3}]}
//! ```
//!
//! Responses mirror [`tssa_serve::Response`] — outputs in the same tagged
//! encoding plus the batch-coalescing count — and every error is a JSON
//! object with a stable machine-readable `kind` alongside the human
//! message, so clients can branch on overload vs. deadline vs. caller bug
//! without parsing prose:
//!
//! ```json
//! {"ok": true, "coalesced": 4, "outputs": [{"tensor": {...}}]}
//! {"ok": false, "kind": "queue_full", "error": "admission queue full (depth 64)"}
//! ```
//!
//! Parsing reuses the recursive-descent JSON parser from `tssa-obs`
//! ([`tssa_obs::json`]) — no new dependency for the edge.
//!
//! # Binary negotiation
//!
//! Clients that prefer to skip number formatting can send the same request
//! with `Content-Type: application/x-tssa-tensor` ([`BINARY_CONTENT_TYPE`]).
//! The body is then the little-endian tagged encoding implemented by
//! [`parse_infer_binary`] / [`encode_infer_request_binary`], built on the
//! same [`tssa_store::bytes`] primitives as the persistent plan format, and
//! the response (success or error) comes back in the same encoding. JSON
//! remains the default for any other (or absent) content type.

use tssa_backend::RtValue;
use tssa_obs::json::{self, JsonValue};
use tssa_serve::ServeError;
use tssa_store::bytes::{ByteReader, ByteWriter};
use tssa_tensor::{DType, Tensor};

/// A decoded `/v1/infer` request body.
#[derive(Debug)]
pub struct InferRequest {
    /// The registered model name to run.
    pub model: String,
    /// Positional inputs in the model's argument order.
    pub inputs: Vec<RtValue>,
}

/// Decode a request body.
///
/// # Errors
///
/// A human-readable description of the first violation (surfaced to the
/// client as a 400).
pub fn parse_infer(body: &str) -> Result<InferRequest, String> {
    let value = json::parse(body).map_err(|e| format!("body is not JSON: {e}"))?;
    let model = value
        .get("model")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field `model`")?
        .to_string();
    let inputs = value
        .get("inputs")
        .and_then(JsonValue::as_array)
        .ok_or("missing array field `inputs`")?;
    let inputs = inputs
        .iter()
        .enumerate()
        .map(|(i, v)| parse_value(v).map_err(|e| format!("inputs[{i}]: {e}")))
        .collect::<Result<Vec<RtValue>, String>>()?;
    Ok(InferRequest { model, inputs })
}

fn parse_value(value: &JsonValue) -> Result<RtValue, String> {
    if let Some(t) = value.get("tensor") {
        return parse_tensor(t).map(RtValue::Tensor);
    }
    if let Some(v) = value.get("int") {
        let n = v.as_f64().ok_or("`int` is not a number")?;
        return Ok(RtValue::Int(n as i64));
    }
    if let Some(v) = value.get("float") {
        let n = v.as_f64().ok_or("`float` is not a number")?;
        return Ok(RtValue::Float(n));
    }
    if let Some(v) = value.get("bool") {
        return match v {
            JsonValue::Bool(b) => Ok(RtValue::Bool(*b)),
            _ => Err("`bool` is not a boolean".into()),
        };
    }
    Err("expected one of `tensor`, `int`, `float`, `bool`".into())
}

fn parse_tensor(value: &JsonValue) -> Result<Tensor, String> {
    let shape = value
        .get("shape")
        .and_then(JsonValue::as_array)
        .ok_or("tensor: missing array field `shape`")?
        .iter()
        .map(|d| {
            d.as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as usize)
                .ok_or("tensor: shape entries must be non-negative integers".to_string())
        })
        .collect::<Result<Vec<usize>, String>>()?;
    let data = value
        .get("data")
        .and_then(JsonValue::as_array)
        .ok_or("tensor: missing array field `data`")?;
    let dtype = match value.get("dtype").and_then(JsonValue::as_str) {
        None | Some("f32") => DType::F32,
        Some("i64") => DType::I64,
        Some("bool") => DType::Bool,
        Some(other) => return Err(format!("tensor: unknown dtype `{other}`")),
    };
    let numbers = |elems: &[JsonValue]| -> Result<Vec<f64>, String> {
        elems
            .iter()
            .map(|e| match e {
                JsonValue::Num(n) => Ok(*n),
                JsonValue::Null => Ok(f64::NAN),
                _ => Err("tensor: data entries must be numbers".to_string()),
            })
            .collect()
    };
    let tensor = match dtype {
        DType::F32 => Tensor::from_vec_f32(
            numbers(data)?.into_iter().map(|n| n as f32).collect(),
            &shape,
        ),
        DType::I64 => Tensor::from_vec_i64(
            numbers(data)?.into_iter().map(|n| n as i64).collect(),
            &shape,
        ),
        DType::Bool => Tensor::from_vec_bool(
            data.iter()
                .map(|e| match e {
                    JsonValue::Bool(b) => Ok(*b),
                    _ => Err("tensor: data entries must be booleans".to_string()),
                })
                .collect::<Result<Vec<bool>, String>>()?,
            &shape,
        ),
    };
    tensor.map_err(|e| format!("tensor: {e}"))
}

fn push_f64(out: &mut String, v: f64) {
    // JSON has no NaN/Inf; encode them as null (decoded back to NaN).
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

fn encode_tensor(out: &mut String, t: &Tensor) -> Result<(), String> {
    let (dtype, data): (&str, String) = match t.dtype() {
        DType::F32 => {
            let mut s = String::new();
            for (i, v) in t
                .to_vec_f32()
                .map_err(|e| e.to_string())?
                .into_iter()
                .enumerate()
            {
                if i > 0 {
                    s.push(',');
                }
                push_f64(&mut s, f64::from(v));
            }
            ("f32", s)
        }
        DType::I64 => {
            let v = t.to_vec_i64().map_err(|e| e.to_string())?;
            let s: Vec<String> = v.iter().map(i64::to_string).collect();
            ("i64", s.join(","))
        }
        DType::Bool => {
            let v = t.to_vec_bool().map_err(|e| e.to_string())?;
            let s: Vec<&str> = v
                .iter()
                .map(|b| if *b { "true" } else { "false" })
                .collect();
            ("bool", s.join(","))
        }
    };
    let shape: Vec<String> = t.shape().iter().map(usize::to_string).collect();
    out.push_str(&format!(
        "{{\"tensor\":{{\"dtype\":\"{dtype}\",\"shape\":[{}],\"data\":[{data}]}}}}",
        shape.join(",")
    ));
    Ok(())
}

fn encode_value(out: &mut String, value: &RtValue) -> Result<(), String> {
    match value {
        RtValue::Tensor(t) => encode_tensor(out, t)?,
        RtValue::Int(v) => out.push_str(&format!("{{\"int\":{v}}}")),
        RtValue::Float(v) => {
            out.push_str("{\"float\":");
            push_f64(out, *v);
            out.push('}');
        }
        RtValue::Bool(v) => out.push_str(&format!("{{\"bool\":{v}}}")),
        RtValue::List(items) => {
            out.push_str("{\"list\":[");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                encode_value(out, item)?;
            }
            out.push_str("]}");
        }
    }
    Ok(())
}

/// Encode an infer request body — the client-side inverse of
/// [`parse_infer`], used by load generators and tests.
///
/// # Errors
///
/// When an input tensor cannot be materialized.
pub fn encode_infer_request(model: &str, inputs: &[RtValue]) -> Result<String, String> {
    let mut out = format!("{{\"model\":\"{}\",\"inputs\":[", json_escape(model));
    for (i, v) in inputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_value(&mut out, v)?;
    }
    out.push_str("]}");
    Ok(out)
}

/// Encode a successful response body.
///
/// # Errors
///
/// When an output tensor cannot be materialized (surfaced as a 500).
pub fn encode_response(response: &tssa_serve::Response) -> Result<String, String> {
    let mut out = String::from("{\"ok\":true,\"coalesced\":");
    out.push_str(&response.coalesced.to_string());
    out.push_str(",\"outputs\":[");
    for (i, v) in response.outputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        encode_value(&mut out, v)?;
    }
    out.push_str("]}");
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encode an error body with a stable `kind` discriminator.
pub fn encode_error(kind: &str, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"kind\":\"{}\",\"error\":\"{}\"}}",
        json_escape(kind),
        json_escape(message)
    )
}

/// Content type that selects the binary tensor encoding on `/v1/infer`.
pub const BINARY_CONTENT_TYPE: &str = "application/x-tssa-tensor";

/// Version byte leading every binary body; bumped on incompatible change.
pub const BINARY_WIRE_VERSION: u8 = 1;

/// Nested lists deeper than this are rejected rather than recursed into,
/// so adversarial bodies cannot exhaust the decoder's stack.
const MAX_LIST_DEPTH: u32 = 32;

const TAG_TENSOR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_LIST: u8 = 4;

const DTYPE_F32: u8 = 0;
const DTYPE_I64: u8 = 1;
const DTYPE_BOOL: u8 = 2;

/// True when a `Content-Type` header value selects the binary encoding.
/// Parameters after `;` (charset etc.) are ignored.
pub fn is_binary_content_type(header: Option<&str>) -> bool {
    header.is_some_and(|v| {
        v.split(';')
            .next()
            .unwrap_or("")
            .trim()
            .eq_ignore_ascii_case(BINARY_CONTENT_TYPE)
    })
}

fn put_value(w: &mut ByteWriter, value: &RtValue) -> Result<(), String> {
    match value {
        RtValue::Tensor(t) => {
            w.put_u8(TAG_TENSOR);
            put_tensor(w, t)?;
        }
        RtValue::Int(v) => {
            w.put_u8(TAG_INT);
            w.put_i64(*v);
        }
        RtValue::Float(v) => {
            w.put_u8(TAG_FLOAT);
            w.put_f64(*v);
        }
        RtValue::Bool(v) => {
            w.put_u8(TAG_BOOL);
            w.put_u8(u8::from(*v));
        }
        RtValue::List(items) => {
            w.put_u8(TAG_LIST);
            w.put_u32(items.len() as u32);
            for item in items {
                put_value(w, item)?;
            }
        }
    }
    Ok(())
}

fn put_tensor(w: &mut ByteWriter, t: &Tensor) -> Result<(), String> {
    let dtype = match t.dtype() {
        DType::F32 => DTYPE_F32,
        DType::I64 => DTYPE_I64,
        DType::Bool => DTYPE_BOOL,
    };
    w.put_u8(dtype);
    w.put_u32(t.rank() as u32);
    for &d in t.shape() {
        w.put_u64(d as u64);
    }
    match t.dtype() {
        DType::F32 => {
            for v in t.to_vec_f32().map_err(|e| e.to_string())? {
                w.put_raw(&v.to_le_bytes());
            }
        }
        DType::I64 => {
            for v in t.to_vec_i64().map_err(|e| e.to_string())? {
                w.put_i64(v);
            }
        }
        DType::Bool => {
            for v in t.to_vec_bool().map_err(|e| e.to_string())? {
                w.put_u8(u8::from(v));
            }
        }
    }
    Ok(())
}

fn get_value(r: &mut ByteReader<'_>, depth: u32) -> Result<RtValue, String> {
    match r.get_u8("value tag").map_err(|e| e.to_string())? {
        TAG_TENSOR => get_tensor(r).map(RtValue::Tensor),
        TAG_INT => r
            .get_i64("int value")
            .map(RtValue::Int)
            .map_err(|e| e.to_string()),
        TAG_FLOAT => r
            .get_f64("float value")
            .map(RtValue::Float)
            .map_err(|e| e.to_string()),
        TAG_BOOL => r
            .get_u8("bool value")
            .map(|b| RtValue::Bool(b != 0))
            .map_err(|e| e.to_string()),
        TAG_LIST => {
            if depth >= MAX_LIST_DEPTH {
                return Err(format!("list nesting exceeds {MAX_LIST_DEPTH}"));
            }
            let n = r.get_u32("list length").map_err(|e| e.to_string())?;
            let mut items = Vec::new();
            for i in 0..n {
                items.push(get_value(r, depth + 1).map_err(|e| format!("list[{i}]: {e}"))?);
            }
            Ok(RtValue::List(items))
        }
        other => Err(format!("unknown value tag {other}")),
    }
}

fn get_tensor(r: &mut ByteReader<'_>) -> Result<Tensor, String> {
    let dtype = r.get_u8("tensor dtype").map_err(|e| e.to_string())?;
    let rank = r.get_u32("tensor rank").map_err(|e| e.to_string())? as usize;
    // A rank larger than the remaining bytes could even encode is a
    // malformed header, not a shape; reject before allocating.
    if rank > r.remaining() / 8 {
        return Err(format!("tensor rank {rank} exceeds remaining payload"));
    }
    let mut shape = Vec::with_capacity(rank);
    let mut numel: usize = 1;
    for _ in 0..rank {
        let d = r.get_u64("tensor dim").map_err(|e| e.to_string())?;
        let d = usize::try_from(d).map_err(|_| "tensor dim overflows usize".to_string())?;
        numel = numel
            .checked_mul(d)
            .ok_or_else(|| "tensor element count overflows".to_string())?;
        shape.push(d);
    }
    let tensor = match dtype {
        DTYPE_F32 => {
            let raw = r
                .get_raw(numel * 4, "f32 tensor data")
                .map_err(|e| e.to_string())?;
            let data = raw
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            Tensor::from_vec_f32(data, &shape)
        }
        DTYPE_I64 => {
            let raw = r
                .get_raw(numel * 8, "i64 tensor data")
                .map_err(|e| e.to_string())?;
            let data = raw
                .chunks_exact(8)
                .map(|c| i64::from_le_bytes(c.try_into().expect("exact chunk")))
                .collect();
            Tensor::from_vec_i64(data, &shape)
        }
        DTYPE_BOOL => {
            let raw = r
                .get_raw(numel, "bool tensor data")
                .map_err(|e| e.to_string())?;
            Tensor::from_vec_bool(raw.iter().map(|&b| b != 0).collect(), &shape)
        }
        other => return Err(format!("unknown tensor dtype code {other}")),
    };
    tensor.map_err(|e| format!("tensor: {e}"))
}

fn check_version(r: &mut ByteReader<'_>) -> Result<(), String> {
    let v = r.get_u8("wire version").map_err(|e| e.to_string())?;
    if v != BINARY_WIRE_VERSION {
        return Err(format!(
            "unsupported binary wire version {v} (this server speaks {BINARY_WIRE_VERSION})"
        ));
    }
    Ok(())
}

/// Decode a binary request body — the counterpart of [`parse_infer`] for
/// `Content-Type: application/x-tssa-tensor`.
///
/// # Errors
///
/// A human-readable description of the first violation (surfaced to the
/// client as a 400, encoded back in the binary error framing).
pub fn parse_infer_binary(body: &[u8]) -> Result<InferRequest, String> {
    let mut r = ByteReader::new(body);
    check_version(&mut r)?;
    let model = r
        .get_str("model name")
        .map_err(|e| e.to_string())?
        .to_string();
    let n = r.get_u32("input count").map_err(|e| e.to_string())?;
    let mut inputs = Vec::new();
    for i in 0..n {
        inputs.push(get_value(&mut r, 0).map_err(|e| format!("inputs[{i}]: {e}"))?);
    }
    if !r.is_exhausted() {
        return Err(format!("{} trailing bytes after inputs", r.remaining()));
    }
    Ok(InferRequest { model, inputs })
}

/// Encode a binary infer request — the client-side inverse of
/// [`parse_infer_binary`].
///
/// # Errors
///
/// When an input tensor cannot be materialized.
pub fn encode_infer_request_binary(model: &str, inputs: &[RtValue]) -> Result<Vec<u8>, String> {
    let mut w = ByteWriter::new();
    w.put_u8(BINARY_WIRE_VERSION);
    w.put_str(model);
    w.put_u32(inputs.len() as u32);
    for v in inputs {
        put_value(&mut w, v)?;
    }
    Ok(w.into_bytes())
}

/// Encode a successful response in the binary framing.
///
/// # Errors
///
/// When an output tensor cannot be materialized (surfaced as a 500).
pub fn encode_response_binary(response: &tssa_serve::Response) -> Result<Vec<u8>, String> {
    let mut w = ByteWriter::new();
    w.put_u8(BINARY_WIRE_VERSION);
    w.put_u8(1); // ok
    w.put_u64(response.coalesced as u64);
    w.put_u32(response.outputs.len() as u32);
    for v in &response.outputs {
        put_value(&mut w, v)?;
    }
    Ok(w.into_bytes())
}

/// Encode an error in the binary framing, mirroring [`encode_error`].
pub fn encode_error_binary(kind: &str, message: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(BINARY_WIRE_VERSION);
    w.put_u8(0); // not ok
    w.put_str(kind);
    w.put_str(message);
    w.into_bytes()
}

/// A decoded binary response body: success with outputs, or a typed error.
#[derive(Debug)]
pub enum BinaryReply {
    /// The request ran; outputs in model order plus the coalescing count.
    Ok {
        /// How many requests shared the batch.
        coalesced: u64,
        /// Model outputs.
        outputs: Vec<RtValue>,
    },
    /// The server refused or failed the request.
    Err {
        /// Stable machine-readable discriminator (same set as JSON `kind`).
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

/// Decode a binary response body (client side).
///
/// # Errors
///
/// When the body is truncated, version-mismatched, or malformed.
pub fn parse_response_binary(body: &[u8]) -> Result<BinaryReply, String> {
    let mut r = ByteReader::new(body);
    check_version(&mut r)?;
    let ok = r.get_u8("ok flag").map_err(|e| e.to_string())?;
    if ok == 0 {
        let kind = r.get_str("error kind").map_err(|e| e.to_string())?.into();
        let message = r
            .get_str("error message")
            .map_err(|e| e.to_string())?
            .into();
        return Ok(BinaryReply::Err { kind, message });
    }
    let coalesced = r.get_u64("coalesced").map_err(|e| e.to_string())?;
    let n = r.get_u32("output count").map_err(|e| e.to_string())?;
    let mut outputs = Vec::new();
    for i in 0..n {
        outputs.push(get_value(&mut r, 0).map_err(|e| format!("outputs[{i}]: {e}"))?);
    }
    Ok(BinaryReply::Ok { coalesced, outputs })
}

/// Map a service error to its HTTP status and wire `kind`.
///
/// Backpressure and deadline outcomes get distinct retryable statuses
/// (429/504); caller bugs are 4xx; everything else is a 5xx.
pub fn error_parts(e: &ServeError) -> (u16, &'static str) {
    match e {
        ServeError::QueueFull { .. } => (429, "queue_full"),
        ServeError::DeadlineExceeded { .. } => (504, "deadline_exceeded"),
        ServeError::Timeout { .. } => (504, "timeout"),
        ServeError::ShuttingDown => (503, "shutting_down"),
        ServeError::Canceled => (503, "canceled"),
        ServeError::InvalidRequest(_) => (400, "invalid_request"),
        ServeError::Frontend(_) => (400, "frontend"),
        ServeError::CompilePanic => (500, "compile_panic"),
        ServeError::Exec(_) => (500, "exec"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_request_round_trips_every_value_kind() {
        let body = r#"{"model": "m", "inputs": [
            {"tensor": {"shape": [2, 2], "data": [1, 2.5, -3, 0.125]}},
            {"tensor": {"dtype": "i64", "shape": [3], "data": [1, -2, 3]}},
            {"tensor": {"dtype": "bool", "shape": [2], "data": [true, false]}},
            {"int": 7}, {"float": -0.5}, {"bool": true}]}"#;
        let req = parse_infer(body).unwrap();
        assert_eq!(req.model, "m");
        assert_eq!(req.inputs.len(), 6);
        let t = req.inputs[0].as_tensor().unwrap();
        assert_eq!(t.shape(), &[2, 2]);
        assert_eq!(t.to_vec_f32().unwrap(), vec![1.0, 2.5, -3.0, 0.125]);
        assert_eq!(
            req.inputs[1].as_tensor().unwrap().to_vec_i64().unwrap(),
            vec![1, -2, 3]
        );
        assert_eq!(
            req.inputs[2].as_tensor().unwrap().to_vec_bool().unwrap(),
            vec![true, false]
        );
        assert_eq!(req.inputs[3].as_int().unwrap(), 7);
        assert_eq!(req.inputs[4].as_float().unwrap(), -0.5);
        assert!(req.inputs[5].as_bool().unwrap());

        // Encode the same values back out and re-parse: a full round trip.
        let response = tssa_serve::Response {
            outputs: req.inputs.clone(),
            coalesced: 4,
            stats: Default::default(),
        };
        let encoded = encode_response(&response).unwrap();
        let value = json::parse(&encoded).unwrap();
        assert_eq!(
            value.get("coalesced").and_then(JsonValue::as_f64),
            Some(4.0)
        );
        let outputs = value.get("outputs").and_then(JsonValue::as_array).unwrap();
        assert_eq!(outputs.len(), 6);
        let back = parse_value(&outputs[0]).unwrap();
        assert!(back
            .as_tensor()
            .unwrap()
            .allclose(req.inputs[0].as_tensor().unwrap(), 0.0));
    }

    #[test]
    fn encode_infer_request_round_trips_through_parse() {
        use tssa_tensor::Tensor;
        let inputs = vec![
            RtValue::Tensor(Tensor::ones(&[2, 3])),
            RtValue::Int(-4),
            RtValue::Float(0.25),
            RtValue::Bool(false),
        ];
        let body = encode_infer_request("yolo\"v3", &inputs).unwrap();
        let req = parse_infer(&body).unwrap();
        assert_eq!(req.model, "yolo\"v3", "model names are escaped");
        assert_eq!(req.inputs.len(), 4);
        assert!(req.inputs[0]
            .as_tensor()
            .unwrap()
            .allclose(inputs[0].as_tensor().unwrap(), 0.0));
        assert_eq!(req.inputs[1].as_int().unwrap(), -4);
        assert_eq!(req.inputs[2].as_float().unwrap(), 0.25);
        assert!(!req.inputs[3].as_bool().unwrap());
    }

    #[test]
    fn malformed_bodies_name_the_violation() {
        for (body, needle) in [
            ("not json", "not JSON"),
            ("{}", "`model`"),
            (r#"{"model": "m"}"#, "`inputs`"),
            (r#"{"model": "m", "inputs": [{}]}"#, "inputs[0]"),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"shape": [1]}}]}"#,
                "`data`",
            ),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"shape": [-1], "data": []}}]}"#,
                "non-negative",
            ),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"dtype": "f16", "shape": [1], "data": [0]}}]}"#,
                "dtype",
            ),
            (
                r#"{"model": "m", "inputs": [{"tensor": {"shape": [2], "data": [1]}}]}"#,
                "tensor",
            ),
        ] {
            let err = parse_infer(body).unwrap_err();
            assert!(
                err.contains(needle),
                "body {body:?}: error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        let response = tssa_serve::Response {
            outputs: vec![RtValue::Float(f64::NAN)],
            coalesced: 1,
            stats: Default::default(),
        };
        let encoded = encode_response(&response).unwrap();
        assert!(encoded.contains("{\"float\":null}"), "{encoded}");
        json::parse(&encoded).expect("still valid JSON");
    }

    #[test]
    fn error_bodies_are_json_with_stable_kinds() {
        let body = encode_error("queue_full", "queue is \"full\"\n");
        let value = json::parse(&body).unwrap();
        assert_eq!(
            value.get("kind").and_then(JsonValue::as_str),
            Some("queue_full")
        );
        assert_eq!(
            value.get("ok"),
            Some(&JsonValue::Bool(false)),
            "errors are marked not-ok"
        );
    }

    #[test]
    fn binary_request_round_trips_every_value_kind() {
        let inputs = vec![
            RtValue::Tensor(Tensor::from_vec_f32(vec![1.0, 2.5, -3.0, 0.125], &[2, 2]).unwrap()),
            RtValue::Tensor(Tensor::from_vec_i64(vec![1, -2, 3], &[3]).unwrap()),
            RtValue::Tensor(Tensor::from_vec_bool(vec![true, false], &[2]).unwrap()),
            RtValue::Int(-7),
            RtValue::Float(f64::NAN),
            RtValue::Bool(true),
            RtValue::List(vec![
                RtValue::Int(1),
                RtValue::List(vec![RtValue::Bool(false)]),
            ]),
        ];
        let body = encode_infer_request_binary("yolo v3", &inputs).unwrap();
        let req = parse_infer_binary(&body).unwrap();
        assert_eq!(req.model, "yolo v3");
        assert_eq!(req.inputs.len(), 7);
        assert!(req.inputs[0]
            .as_tensor()
            .unwrap()
            .allclose(inputs[0].as_tensor().unwrap(), 0.0));
        assert_eq!(
            req.inputs[1].as_tensor().unwrap().to_vec_i64().unwrap(),
            vec![1, -2, 3]
        );
        assert_eq!(
            req.inputs[2].as_tensor().unwrap().to_vec_bool().unwrap(),
            vec![true, false]
        );
        assert_eq!(req.inputs[3].as_int().unwrap(), -7);
        // Binary carries the full f64 bit pattern — NaN survives, unlike JSON.
        assert!(req.inputs[4].as_float().unwrap().is_nan());
        assert!(req.inputs[5].as_bool().unwrap());
        match &req.inputs[6] {
            RtValue::List(items) => assert_eq!(items.len(), 2),
            other => panic!("expected list, got {other:?}"),
        }
    }

    #[test]
    fn binary_response_round_trips_and_errors_decode() {
        let response = tssa_serve::Response {
            outputs: vec![
                RtValue::Tensor(Tensor::arange_f32(6).reshape(&[2, 3]).unwrap()),
                RtValue::Float(0.5),
            ],
            coalesced: 4,
            stats: Default::default(),
        };
        let body = encode_response_binary(&response).unwrap();
        match parse_response_binary(&body).unwrap() {
            BinaryReply::Ok { coalesced, outputs } => {
                assert_eq!(coalesced, 4);
                assert_eq!(outputs.len(), 2);
                assert!(outputs[0]
                    .as_tensor()
                    .unwrap()
                    .allclose(response.outputs[0].as_tensor().unwrap(), 0.0));
            }
            BinaryReply::Err { kind, .. } => panic!("unexpected error {kind}"),
        }

        let err = encode_error_binary("queue_full", "admission queue full");
        match parse_response_binary(&err).unwrap() {
            BinaryReply::Err { kind, message } => {
                assert_eq!(kind, "queue_full");
                assert_eq!(message, "admission queue full");
            }
            BinaryReply::Ok { .. } => panic!("error body decoded as ok"),
        }
    }

    #[test]
    fn malformed_binary_bodies_name_the_violation() {
        let good = encode_infer_request_binary(
            "m",
            &[RtValue::Tensor(Tensor::ones(&[2, 2])), RtValue::Int(3)],
        )
        .unwrap();

        // Truncation at every prefix length either errors or (never) panics.
        for cut in 0..good.len() {
            assert!(
                parse_infer_binary(&good[..cut]).is_err(),
                "prefix of {cut} bytes should not parse"
            );
        }

        // Version bump.
        let mut bumped = good.clone();
        bumped[0] = BINARY_WIRE_VERSION + 1;
        assert!(parse_infer_binary(&bumped).unwrap_err().contains("version"));

        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert!(parse_infer_binary(&padded)
            .unwrap_err()
            .contains("trailing"));

        // Unknown tag / dtype.
        let mut w = ByteWriter::new();
        w.put_u8(BINARY_WIRE_VERSION);
        w.put_str("m");
        w.put_u32(1);
        w.put_u8(9);
        assert!(parse_infer_binary(&w.into_bytes())
            .unwrap_err()
            .contains("unknown value tag"));

        // A rank field pointing past the end of the body must not allocate.
        let mut w = ByteWriter::new();
        w.put_u8(BINARY_WIRE_VERSION);
        w.put_str("m");
        w.put_u32(1);
        w.put_u8(TAG_TENSOR);
        w.put_u8(DTYPE_F32);
        w.put_u32(u32::MAX);
        assert!(parse_infer_binary(&w.into_bytes())
            .unwrap_err()
            .contains("rank"));
    }

    #[test]
    fn content_type_negotiation_matches_loosely() {
        assert!(is_binary_content_type(Some("application/x-tssa-tensor")));
        assert!(is_binary_content_type(Some(
            "Application/X-TSSA-Tensor; charset=binary"
        )));
        assert!(!is_binary_content_type(Some("application/json")));
        assert!(!is_binary_content_type(None));
    }

    #[test]
    fn every_serve_error_maps_to_a_status_and_kind() {
        use std::time::Duration;
        let cases = [
            (ServeError::QueueFull { depth: 8 }, 429),
            (
                ServeError::DeadlineExceeded {
                    waited: Duration::from_millis(1),
                },
                504,
            ),
            (
                ServeError::Timeout {
                    waited: Duration::from_millis(1),
                },
                504,
            ),
            (ServeError::ShuttingDown, 503),
            (ServeError::Canceled, 503),
            (ServeError::InvalidRequest("x".into()), 400),
            (ServeError::CompilePanic, 500),
        ];
        for (err, status) in cases {
            let (s, kind) = error_parts(&err);
            assert_eq!(s, status, "{err}");
            assert!(!kind.is_empty());
        }
    }
}
