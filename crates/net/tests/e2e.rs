//! End-to-end tests: real TCP clients against a live gateway.
//!
//! These tests exercise the full edge-to-executor path — socket, HTTP
//! framing, JSON wire, admission, batching, workers — and the autoscaling
//! loop on top of it, with correctness checked against a direct in-process
//! submit of the same request.

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tssa_backend::RtValue;
use tssa_net::{roundtrip, AutoscaleConfig, Autoscaler, Gateway, GatewayConfig};
use tssa_obs::json::{self, JsonValue};
use tssa_serve::{BatchSpec, FaultKind, FaultPlan, PipelineKind, Profiler, ServeConfig, Service};
use tssa_tensor::Tensor;

const SOURCE: &str =
    "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";

const INFER_BODY: &str = r#"{"model": "m", "inputs": [{"tensor": {"shape": [2, 4],
    "data": [1, 1, 1, 1, 1, 1, 1, 1]}}]}"#;

fn boot(config: ServeConfig) -> (Arc<Service>, Gateway) {
    let service = Arc::new(Service::new(config));
    let example = vec![RtValue::Tensor(Tensor::ones(&[2, 4]))];
    let model = service
        .loader(SOURCE)
        .pipeline(PipelineKind::TensorSsa)
        .example(&example)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .expect("load model");
    let gateway =
        Gateway::bind(GatewayConfig::default(), Arc::clone(&service)).expect("bind gateway");
    gateway.register_model("m", model);
    (service, gateway)
}

fn teardown(service: Arc<Service>, gateway: Gateway) -> tssa_serve::MetricsSnapshot {
    gateway.shutdown();
    let service = Arc::try_unwrap(service).ok().expect("service unshared");
    service.shutdown().metrics
}

/// Decode `outputs[0].tensor.data` from a wire response body.
fn output_data(body: &str) -> Vec<f64> {
    let value = json::parse(body).expect("response is JSON");
    assert_eq!(
        value.get("ok"),
        Some(&JsonValue::Bool(true)),
        "not ok: {body}"
    );
    value
        .get("outputs")
        .and_then(JsonValue::as_array)
        .and_then(|o| o[0].get("tensor"))
        .and_then(|t| t.get("data"))
        .and_then(JsonValue::as_array)
        .expect("outputs[0].tensor.data")
        .iter()
        .map(|n| n.as_f64().expect("numeric data"))
        .collect()
}

#[test]
fn sixty_four_concurrent_tcp_clients_match_direct_submit() {
    const CLIENTS: usize = 64;
    const PER_CLIENT: usize = 4;
    let (service, gateway) = boot(ServeConfig::default().with_workers(2).with_queue_depth(256));
    // The ground truth: the same request submitted directly, no network.
    let example = vec![RtValue::Tensor(Tensor::ones(&[2, 4]))];
    let model = service
        .loader(SOURCE)
        .pipeline(PipelineKind::TensorSsa)
        .example(&example)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .expect("load is a cache hit");
    let direct = service
        .submit(&model, example)
        .expect("direct submit")
        .wait()
        .expect("direct wait");
    let expected: Vec<f64> = direct.outputs[0]
        .as_tensor()
        .unwrap()
        .to_vec_f32()
        .unwrap()
        .into_iter()
        .map(f64::from)
        .collect();

    let addr = gateway.local_addr();
    let expected = &expected;
    let ok = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for _ in 0..CLIENTS {
            joins.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let mut ok = 0usize;
                // Keep-alive: every request of this client rides one
                // connection.
                for _ in 0..PER_CLIENT {
                    let resp = roundtrip(
                        &mut stream,
                        "POST",
                        "/v1/infer",
                        &[("Content-Type", "application/json")],
                        INFER_BODY.as_bytes(),
                    )
                    .expect("roundtrip");
                    assert_eq!(resp.status, 200, "body: {}", resp.text());
                    let got = output_data(resp.text());
                    assert_eq!(got.len(), expected.len());
                    for (g, e) in got.iter().zip(expected) {
                        assert!(
                            (g - e).abs() < 1e-6,
                            "network result {g} != direct result {e}"
                        );
                    }
                    ok += 1;
                }
                ok
            }));
        }
        joins.into_iter().map(|j| j.join().unwrap()).sum::<usize>()
    });
    assert_eq!(ok, CLIENTS * PER_CLIENT);

    let metrics = teardown(service, gateway);
    assert_eq!(metrics.resolved(), metrics.submitted, "ledger reconciles");
    assert_eq!(metrics.submitted, (CLIENTS * PER_CLIENT) as u64 + 1);
    assert_eq!(metrics.completed, (CLIENTS * PER_CLIENT) as u64 + 1);
}

#[test]
fn metrics_exposition_is_parseable_and_consolidated() {
    let (service, gateway) = boot(ServeConfig::default().with_workers(1));
    let autoscaler = Autoscaler::spawn(
        Arc::clone(&service),
        AutoscaleConfig {
            tick: Duration::from_millis(10),
            ..AutoscaleConfig::default()
        },
    );
    let addr = gateway.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    for _ in 0..5 {
        let resp =
            roundtrip(&mut stream, "POST", "/v1/infer", &[], INFER_BODY.as_bytes()).expect("infer");
        assert_eq!(resp.status, 200);
    }
    // Give the autoscaler a tick so its gauges exist.
    std::thread::sleep(Duration::from_millis(50));
    let resp = roundtrip(&mut stream, "GET", "/metrics", &[], b"").expect("metrics");
    assert_eq!(resp.status, 200);
    assert_eq!(
        resp.header("transfer-encoding"),
        Some("chunked"),
        "/metrics streams chunked"
    );
    let text = resp.text();
    // One consolidated exposition: service series, gateway series,
    // autoscaler series.
    for series in [
        "tssa_queue_wait_us",
        "tssa_requests_submitted_total",
        "tssa_pool_workers",
        "tssa_net_requests_total",
        "tssa_net_responses_total",
        "tssa_autoscaler_workers",
        "tssa_autoscaler_window_p99_us",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    // Prometheus text format: every line is a comment or `name[{labels}] value`.
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value = line.rsplit(' ').next().expect("line has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample line: {line}"
        );
    }
    autoscaler.stop();
    let metrics = teardown(service, gateway);
    assert_eq!(metrics.resolved(), metrics.submitted);
}

#[test]
fn autoscaler_grows_under_load_and_shrinks_after_idle() {
    // Slow executions with a single starting worker: queue wait explodes,
    // the autoscaler must grow. After the load stops it must shrink back.
    let plan = FaultPlan::seeded(11)
        .with_rate(FaultKind::SlowExec, 1.0, 1_000_000)
        .with_slow_exec(Duration::from_millis(2));
    let (service, gateway) = boot(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_depth(8)
            .with_max_batch(2)
            .with_max_wait(Duration::from_micros(200))
            .with_faults(plan.faults()),
    );
    let autoscaler = Autoscaler::spawn(
        Arc::clone(&service),
        AutoscaleConfig {
            min_workers: 1,
            max_workers: 3,
            high_water_us: 400,
            low_water_us: 200,
            // One high window is enough here: on a single-core runner,
            // completions arrive in bursts, and an empty window between two
            // busy ones resets the high streak — hysteresis itself is
            // covered by the deterministic ScaleController unit tests.
            high_ticks: 1,
            low_ticks: 3,
            cooldown_ticks: 1,
            tick: Duration::from_millis(50),
        },
    );
    let addr = gateway.local_addr();
    let stop = AtomicBool::new(false);
    let grew = std::thread::scope(|scope| {
        // 8 closed-loop clients keep the queue pressurized.
        for _ in 0..8 {
            scope.spawn(|| {
                let mut stream = TcpStream::connect(addr).expect("connect");
                while !stop.load(Ordering::SeqCst) {
                    match roundtrip(&mut stream, "POST", "/v1/infer", &[], INFER_BODY.as_bytes()) {
                        Ok(resp) => assert!(
                            resp.status == 200 || resp.status == 429,
                            "unexpected status {}: {}",
                            resp.status,
                            resp.text()
                        ),
                        // The gateway may close the connection on shed.
                        Err(_) => match TcpStream::connect(addr) {
                            Ok(s) => stream = s,
                            Err(_) => break,
                        },
                    }
                }
            });
        }
        // Scale-up: poll until the pool grows past its starting size.
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut grew = false;
        while Instant::now() < deadline {
            if service.worker_count() > 1 {
                grew = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        stop.store(true, Ordering::SeqCst);
        grew
    });
    assert!(grew, "autoscaler never grew the pool under sustained load");

    // Scale-down: with traffic gone the queue-wait windows are empty.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut shrank = false;
    while Instant::now() < deadline {
        if service.worker_count() == 1 {
            shrank = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(shrank, "autoscaler never shrank the pool after idle");

    let registry = service.registry();
    assert!(
        registry
            .counter("tssa_autoscaler_scale_ups_total", "", &[])
            .get()
            > 0,
        "scale-up counter"
    );
    assert!(
        registry
            .counter("tssa_autoscaler_scale_downs_total", "", &[])
            .get()
            > 0,
        "scale-down counter"
    );
    autoscaler.stop();
    let metrics = teardown(service, gateway);
    assert_eq!(
        metrics.resolved(),
        metrics.submitted,
        "ledger reconciles through grow/shrink\n{metrics}"
    );
}

#[test]
fn health_and_error_routes_behave() {
    let (service, gateway) = boot(ServeConfig::default().with_workers(1));
    let addr = gateway.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");

    let resp = roundtrip(&mut stream, "GET", "/healthz", &[], b"").unwrap();
    assert_eq!(resp.status, 200);
    let resp = roundtrip(&mut stream, "GET", "/readyz", &[], b"").unwrap();
    assert_eq!(resp.status, 200, "not degraded → ready");

    let resp = roundtrip(&mut stream, "GET", "/nope", &[], b"").unwrap();
    assert_eq!(resp.status, 404);
    let resp = roundtrip(&mut stream, "POST", "/v1/infer", &[], b"not json").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.text().contains("invalid_request"));
    let resp = roundtrip(
        &mut stream,
        "POST",
        "/v1/infer",
        &[],
        br#"{"model": "ghost", "inputs": []}"#,
    )
    .unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.text().contains("unknown_model"));
    let resp = roundtrip(
        &mut stream,
        "POST",
        "/v1/infer",
        &[("Timeout-Ms", "soon")],
        INFER_BODY.as_bytes(),
    )
    .unwrap();
    assert_eq!(resp.status, 400, "bad Timeout-Ms header");
    let resp = roundtrip(&mut stream, "DELETE", "/v1/infer", &[], b"").unwrap();
    assert_eq!(resp.status, 405);

    // All of that rode one keep-alive connection; a final good request
    // proves the connection survived the 4xx responses.
    let resp = roundtrip(&mut stream, "POST", "/v1/infer", &[], INFER_BODY.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);

    let metrics = teardown(service, gateway);
    assert_eq!(metrics.resolved(), metrics.submitted);
}

#[test]
fn binary_content_type_round_trips_and_matches_json() {
    use tssa_net::{wire, BinaryReply};
    let (service, gateway) = boot(ServeConfig::default().with_workers(1));
    let addr = gateway.local_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");

    // The same request over both encodings, interleaved on one keep-alive
    // connection, must agree bit-for-bit.
    let inputs = vec![RtValue::Tensor(Tensor::ones(&[2, 4]))];
    let binary_body = wire::encode_infer_request_binary("m", &inputs).expect("encode binary");
    let binary_headers = [("Content-Type", wire::BINARY_CONTENT_TYPE)];

    let json_resp =
        roundtrip(&mut stream, "POST", "/v1/infer", &[], INFER_BODY.as_bytes()).unwrap();
    assert_eq!(json_resp.status, 200);
    let json_out = output_data(json_resp.text());

    let bin_resp = roundtrip(
        &mut stream,
        "POST",
        "/v1/infer",
        &binary_headers,
        &binary_body,
    )
    .unwrap();
    assert_eq!(bin_resp.status, 200);
    assert_eq!(
        bin_resp.header("content-type"),
        Some(wire::BINARY_CONTENT_TYPE),
        "binary requests get binary responses"
    );
    let bin_out = match wire::parse_response_binary(&bin_resp.body).expect("decode binary") {
        BinaryReply::Ok { outputs, .. } => outputs[0]
            .as_tensor()
            .unwrap()
            .to_vec_f32()
            .unwrap()
            .into_iter()
            .map(f64::from)
            .collect::<Vec<f64>>(),
        BinaryReply::Err { kind, message } => panic!("binary infer failed: {kind}: {message}"),
    };
    assert_eq!(bin_out, json_out, "both encodings see the same outputs");

    // Errors come back in the negotiated encoding too: unknown model (404)
    // and a garbage body (400) both decode as typed binary errors.
    let ghost = wire::encode_infer_request_binary("ghost", &inputs).unwrap();
    let resp = roundtrip(&mut stream, "POST", "/v1/infer", &binary_headers, &ghost).unwrap();
    assert_eq!(resp.status, 404);
    match wire::parse_response_binary(&resp.body).expect("binary error body") {
        BinaryReply::Err { kind, .. } => assert_eq!(kind, "unknown_model"),
        BinaryReply::Ok { .. } => panic!("ghost model should not resolve"),
    }
    let resp = roundtrip(
        &mut stream,
        "POST",
        "/v1/infer",
        &binary_headers,
        b"\xffnot a binary body",
    )
    .unwrap();
    assert_eq!(resp.status, 400);
    match wire::parse_response_binary(&resp.body).expect("binary error body") {
        BinaryReply::Err { kind, .. } => assert_eq!(kind, "invalid_request"),
        BinaryReply::Ok { .. } => panic!("garbage should not parse"),
    }

    // A JSON request after binary traffic still defaults to JSON.
    let resp = roundtrip(&mut stream, "POST", "/v1/infer", &[], INFER_BODY.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("content-type"), Some("application/json"));

    let metrics = teardown(service, gateway);
    assert_eq!(metrics.resolved(), metrics.submitted);
}

#[test]
fn oversized_bodies_are_refused_with_413() {
    let service = Arc::new(Service::new(ServeConfig::default().with_workers(1)));
    let gateway = Gateway::bind(
        GatewayConfig {
            limits: tssa_net::Limits {
                max_body: 256,
                ..tssa_net::Limits::default()
            },
            ..GatewayConfig::default()
        },
        Arc::clone(&service),
    )
    .expect("bind");
    let mut stream = TcpStream::connect(gateway.local_addr()).expect("connect");
    let huge = vec![b'x'; 4096];
    let resp = roundtrip(&mut stream, "POST", "/v1/infer", &[], &huge).unwrap();
    assert_eq!(resp.status, 413);
    gateway.shutdown();
    Arc::try_unwrap(service).ok().expect("unshared").shutdown();
}

#[test]
fn connection_cap_sheds_with_503() {
    let service = Arc::new(Service::new(ServeConfig::default().with_workers(1)));
    let gateway = Gateway::bind(
        GatewayConfig {
            max_connections: 2,
            ..GatewayConfig::default()
        },
        Arc::clone(&service),
    )
    .expect("bind");
    let addr = gateway.local_addr();
    // Two connections hold their slots by being connected and mid-session.
    let mut a = TcpStream::connect(addr).unwrap();
    let mut b = TcpStream::connect(addr).unwrap();
    assert_eq!(
        roundtrip(&mut a, "GET", "/healthz", &[], b"")
            .unwrap()
            .status,
        200
    );
    assert_eq!(
        roundtrip(&mut b, "GET", "/healthz", &[], b"")
            .unwrap()
            .status,
        200
    );
    // The third is refused at accept time.
    let c = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(c);
    let resp = tssa_net::http::read_response(&mut reader).expect("refusal response");
    assert_eq!(resp.status, 503);
    gateway.shutdown();
    Arc::try_unwrap(service).ok().expect("unshared").shutdown();
}

#[test]
fn graceful_shutdown_drains_inflight_requests() {
    let plan = FaultPlan::seeded(3)
        .with_rate(FaultKind::SlowExec, 1.0, 10_000)
        .with_slow_exec(Duration::from_millis(5));
    let (service, gateway) = boot(
        ServeConfig::default()
            .with_workers(1)
            .with_faults(plan.faults()),
    );
    let addr = gateway.local_addr();
    let handle = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        roundtrip(&mut stream, "POST", "/v1/infer", &[], INFER_BODY.as_bytes())
            .expect("request survives shutdown")
    });
    // Let the request get in flight, then shut the edge down.
    std::thread::sleep(Duration::from_millis(2));
    gateway.shutdown();
    let resp = handle.join().unwrap();
    assert_eq!(resp.status, 200, "in-flight request completed during drain");
    assert_eq!(
        resp.header("connection"),
        Some("close"),
        "drain tells the client the connection is done"
    );
    let service = Arc::try_unwrap(service).ok().expect("unshared");
    let metrics = service.shutdown().metrics;
    assert_eq!(metrics.resolved(), metrics.submitted);
}

#[test]
fn concurrent_metrics_and_profile_scrapes_stay_consistent() {
    const SCRAPES: usize = 12;
    let profiler = Profiler::new();
    let (service, gateway) = boot(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_depth(256)
            .with_profiler(Some(profiler.clone())),
    );
    let addr = gateway.local_addr();
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // Live traffic for the whole scrape window.
        let stop_ref = &stop;
        let mut traffic = Vec::new();
        for _ in 0..2 {
            traffic.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                while !stop_ref.load(Ordering::Relaxed) {
                    let resp = roundtrip(
                        &mut stream,
                        "POST",
                        "/v1/infer",
                        &[("Content-Type", "application/json")],
                        INFER_BODY.as_bytes(),
                    )
                    .expect("roundtrip");
                    assert_eq!(resp.status, 200, "body: {}", resp.text());
                }
            }));
        }
        // One scraper per debug endpoint, concurrent with the traffic and
        // with each other.
        let metrics_scraper = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            for _ in 0..SCRAPES {
                let resp = roundtrip(&mut stream, "GET", "/metrics", &[], b"").expect("scrape");
                assert_eq!(resp.status, 200);
                // Chunked reassembly must yield whole exposition lines:
                // every sample line is `series<space>value`.
                for line in resp.text().lines() {
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    let (series, value) = line
                        .rsplit_once(' ')
                        .unwrap_or_else(|| panic!("torn exposition line: {line:?}"));
                    assert!(!series.is_empty(), "torn exposition line: {line:?}");
                    assert!(
                        value.parse::<f64>().is_ok(),
                        "torn exposition line: {line:?}"
                    );
                }
            }
        });
        let profile_scraper = scope.spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut last_total = 0.0f64;
            for _ in 0..SCRAPES {
                let resp =
                    roundtrip(&mut stream, "GET", "/debug/profile", &[], b"").expect("scrape");
                assert_eq!(resp.status, 200);
                let value = json::parse(resp.text()).expect("profile JSON parses");
                let total = value
                    .get("total_self_us")
                    .and_then(JsonValue::as_f64)
                    .expect("total_self_us");
                assert!(
                    total >= last_total,
                    "profiler totals went backwards: {last_total} -> {total}"
                );
                last_total = total;
                let resp = roundtrip(
                    &mut stream,
                    "GET",
                    "/debug/profile?format=collapsed",
                    &[],
                    b"",
                )
                .expect("scrape");
                assert_eq!(resp.status, 200);
                for line in resp.text().lines() {
                    let (frames, count) = line.rsplit_once(' ').expect("collapsed line");
                    assert_eq!(
                        frames.split(';').count(),
                        3,
                        "plan;group;op frames: {line:?}"
                    );
                    count.parse::<u64>().expect("collapsed count is an integer");
                }
            }
        });
        metrics_scraper.join().unwrap();
        profile_scraper.join().unwrap();
        stop.store(true, Ordering::Relaxed);
        for t in traffic {
            t.join().unwrap();
        }
    });
    // With always-on profiling and live traffic, the table saw the plan.
    assert!(
        !profiler.snapshot().entries.is_empty(),
        "profiler recorded nothing during live traffic"
    );
    teardown(service, gateway);
}
