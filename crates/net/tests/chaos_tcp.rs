//! Network-edge chaos: seeded fault schedules driven through real TCP
//! clients with per-request deadlines.
//!
//! Each round boots a service under a seeded [`FaultPlan`] combining
//! worker panics, slow executions, admission bursts, and compile panics,
//! puts the gateway in front, and fires concurrent clients that carry
//! `Timeout-Ms` deadlines. Every response must be one of the typed
//! outcomes (200 / 429 / 500 / 503 / 504 with a JSON `kind`), and after
//! every round the service ledger must reconcile exactly:
//! `resolved() == submitted` — the network edge hides nothing.

use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use tssa_backend::RtValue;
use tssa_net::{roundtrip, Gateway, GatewayConfig};
use tssa_obs::json::{self, JsonValue};
use tssa_serve::{
    silence_injected_panics_for_tests, BatchSpec, FaultKind, FaultPlan, PipelineKind, ServeConfig,
    ServeError, Service,
};
use tssa_tensor::Tensor;

const ROUNDS: u64 = 12;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 6;
const SOURCE: &str =
    "def f(x: Tensor):\n    y = x.clone()\n    y[:, 0:1] = sigmoid(x[:, 0:1])\n    return y\n";
const INFER_BODY: &str = r#"{"model": "m", "inputs": [{"tensor": {"shape": [2, 4],
    "data": [1, 1, 1, 1, 1, 1, 1, 1]}}]}"#;

#[derive(Default)]
struct Totals {
    ok: u64,
    shed: u64,
    deadline: u64,
    injected: u64,
}

fn chaos_round(seed: u64, totals: &mut Totals) {
    let plan = FaultPlan::seeded(seed)
        .with_rate(FaultKind::WorkerPanic, 0.05, 32)
        .with_rate(FaultKind::QueueFullBurst, 0.10, 32)
        .with_rate(FaultKind::CompilePanic, 0.30, 3)
        .with_rate(FaultKind::SlowExec, 0.45, 64)
        .with_slow_exec(Duration::from_millis(3));
    let faults = plan.faults();
    let service = Arc::new(Service::new(
        ServeConfig::default()
            .with_workers(2)
            .with_queue_depth(8)
            .with_max_batch(4)
            .with_max_wait(Duration::from_micros(500))
            .with_timeout_grace(Duration::from_millis(2))
            .with_faults(faults.clone()),
    ));
    let example = vec![RtValue::Tensor(Tensor::ones(&[2, 4]))];
    // CompilePanic surfaces as a typed error on load; retry past the
    // schedule's finite horizon.
    let model = loop {
        match service
            .loader(SOURCE)
            .pipeline(PipelineKind::TensorSsa)
            .example(&example)
            .batch(BatchSpec::stacked(1, 1))
            .load()
        {
            Ok(m) => break m,
            Err(ServeError::CompilePanic) => continue,
            Err(other) => panic!("seed {seed}: load failed: {other}"),
        }
    };
    let gateway =
        Gateway::bind(GatewayConfig::default(), Arc::clone(&service)).expect("bind gateway");
    gateway.register_model("m", model);
    let addr = gateway.local_addr();

    let (ok, shed, deadline) = std::thread::scope(|scope| {
        let mut joins = Vec::new();
        for client in 0..CLIENTS {
            joins.push(scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let (mut ok, mut shed, mut deadline) = (0u64, 0u64, 0u64);
                for i in 0..PER_CLIENT {
                    // Deadlines from 3ms to 8ms: tight enough that slow
                    // executions blow through them, loose enough that the
                    // fast path completes.
                    let ms = (3 + (client + i) % 6).to_string();
                    let resp = match roundtrip(
                        &mut stream,
                        "POST",
                        "/v1/infer",
                        &[("Timeout-Ms", &ms)],
                        INFER_BODY.as_bytes(),
                    ) {
                        Ok(resp) => resp,
                        // A refused/shed connection: reconnect and go on.
                        Err(_) => {
                            stream = TcpStream::connect(addr).expect("reconnect");
                            continue;
                        }
                    };
                    let body = json::parse(resp.text()).expect("JSON body");
                    match resp.status {
                        200 => {
                            assert_eq!(body.get("ok"), Some(&JsonValue::Bool(true)));
                            ok += 1;
                        }
                        429 => {
                            assert_eq!(
                                body.get("kind").and_then(JsonValue::as_str),
                                Some("queue_full"),
                                "seed {seed}: {}",
                                resp.text()
                            );
                            shed += 1;
                        }
                        504 => {
                            let kind = body.get("kind").and_then(JsonValue::as_str);
                            assert!(
                                kind == Some("deadline_exceeded") || kind == Some("timeout"),
                                "seed {seed}: {}",
                                resp.text()
                            );
                            deadline += 1;
                        }
                        503 | 500 => {
                            // Canceled (batch crashed twice / drain) or a
                            // typed internal error — still a JSON body.
                            assert!(body.get("kind").is_some(), "seed {seed}: {}", resp.text());
                        }
                        other => panic!("seed {seed}: unexpected status {other}: {}", resp.text()),
                    }
                }
                (ok, shed, deadline)
            }));
        }
        joins
            .into_iter()
            .map(|j| j.join().unwrap())
            .fold((0u64, 0u64, 0u64), |(a, b, c), (x, y, z)| {
                (a + x, b + y, c + z)
            })
    });

    gateway.shutdown();
    let service = Arc::try_unwrap(service).ok().expect("service unshared");
    let metrics = service.shutdown().metrics;
    let plan = faults.plan().expect("plan installed");
    assert_eq!(
        metrics.resolved(),
        metrics.submitted,
        "seed {seed}: the edge must not hide dropped requests\n{metrics}"
    );
    assert_eq!(
        metrics.completed, ok,
        "seed {seed}: HTTP 200s disagree with the completed counter"
    );
    totals.ok += ok;
    totals.shed += shed;
    totals.deadline += deadline;
    totals.injected += plan.injected_total();
}

/// One scripted round that guarantees a deadline outcome regardless of
/// host load: every execution sleeps 5ms while the client allows 1ms
/// (+2ms grace), so no request can possibly complete in time. Sleeps only
/// ever get longer under contention, so this stays deterministic when the
/// whole workspace test suite competes for the machine.
fn deadline_round(totals: &mut Totals) {
    let faults = FaultPlan::seeded(99)
        .with_rate(FaultKind::SlowExec, 1.0, 1_000_000)
        .with_slow_exec(Duration::from_millis(5))
        .faults();
    let service = Arc::new(Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_timeout_grace(Duration::from_millis(2))
            .with_faults(faults),
    ));
    let example = vec![RtValue::Tensor(Tensor::ones(&[2, 4]))];
    let model = service
        .loader(SOURCE)
        .pipeline(PipelineKind::TensorSsa)
        .example(&example)
        .batch(BatchSpec::stacked(1, 1))
        .load()
        .expect("no compile faults scripted");
    let gateway =
        Gateway::bind(GatewayConfig::default(), Arc::clone(&service)).expect("bind gateway");
    gateway.register_model("m", model);
    let mut stream = TcpStream::connect(gateway.local_addr()).expect("connect");
    for _ in 0..4 {
        let resp = roundtrip(
            &mut stream,
            "POST",
            "/v1/infer",
            &[("Timeout-Ms", "1")],
            INFER_BODY.as_bytes(),
        )
        .expect("round trip");
        assert_eq!(resp.status, 504, "5ms exec cannot beat a 1ms deadline");
        let body = json::parse(resp.text()).expect("JSON body");
        let kind = body.get("kind").and_then(JsonValue::as_str);
        assert!(kind == Some("deadline_exceeded") || kind == Some("timeout"));
        totals.deadline += 1;
    }
    drop(stream);
    gateway.shutdown();
    let service = Arc::try_unwrap(service).ok().expect("service unshared");
    let metrics = service.shutdown().metrics;
    assert_eq!(metrics.resolved(), metrics.submitted, "{metrics}");
}

#[test]
fn tcp_chaos_rounds_resolve_every_request() {
    silence_injected_panics_for_tests();
    let mut totals = Totals::default();
    for seed in 0..ROUNDS {
        chaos_round(seed, &mut totals);
    }
    deadline_round(&mut totals);
    // The suite must actually exercise the interesting paths, not just
    // happen to pass.
    assert!(totals.ok > 0, "no request ever succeeded");
    assert!(totals.injected > 0, "no fault was ever injected");
    assert!(
        totals.deadline > 0,
        "no deadline ever fired (ok={}, shed={})",
        totals.ok,
        totals.shed
    );
}
