//! Tensor alias analysis (§2.3 of the TensorSSA paper).
//!
//! Builds the *alias graph*: a directed acyclic points-to structure whose
//! edges record three dependency kinds between IR values:
//!
//! 1. **memory** — `p` is a view of `q` (`p = q[i]`);
//! 2. **control flow** — `p` is a block argument of `q`, or `q` is a block
//!    return of `p`;
//! 3. **container** — a compound structure `q` contains `p` (`q = [p]`).
//!
//! From the alias graph, [`AliasAnalysis::candidates`] extracts the
//! functionalization candidates `T = (t, V, M)` of Equation (1)–(2): the
//! alias components that consist *solely of memory dependencies* — exactly
//! the sub-graphs the TensorSSA conversion pass handles — together with the
//! origin tensor `t` owning the storage, the view set `V` and the mutation
//! set `M`.
//!
//! # Examples
//!
//! ```
//! use tssa_ir::{Graph, Op, Type, ViewKind, MutateKind};
//! use tssa_alias::AliasAnalysis;
//!
//! let mut g = Graph::new();
//! let x = g.add_input("x", Type::Tensor);
//! let cl = g.append(g.top(), Op::CloneOp, &[x], &[Type::Tensor]);
//! let base = g.out(cl);
//! let i = g.constant_int(0);
//! let sel = g.append(g.top(), Op::View(ViewKind::Select { dim: 0 }), &[base, i], &[Type::Tensor]);
//! let v = g.out(sel);
//! g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
//!
//! let analysis = AliasAnalysis::build(&g);
//! assert!(analysis.may_alias(v, base));
//! assert!(analysis.must_alias(v, base));
//! assert_eq!(analysis.candidates().len(), 1);
//! assert_eq!(analysis.candidates()[0].origin, base);
//! ```

use std::collections::{HashMap, HashSet};

use tssa_ir::{Graph, NodeId, Op, Type, ValueDef, ValueId};

/// Kind of a points-to edge (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// `from` is a view of `to` (also used for the identity alias between a
    /// mutation's output and its receiver).
    Memory,
    /// Alias induced by block arguments / returns of control-flow nodes.
    ControlFlow,
    /// Alias induced by containers (lists).
    Container,
}

/// A directed points-to edge `from → to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointsTo {
    /// Aliasing value.
    pub from: ValueId,
    /// Value pointed to (the base / container / cross-block twin).
    pub to: ValueId,
    /// Dependency kind.
    pub kind: DepKind,
}

/// A functionalization candidate `T = (t, V, M)` (Equation 1–2).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The origin tensor `t` owning the storage.
    pub origin: ValueId,
    /// View nodes whose outputs lie in the reachability of `t` (the set `V`,
    /// keyed by defining node).
    pub views: Vec<NodeId>,
    /// Mutation nodes whose receiver aliases `t` (the set `M`).
    pub mutations: Vec<NodeId>,
}

/// The alias graph of one IR [`Graph`] plus derived queries.
#[derive(Debug, Clone)]
pub struct AliasAnalysis {
    edges: Vec<PointsTo>,
    /// memory-edge target per value (single points-to edge ⇒ must alias).
    memory_base: HashMap<ValueId, ValueId>,
    /// union-find component representative over *all* edges.
    component: HashMap<ValueId, ValueId>,
    candidates: Vec<Candidate>,
}

impl AliasAnalysis {
    /// Build the alias graph and extract functionalization candidates.
    pub fn build(graph: &Graph) -> AliasAnalysis {
        let mut edges = Vec::new();
        let nodes = graph.nodes_recursive(graph.top());
        for &n in &nodes {
            let node = graph.node(n);
            match &node.op {
                Op::View(_) => {
                    edges.push(PointsTo {
                        from: node.outputs[0],
                        to: node.inputs[0],
                        kind: DepKind::Memory,
                    });
                }
                Op::Mutate(_) => {
                    if let Some(&out) = node.outputs.first() {
                        edges.push(PointsTo {
                            from: out,
                            to: node.inputs[0],
                            kind: DepKind::Memory,
                        });
                    }
                }
                Op::ListConstruct => {
                    for &inp in &node.inputs {
                        if graph.value(inp).ty == Type::Tensor {
                            edges.push(PointsTo {
                                from: inp,
                                to: node.outputs[0],
                                kind: DepKind::Container,
                            });
                        }
                    }
                }
                Op::ListUnpack => {
                    for &out in &node.outputs {
                        if graph.value(out).ty == Type::Tensor {
                            edges.push(PointsTo {
                                from: out,
                                to: node.inputs[0],
                                kind: DepKind::Container,
                            });
                        }
                    }
                }
                Op::If => {
                    // Outputs alias the corresponding returns of both blocks.
                    for &b in &node.blocks {
                        for (i, &r) in graph.block(b).returns.iter().enumerate() {
                            if graph.value(r).ty == Type::Tensor {
                                edges.push(PointsTo {
                                    from: node.outputs[i],
                                    to: r,
                                    kind: DepKind::ControlFlow,
                                });
                            }
                        }
                    }
                }
                Op::Loop => {
                    // Carried params alias initial inputs and body returns;
                    // outputs alias body returns.
                    let body = node.blocks[0];
                    let params = graph.block(body).params.clone();
                    let returns = graph.block(body).returns.clone();
                    for (k, &p) in params.iter().enumerate().skip(1) {
                        if graph.value(p).ty != Type::Tensor {
                            continue;
                        }
                        let init = node.inputs[1 + k]; // inputs: (n, cond, carried…)
                        edges.push(PointsTo {
                            from: p,
                            to: init,
                            kind: DepKind::ControlFlow,
                        });
                        edges.push(PointsTo {
                            from: p,
                            to: returns[k], // returns: (cond, carried…)
                            kind: DepKind::ControlFlow,
                        });
                        edges.push(PointsTo {
                            from: node.outputs[k - 1],
                            to: returns[k],
                            kind: DepKind::ControlFlow,
                        });
                    }
                }
                _ => {}
            }
        }

        // Union-find over all edges.
        let mut parent: HashMap<ValueId, ValueId> = HashMap::new();
        fn find(parent: &mut HashMap<ValueId, ValueId>, v: ValueId) -> ValueId {
            let p = *parent.entry(v).or_insert(v);
            if p == v {
                v
            } else {
                let r = find(parent, p);
                parent.insert(v, r);
                r
            }
        }
        for e in &edges {
            let a = find(&mut parent, e.from);
            let b = find(&mut parent, e.to);
            if a != b {
                parent.insert(a, b);
            }
        }
        let keys: Vec<ValueId> = parent.keys().copied().collect();
        let mut component = HashMap::new();
        for k in keys {
            let r = find(&mut parent, k);
            component.insert(k, r);
        }

        let memory_base: HashMap<ValueId, ValueId> = edges
            .iter()
            .filter(|e| e.kind == DepKind::Memory)
            .map(|e| (e.from, e.to))
            .collect();

        let mut analysis = AliasAnalysis {
            edges,
            memory_base,
            component,
            candidates: Vec::new(),
        };
        analysis.candidates = analysis.extract_candidates(graph);
        analysis
    }

    /// All points-to edges.
    pub fn edges(&self) -> &[PointsTo] {
        &self.edges
    }

    /// Whether two tensor values may reference overlapping storage.
    pub fn may_alias(&self, a: ValueId, b: ValueId) -> bool {
        if a == b {
            return true;
        }
        match (self.component.get(&a), self.component.get(&b)) {
            (Some(ra), Some(rb)) => ra == rb,
            _ => false,
        }
    }

    /// Whether two values *must* alias: one reaches the other following the
    /// (single-target) memory edges.
    pub fn must_alias(&self, a: ValueId, b: ValueId) -> bool {
        self.reaches_by_memory(a, b) || self.reaches_by_memory(b, a)
    }

    fn reaches_by_memory(&self, mut from: ValueId, to: ValueId) -> bool {
        loop {
            if from == to {
                return true;
            }
            match self.memory_base.get(&from) {
                Some(&next) => from = next,
                None => return false,
            }
        }
    }

    /// The representative of `v`'s alias component (union-find over *all*
    /// edge kinds). Values that never alias anything are their own
    /// representative. Two values share a component iff they
    /// [`AliasAnalysis::may_alias`].
    pub fn component_of(&self, v: ValueId) -> ValueId {
        self.component.get(&v).copied().unwrap_or(v)
    }

    /// The storage origin of a value: the end of its memory chain.
    pub fn origin_of(&self, v: ValueId) -> ValueId {
        let mut cur = v;
        while let Some(&next) = self.memory_base.get(&cur) {
            cur = next;
        }
        cur
    }

    /// The functionalization candidates (memory-dependency-only alias
    /// components with at least one mutation and a safely-owned origin).
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    fn extract_candidates(&self, graph: &Graph) -> Vec<Candidate> {
        let mut members: HashMap<ValueId, Vec<ValueId>> = HashMap::new();
        for (&v, &rep) in &self.component {
            members.entry(rep).or_default().push(v);
        }
        // Components with any non-memory edge are ineligible.
        let mut tainted: HashSet<ValueId> = HashSet::new();
        for e in &self.edges {
            if e.kind != DepKind::Memory {
                if let Some(&rep) = self.component.get(&e.from) {
                    tainted.insert(rep);
                }
            }
        }
        let mut out = Vec::new();
        let mut reps: Vec<ValueId> = members.keys().copied().collect();
        reps.sort();
        'comp: for rep in reps {
            if tainted.contains(&rep) {
                continue;
            }
            let vals = &members[&rep];
            let origins: Vec<ValueId> = vals
                .iter()
                .copied()
                .filter(|v| !self.memory_base.contains_key(v))
                .collect();
            if origins.len() != 1 {
                continue;
            }
            let origin = origins[0];
            // The origin must own fresh storage: defined by a pure non-view
            // node (clone, zeros, arithmetic, …) — not a graph input or
            // block parameter, whose storage belongs to the caller or to the
            // loop carrying it.
            let owned = match graph.value(origin).def {
                ValueDef::BlockParam { .. } => false,
                ValueDef::NodeOut { node, .. } => {
                    let op = &graph.node(node).op;
                    !op.is_view() && !op.is_mutation() && op.is_pure()
                }
            };
            if !owned {
                continue;
            }
            let mut views = Vec::new();
            let mut mutations = Vec::new();
            let member_set: HashSet<ValueId> = vals.iter().copied().collect();
            for n in graph.nodes_recursive(graph.top()) {
                let node = graph.node(n);
                match &node.op {
                    Op::View(_) if member_set.contains(&node.outputs[0]) => {
                        views.push(n);
                    }
                    Op::Mutate(_) if member_set.contains(&node.inputs[0]) => {
                        // The receiver's own view must support mutation
                        // (stride-0 expand views are rejected).
                        if let Some(def) = graph.def_node(node.inputs[0]) {
                            if let Op::View(k) = &graph.node(def).op {
                                if !k.supports_mutation() {
                                    continue 'comp;
                                }
                            }
                        }
                        mutations.push(n);
                    }
                    _ => {}
                }
            }
            if mutations.is_empty() {
                continue;
            }
            out.push(Candidate {
                origin,
                views,
                mutations,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::{ConstValue, MutateKind, ViewKind};

    fn cloned_base(g: &mut Graph) -> ValueId {
        let x = g.add_input("x", Type::Tensor);
        let cl = g.append(g.top(), Op::CloneOp, &[x], &[Type::Tensor]);
        g.out(cl)
    }

    #[test]
    fn view_chain_is_must_alias() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let i = g.constant_int(0);
        let s1 = g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let v1 = g.out(s1);
        let s2 = g.append(
            g.top(),
            Op::View(ViewKind::Unsqueeze { dim: 0 }),
            &[v1],
            &[Type::Tensor],
        );
        let v2 = g.out(s2);
        g.append(
            g.top(),
            Op::Mutate(MutateKind::Relu),
            &[v1],
            &[Type::Tensor],
        );
        let a = AliasAnalysis::build(&g);
        assert!(a.must_alias(v2, base));
        assert!(a.must_alias(v1, v2));
        assert!(a.may_alias(v1, base));
        assert_eq!(a.origin_of(v2), base);
    }

    #[test]
    fn unrelated_tensors_do_not_alias() {
        let mut g = Graph::new();
        let a = cloned_base(&mut g);
        let y = g.add_input("y", Type::Tensor);
        let b = g.append(g.top(), Op::Relu, &[y], &[Type::Tensor]);
        let bv = g.out(b);
        let analysis = AliasAnalysis::build(&g);
        assert!(!analysis.may_alias(a, bv));
        assert!(!analysis.must_alias(a, bv));
    }

    #[test]
    fn candidate_requires_mutation() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let i = g.constant_int(0);
        g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let a = AliasAnalysis::build(&g);
        assert!(a.candidates().is_empty());
    }

    #[test]
    fn graph_input_origin_is_rejected() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let i = g.constant_int(0);
        let s = g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 0 }),
            &[x, i],
            &[Type::Tensor],
        );
        let v = g.out(s);
        g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let a = AliasAnalysis::build(&g);
        assert!(a.candidates().is_empty());
    }

    #[test]
    fn container_dependency_taints_component() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let i = g.constant_int(0);
        let s = g.append(
            g.top(),
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let v = g.out(s);
        g.append(
            g.top(),
            Op::ListConstruct,
            &[v],
            &[Type::List(Box::new(Type::Tensor))],
        );
        g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let a = AliasAnalysis::build(&g);
        assert!(a.candidates().is_empty());
    }

    #[test]
    fn mutation_inside_loop_body_is_memory_only() {
        // Figure 4 shape: base cloned outside, view+mutate inside the loop
        // body referencing the outer tensor directly (no carried value).
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let n = g.add_input("n", Type::Int);
        let t = g.constant_bool(true);
        let lp = g.append(g.top(), Op::Loop, &[n, t], &[]);
        let body = g.add_node_block(lp);
        let i = g.add_block_param(body, Type::Int);
        let sel = g.append(
            body,
            Op::View(ViewKind::Select { dim: 0 }),
            &[base, i],
            &[Type::Tensor],
        );
        let v = g.out(sel);
        g.append(body, Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let cond = g.constant_in(body, ConstValue::Bool(true));
        g.set_returns(body, &[cond]);
        assert!(g.verify().is_ok(), "{:?}", g.verify());
        let a = AliasAnalysis::build(&g);
        assert_eq!(a.candidates().len(), 1);
        assert_eq!(a.candidates()[0].origin, base);
        assert_eq!(a.candidates()[0].mutations.len(), 1);
    }

    #[test]
    fn loop_carried_tensor_has_control_flow_edges() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let n = g.add_input("n", Type::Int);
        let t = g.constant_bool(true);
        let lp = g.append(g.top(), Op::Loop, &[n, t, base], &[Type::Tensor]);
        let body = g.add_node_block(lp);
        let _i = g.add_block_param(body, Type::Int);
        let c = g.add_block_param(body, Type::Tensor);
        let idx = g.constant_in(body, ConstValue::Int(0));
        let sel = g.append(
            body,
            Op::View(ViewKind::Select { dim: 0 }),
            &[c, idx],
            &[Type::Tensor],
        );
        let v = g.out(sel);
        g.append(body, Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let cond = g.constant_in(body, ConstValue::Bool(true));
        g.set_returns(body, &[cond, c]);
        let a = AliasAnalysis::build(&g);
        // The carried tensor's component has control-flow edges: excluded.
        assert!(a.candidates().is_empty());
        assert!(a.may_alias(base, c));
    }

    #[test]
    fn mutation_through_expand_rejected() {
        let mut g = Graph::new();
        let base = cloned_base(&mut g);
        let e = g.append(
            g.top(),
            Op::View(ViewKind::Expand { shape: vec![4, -1] }),
            &[base],
            &[Type::Tensor],
        );
        let v = g.out(e);
        g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        let a = AliasAnalysis::build(&g);
        assert!(a.candidates().is_empty());
    }

    #[test]
    fn two_independent_components() {
        let mut g = Graph::new();
        let a = cloned_base(&mut g);
        let y = g.add_input("y", Type::Tensor);
        let cl = g.append(g.top(), Op::CloneOp, &[y], &[Type::Tensor]);
        let b = g.out(cl);
        let i = g.constant_int(0);
        for base in [a, b] {
            let s = g.append(
                g.top(),
                Op::View(ViewKind::Select { dim: 0 }),
                &[base, i],
                &[Type::Tensor],
            );
            let v = g.out(s);
            g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
        }
        let analysis = AliasAnalysis::build(&g);
        assert_eq!(analysis.candidates().len(), 2);
        assert!(!analysis.may_alias(a, b));
    }

    #[test]
    fn if_output_aliases_branch_returns() {
        let mut g = Graph::new();
        let x = g.add_input("x", Type::Tensor);
        let c = g.constant_bool(true);
        let iff = g.append(g.top(), Op::If, &[c], &[Type::Tensor]);
        let tb = g.add_node_block(iff);
        let eb = g.add_node_block(iff);
        let t1 = g.append(tb, Op::Relu, &[x], &[Type::Tensor]);
        let tv = g.out(t1);
        g.set_returns(tb, &[tv]);
        g.set_returns(eb, &[x]);
        let out = g.out(iff);
        let a = AliasAnalysis::build(&g);
        assert!(a.may_alias(out, tv));
        assert!(a.may_alias(out, x));
        assert!(!a.must_alias(out, tv));
    }
}
