//! Alias-analysis edge cases: deep chains, diamond view patterns, multiple
//! mutation sites, and mixed dependency kinds.

use tssa_alias::{AliasAnalysis, DepKind};
use tssa_ir::{parse_graph, Graph, ValueId};

fn value_named(g: &Graph, name: &str) -> ValueId {
    (0..g.value_count())
        .map(ValueId::from_index)
        .find(|&v| g.value_name(v) == format!("%{name}"))
        .unwrap_or_else(|| panic!("no value named %{name}"))
}

#[test]
fn diamond_views_share_one_origin() {
    let g = parse_graph(
        "graph(%x : Tensor):
           %b : Tensor = aten::clone(%x)
           %i : int = prim::Constant[value=0]()
           %j : int = prim::Constant[value=1]()
           %l : Tensor = aten::select[dim=0](%b, %i)
           %r : Tensor = aten::select[dim=0](%b, %j)
           %ll : Tensor = aten::unsqueeze[dim=0](%l)
           %rr : Tensor = aten::unsqueeze[dim=0](%r)
           %m : Tensor = aten::relu_(%ll)
           return (%rr)",
    )
    .unwrap();
    let a = AliasAnalysis::build(&g);
    let b = value_named(&g, "b");
    let ll = value_named(&g, "ll");
    let rr = value_named(&g, "rr");
    // Both branches of the diamond alias the base and each other (may).
    assert!(a.must_alias(ll, b));
    assert!(a.must_alias(rr, b));
    assert!(a.may_alias(ll, rr));
    assert_eq!(a.origin_of(ll), b);
    assert_eq!(a.origin_of(rr), b);
    // One candidate: the whole diamond is one memory-only component.
    assert_eq!(a.candidates().len(), 1);
    let c = &a.candidates()[0];
    assert_eq!(c.origin, b);
    assert_eq!(c.views.len(), 4);
    assert_eq!(c.mutations.len(), 1);
}

#[test]
fn five_deep_view_chain() {
    let g = parse_graph(
        "graph(%x : Tensor):
           %b : Tensor = aten::clone(%x)
           %i : int = prim::Constant[value=0]()
           %v1 : Tensor = aten::unsqueeze[dim=0](%b)
           %v2 : Tensor = aten::unsqueeze[dim=0](%v1)
           %v3 : Tensor = aten::transpose[dim0=0, dim1=1](%v2)
           %v4 : Tensor = aten::squeeze[dim=1](%v3)
           %v5 : Tensor = aten::select[dim=0](%v4, %i)
           %m : Tensor = aten::sigmoid_(%v5)
           return (%b)",
    )
    .unwrap();
    let a = AliasAnalysis::build(&g);
    let b = value_named(&g, "b");
    let v5 = value_named(&g, "v5");
    assert!(a.must_alias(v5, b));
    assert_eq!(a.origin_of(v5), b);
    assert_eq!(a.candidates().len(), 1);
    assert_eq!(a.candidates()[0].views.len(), 5);
}

#[test]
fn mutation_output_extends_the_chain() {
    // The mutation's returned alias is itself a member of the component.
    let g = parse_graph(
        "graph(%x : Tensor):
           %b : Tensor = aten::clone(%x)
           %m : Tensor = aten::relu_(%b)
           %i : int = prim::Constant[value=0]()
           %v : Tensor = aten::select[dim=0](%m, %i)
           %m2 : Tensor = aten::tanh_(%v)
           return (%b)",
    )
    .unwrap();
    let a = AliasAnalysis::build(&g);
    let b = value_named(&g, "b");
    let v = value_named(&g, "v");
    assert!(a.must_alias(v, b));
    assert_eq!(a.origin_of(v), b);
}

#[test]
fn edge_kinds_are_classified() {
    let g = parse_graph(
        "graph(%x : Tensor, %c : bool):
           %i : int = prim::Constant[value=0]()
           %v : Tensor = aten::select[dim=0](%x, %i)
           %l : Tensor[] = prim::ListConstruct(%v)
           %o : Tensor = prim::If(%c)
             block0():
               -> (%v)
             block1():
               -> (%x)
           return (%o)",
    )
    .unwrap();
    let a = AliasAnalysis::build(&g);
    let kinds: Vec<DepKind> = a.edges().iter().map(|e| e.kind).collect();
    assert!(kinds.contains(&DepKind::Memory));
    assert!(kinds.contains(&DepKind::Container));
    assert!(kinds.contains(&DepKind::ControlFlow));
}

#[test]
fn separate_clones_of_same_input_stay_separate() {
    let g = parse_graph(
        "graph(%x : Tensor):
           %a : Tensor = aten::clone(%x)
           %b : Tensor = aten::clone(%x)
           %i : int = prim::Constant[value=0]()
           %va : Tensor = aten::select[dim=0](%a, %i)
           %vb : Tensor = aten::select[dim=0](%b, %i)
           %m1 : Tensor = aten::relu_(%va)
           %m2 : Tensor = aten::relu_(%vb)
           return (%a, %b)",
    )
    .unwrap();
    let a_val = value_named(&g, "a");
    let b_val = value_named(&g, "b");
    let analysis = AliasAnalysis::build(&g);
    assert!(!analysis.may_alias(a_val, b_val));
    assert_eq!(analysis.candidates().len(), 2);
}

#[test]
fn origin_of_unaliased_value_is_itself() {
    let g = parse_graph(
        "graph(%x : Tensor):
           %y : Tensor = aten::relu(%x)
           return (%y)",
    )
    .unwrap();
    let a = AliasAnalysis::build(&g);
    let y = value_named(&g, "y");
    assert_eq!(a.origin_of(y), y);
    assert!(a.may_alias(y, y));
}
