//! Property-based invariants of [`AliasAnalysis`] over random graphs.
//!
//! Each case builds a random imperative graph — clones, view chains,
//! mutations, the occasional list or loop to taint components — from a
//! seed, then checks structural facts that must hold for *any* graph:
//!
//! 1. `must_alias(a, b)` implies `may_alias(a, b)` (must is a refinement).
//! 2. Every candidate's component contains only `Memory` points-to edges
//!    (Equation (1): candidates are memory-dependency-only components).
//! 3. Candidates are pairwise disjoint: no value (origin, view output or
//!    mutation receiver) belongs to two candidates.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tssa_alias::{AliasAnalysis, DepKind};
use tssa_ir::{ConstValue, Graph, MutateKind, Op, Type, ValueId, ViewKind};

/// Build a random graph from `seed`: a few base tensors (inputs and
/// clones), random view chains off random tensors, random mutations, and
/// sometimes a list construction or a loop-carried tensor to introduce
/// non-memory edges.
fn random_alias_graph(seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let x = g.add_input("x", Type::Tensor);
    let y = g.add_input("y", Type::Tensor);
    let mut tensors: Vec<ValueId> = vec![x, y];

    let steps = rng.gen_range(2usize..12);
    for _ in 0..steps {
        let pick = tensors[rng.gen_range(0..tensors.len())];
        match rng.gen_range(0u32..10) {
            // Fresh storage: clone or a pure unary.
            0 | 1 => {
                let n = g.append(g.top(), Op::CloneOp, &[pick], &[Type::Tensor]);
                tensors.push(g.out(n));
            }
            2 => {
                let n = g.append(g.top(), Op::Relu, &[pick], &[Type::Tensor]);
                tensors.push(g.out(n));
            }
            // A view off an existing tensor.
            3..=5 => {
                let kind = match rng.gen_range(0u32..4) {
                    0 => ViewKind::Select { dim: 0 },
                    1 => ViewKind::Transpose { dim0: 0, dim1: 1 },
                    2 => ViewKind::Unsqueeze { dim: 0 },
                    _ => ViewKind::Expand { shape: vec![2, -1] },
                };
                let extra = matches!(kind, ViewKind::Select { .. });
                let mut inputs = vec![pick];
                if extra {
                    inputs.push(g.constant_int(rng.gen_range(0i64..3)));
                }
                let n = g.append(g.top(), Op::View(kind), &inputs, &[Type::Tensor]);
                tensors.push(g.out(n));
            }
            // A mutation of an existing tensor.
            6 | 7 => {
                let kind = match rng.gen_range(0u32..3) {
                    0 => MutateKind::Relu,
                    1 => MutateKind::Sigmoid,
                    _ => MutateKind::Neg,
                };
                g.append(g.top(), Op::Mutate(kind), &[pick], &[Type::Tensor]);
            }
            // Container taint.
            8 => {
                g.append(
                    g.top(),
                    Op::ListConstruct,
                    &[pick],
                    &[Type::List(Box::new(Type::Tensor))],
                );
            }
            // Control-flow taint: a loop carrying the tensor.
            _ => {
                let n = g.constant_int(2);
                let t = g.constant_bool(true);
                let lp = g.append(g.top(), Op::Loop, &[n, t, pick], &[Type::Tensor]);
                let body = g.add_node_block(lp);
                let _i = g.add_block_param(body, Type::Int);
                let c = g.add_block_param(body, Type::Tensor);
                let cond = g.constant_in(body, ConstValue::Bool(true));
                g.set_returns(body, &[cond, c]);
                tensors.push(g.out(lp));
            }
        }
    }
    g
}

/// Every value the analysis knows about (edge endpoints), deduplicated.
fn known_values(a: &AliasAnalysis) -> Vec<ValueId> {
    let mut vals: Vec<ValueId> = a.edges().iter().flat_map(|e| [e.from, e.to]).collect();
    vals.sort();
    vals.dedup();
    vals
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn must_alias_implies_may_alias(seed in 0u64..10_000) {
        let g = random_alias_graph(seed);
        let a = AliasAnalysis::build(&g);
        let vals = known_values(&a);
        for &p in &vals {
            for &q in &vals {
                if a.must_alias(p, q) {
                    prop_assert!(
                        a.may_alias(p, q),
                        "seed {seed}: must_alias({p:?}, {q:?}) but not may_alias"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_components_are_memory_only(seed in 0u64..10_000) {
        let g = random_alias_graph(seed);
        let a = AliasAnalysis::build(&g);
        for cand in a.candidates() {
            let rep = a.component_of(cand.origin);
            for e in a.edges() {
                if a.component_of(e.from) == rep || a.component_of(e.to) == rep {
                    prop_assert_eq!(
                        e.kind,
                        DepKind::Memory,
                        "seed {}: candidate component of {:?} has a {:?} edge {:?} -> {:?}",
                        seed, cand.origin, e.kind, e.from, e.to
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_are_disjoint(seed in 0u64..10_000) {
        let g = random_alias_graph(seed);
        let a = AliasAnalysis::build(&g);
        let mut seen_values = std::collections::HashSet::new();
        let mut seen_nodes = std::collections::HashSet::new();
        for cand in a.candidates() {
            prop_assert!(
                seen_values.insert(cand.origin),
                "seed {seed}: origin {:?} in two candidates", cand.origin
            );
            for &v in &cand.views {
                prop_assert!(
                    seen_nodes.insert(v),
                    "seed {seed}: view node {:?} in two candidates", v
                );
            }
            for &m in &cand.mutations {
                prop_assert!(
                    seen_nodes.insert(m),
                    "seed {seed}: mutation node {:?} in two candidates", m
                );
            }
            // Components themselves must differ too.
            for other in a.candidates() {
                if other.origin != cand.origin {
                    prop_assert!(
                        a.component_of(other.origin) != a.component_of(cand.origin),
                        "seed {seed}: two candidates share a component"
                    );
                }
            }
        }
    }
}
