//! The four compilation pipelines compared in the paper's evaluation (§5.1).
//!
//! Each pipeline takes the imperative graph captured by the frontend and
//! produces a [`CompiledProgram`]: a transformed graph plus the framework
//! overhead profile the backend charges while executing it.
//!
//! | Pipeline | Model of | Behaviour |
//! |---|---|---|
//! | [`Eager`] | PyTorch eager | no transformation; Python dispatch per op |
//! | [`TorchScriptNnc`] | TorchScript + NNC | fuses pure elementwise regions; views and mutations act as fusion barriers; compiled control flow |
//! | [`TorchScriptNvfuser`] | TorchScript + nvFuser | as NNC with a more conservative fusion threshold |
//! | [`DynamoInductor`] | TorchDynamo + TorchInductor | functorch-style data-flow functionalization *within* blocks (no cross-control-flow versioning), fused codegen, but control flow stays in the Python interpreter (guard cost per entry) |
//! | [`TensorSsa`] | the paper's system | full Algorithm 1 conversion across control flow, access/assign fusion, horizontal loop parallelization, compiled control flow |
//!
//! # Examples
//!
//! ```
//! use tssa_pipelines::{Pipeline, TensorSsa, Eager};
//! use tssa_frontend::compile;
//! use tssa_backend::{DeviceProfile, RtValue};
//! use tssa_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = compile(
//!     "def f(b0: Tensor, n: int):
//!          b = b0.clone()
//!          for i in range(n):
//!              b[i] = sigmoid(b[i]) * 2.0
//!          return b
//! ")?;
//! let inputs = [RtValue::Tensor(Tensor::ones(&[8, 4])), RtValue::Int(8)];
//! let eager = Eager.compile(&g);
//! let ours = TensorSsa::default().compile(&g);
//! let (eo, es) = eager.run(DeviceProfile::consumer(), &inputs)?;
//! let (to, ts) = ours.run(DeviceProfile::consumer(), &inputs)?;
//! assert!(eo[0].as_tensor()?.allclose(to[0].as_tensor()?, 1e-5));
//! assert!(ts.kernel_launches < es.kernel_launches);
//! # Ok(())
//! # }
//! ```

use tssa_backend::{DeviceProfile, ExecConfig, ExecError, ExecStats, Executor, RtValue};
use tssa_core::passes::{
    constant_fold, cse, dce, licm, prune_loop_carries, purify_views, revert_unfused_accesses,
};
use tssa_core::{convert_to_tensorssa, convert_with_options, ConversionStats};
use tssa_fusion::{fuse_vertical, parallelize_loops, FusionConfig};
use tssa_ir::Graph;

/// A graph compiled by some pipeline, ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The (possibly transformed) graph.
    pub graph: Graph,
    /// Framework overheads charged during execution (device filled in at
    /// run time).
    pub exec_config: ExecConfig,
    /// Pipeline name for reports.
    pub pipeline: &'static str,
    /// What the compilation did (zeros for non-functionalizing pipelines).
    pub conversion: ConversionStats,
    /// Number of fusion groups created.
    pub fusion_groups: usize,
    /// Number of loops parallelized.
    pub parallel_loops: usize,
}

impl CompiledProgram {
    /// Execute on the given device profile.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the backend.
    pub fn run(
        &self,
        device: DeviceProfile,
        inputs: &[RtValue],
    ) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        self.run_with(self.exec_config.clone().with_device(device), inputs)
    }

    /// Execute under an explicit [`ExecConfig`], overriding the one the
    /// pipeline chose at compile time. Long-lived hosts use this to re-point
    /// the device or cap `parallel_threads` — e.g. a worker pool dividing
    /// the machine's cores between concurrent executions.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the backend.
    pub fn run_with(
        &self,
        exec_config: ExecConfig,
        inputs: &[RtValue],
    ) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        Executor::new(exec_config).run(&self.graph, inputs)
    }

    /// The pipeline's compile-time [`ExecConfig`] re-pointed at `device`:
    /// the starting point for [`CompiledProgram::run_with`] callers that
    /// tweak a single knob.
    pub fn exec_config_for(&self, device: DeviceProfile) -> ExecConfig {
        self.exec_config.clone().with_device(device)
    }
}

/// A compilation pipeline.
pub trait Pipeline {
    /// Display name, e.g. `"TensorSSA"`.
    fn name(&self) -> &'static str;
    /// Compile `graph` (the captured imperative program).
    fn compile(&self, graph: &Graph) -> CompiledProgram;
}

/// PyTorch eager mode: the baseline everything is normalized to (Figure 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct Eager;

impl Pipeline for Eager {
    fn name(&self) -> &'static str {
        "Eager"
    }

    fn compile(&self, graph: &Graph) -> CompiledProgram {
        CompiledProgram {
            graph: graph.clone(),
            exec_config: ExecConfig::eager(),
            pipeline: self.name(),
            conversion: ConversionStats::default(),
            fusion_groups: 0,
            parallel_loops: 0,
        }
    }
}

/// TorchScript with the NNC fuser: mutation and views are fusion barriers;
/// no functionalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchScriptNnc;

impl Pipeline for TorchScriptNnc {
    fn name(&self) -> &'static str {
        "TorchScript+NNC"
    }

    fn compile(&self, graph: &Graph) -> CompiledProgram {
        let mut g = graph.clone();
        constant_fold(&mut g);
        cse(&mut g);
        licm(&mut g);
        dce(&mut g);
        let cfg = FusionConfig {
            fuse_access_assign: false,
            ..FusionConfig::default()
        };
        let fusion_groups = fuse_vertical(&mut g, &cfg);
        CompiledProgram {
            graph: g,
            exec_config: ExecConfig::compiled(),
            pipeline: self.name(),
            conversion: ConversionStats::default(),
            fusion_groups,
            parallel_loops: 0,
        }
    }
}

/// TorchScript with nvFuser: modelled as NNC with a more conservative fusion
/// threshold (nvFuser declines small fusion groups).
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchScriptNvfuser;

impl Pipeline for TorchScriptNvfuser {
    fn name(&self) -> &'static str {
        "TorchScript+nvFuser"
    }

    fn compile(&self, graph: &Graph) -> CompiledProgram {
        let mut g = graph.clone();
        constant_fold(&mut g);
        cse(&mut g);
        licm(&mut g);
        dce(&mut g);
        let cfg = FusionConfig {
            min_group_size: 3,
            fuse_access_assign: false,
        };
        let fusion_groups = fuse_vertical(&mut g, &cfg);
        CompiledProgram {
            graph: g,
            exec_config: ExecConfig::compiled(),
            pipeline: self.name(),
            conversion: ConversionStats::default(),
            fusion_groups,
            parallel_loops: 0,
        }
    }
}

/// TorchDynamo + TorchInductor: data-flow functionalization (functorch) that
/// stops at control-flow boundaries, strong codegen inside compiled regions,
/// Python-resident control flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamoInductor;

impl Pipeline for DynamoInductor {
    fn name(&self) -> &'static str {
        "Dynamo+Inductor"
    }

    fn compile(&self, graph: &Graph) -> CompiledProgram {
        let mut g = graph.clone();
        // Non-holistic functionalization: components whose mutations cross a
        // control-flow boundary are left imperative (graph breaks).
        let conversion = convert_with_options(&mut g, false);
        purify_views(&mut g);
        constant_fold(&mut g);
        cse(&mut g);
        licm(&mut g);
        dce(&mut g);
        let fusion_groups = fuse_vertical(&mut g, &FusionConfig::default());
        revert_unfused_accesses(&mut g);
        CompiledProgram {
            graph: g,
            exec_config: ExecConfig::traced_python_control(),
            pipeline: self.name(),
            conversion,
            fusion_groups,
            parallel_loops: 0,
        }
    }
}

/// The paper's pipeline: holistic TensorSSA conversion, then vertical fusion
/// including access/assign, then horizontal loop parallelization.
#[derive(Debug, Clone, Copy)]
pub struct TensorSsa {
    /// Disable block propagation (ablation 1 in DESIGN.md).
    pub block_propagation: bool,
    /// Disable loop parallelization (ablation 2).
    pub horizontal: bool,
    /// Disable access/assign fusion (ablation 3).
    pub fuse_access_assign: bool,
}

impl Default for TensorSsa {
    fn default() -> Self {
        TensorSsa {
            block_propagation: true,
            horizontal: true,
            fuse_access_assign: true,
        }
    }
}

impl Pipeline for TensorSsa {
    fn name(&self) -> &'static str {
        "TensorSSA"
    }

    fn compile(&self, graph: &Graph) -> CompiledProgram {
        let mut g = graph.clone();
        let conversion = if self.block_propagation {
            convert_to_tensorssa(&mut g)
        } else {
            convert_with_options(&mut g, false)
        };
        purify_views(&mut g);
        constant_fold(&mut g);
        cse(&mut g);
        licm(&mut g);
        dce(&mut g);
        prune_loop_carries(&mut g);
        dce(&mut g);
        let parallel_loops = if self.horizontal {
            parallelize_loops(&mut g)
        } else {
            0
        };
        let cfg = FusionConfig {
            fuse_access_assign: self.fuse_access_assign,
            ..FusionConfig::default()
        };
        let fusion_groups = fuse_vertical(&mut g, &cfg);
        revert_unfused_accesses(&mut g);
        dce(&mut g);
        // A ParallelMap is one batched kernel occupying the whole device;
        // mirror that in the engine by running its iterations on all cores.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        CompiledProgram {
            graph: g,
            exec_config: ExecConfig::compiled().with_parallel_threads(threads),
            pipeline: self.name(),
            conversion,
            fusion_groups,
            parallel_loops,
        }
    }
}

/// The pipelines of Figure 5, in the paper's order.
pub fn all_pipelines() -> Vec<Box<dyn Pipeline>> {
    vec![
        Box::new(Eager),
        Box::new(TorchScriptNnc),
        Box::new(TorchScriptNvfuser),
        Box::new(DynamoInductor),
        Box::new(TensorSsa::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_frontend::compile;
    use tssa_tensor::Tensor;

    fn figure4() -> Graph {
        compile(
            "def f(b0: Tensor, n: int):
                 b = b0.clone()
                 for i in range(n):
                     b[i] = sigmoid(b[i]) * 2.0
                 return b
        ",
        )
        .unwrap()
    }

    fn run_all(g: &Graph, inputs: &[RtValue]) -> Vec<(String, Vec<RtValue>, ExecStats)> {
        all_pipelines()
            .iter()
            .map(|p| {
                let cp = p.compile(g);
                assert!(
                    cp.graph.verify().is_ok(),
                    "{}: {:?}",
                    p.name(),
                    cp.graph.verify()
                );
                let (o, s) = cp.run(DeviceProfile::consumer(), inputs).unwrap();
                (p.name().to_string(), o, s)
            })
            .collect()
    }

    #[test]
    fn all_pipelines_agree_numerically() {
        let g = figure4();
        let b = Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 42);
        let results = run_all(&g, &[RtValue::Tensor(b), RtValue::Int(8)]);
        let reference = results[0].1[0].as_tensor().unwrap().clone();
        for (name, outs, _) in &results {
            assert!(
                outs[0].as_tensor().unwrap().allclose(&reference, 1e-5),
                "{name} diverges from eager"
            );
        }
    }

    #[test]
    fn tensorssa_launches_fewest_kernels() {
        let g = figure4();
        let b = Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 1);
        let results = run_all(&g, &[RtValue::Tensor(b), RtValue::Int(8)]);
        let by_name = |n: &str| {
            results
                .iter()
                .find(|(name, ..)| name == n)
                .map(|(_, _, s)| s.kernel_launches)
                .unwrap()
        };
        let ours = by_name("TensorSSA");
        assert!(ours <= by_name("Eager"));
        assert!(ours <= by_name("TorchScript+NNC"));
        assert!(ours <= by_name("Dynamo+Inductor"));
        // Horizontal parallelization collapses the loop: the clone plus one
        // batched launch.
        assert_eq!(ours, 2, "{results:#?}");
    }

    #[test]
    fn tensorssa_is_fastest_on_loop_workload() {
        let g = figure4();
        let b = Tensor::rand_uniform(&[16, 8], -1.0, 1.0, 2);
        let results = run_all(&g, &[RtValue::Tensor(b), RtValue::Int(16)]);
        let ours = results.iter().find(|(n, ..)| n == "TensorSSA").unwrap().2;
        for (name, _, stats) in &results {
            if name != "TensorSSA" {
                assert!(
                    ours.total_ns() < stats.total_ns(),
                    "TensorSSA ({:.1}us) should beat {name} ({:.1}us)",
                    ours.total_us(),
                    stats.total_us()
                );
            }
        }
    }

    #[test]
    fn ablation_flags_change_behavior() {
        let g = figure4();
        let full = TensorSsa::default().compile(&g);
        let no_prop = TensorSsa {
            block_propagation: false,
            ..TensorSsa::default()
        }
        .compile(&g);
        let no_horizontal = TensorSsa {
            horizontal: false,
            ..TensorSsa::default()
        }
        .compile(&g);
        assert!(full.conversion.mutations_removed > 0);
        assert_eq!(no_prop.conversion.mutations_removed, 0);
        assert_eq!(full.parallel_loops, 1);
        assert_eq!(no_horizontal.parallel_loops, 0);
    }

    #[test]
    fn branchy_program_supported_by_all() {
        let g = compile(
            "def f(x: Tensor, c: bool):
                 b = x.clone()
                 if c:
                     b[0] = relu(b[0])
                 else:
                     b[0] = sigmoid(b[0])
                 return b
        ",
        )
        .unwrap();
        let x = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, 3);
        for cond in [true, false] {
            let results = run_all(&g, &[RtValue::Tensor(x.clone()), RtValue::Bool(cond)]);
            let reference = results[0].1[0].as_tensor().unwrap().clone();
            for (name, outs, _) in &results {
                assert!(
                    outs[0].as_tensor().unwrap().allclose(&reference, 1e-5),
                    "{name} diverges (cond={cond})"
                );
            }
        }
    }
}
