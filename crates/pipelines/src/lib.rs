//! The four compilation pipelines compared in the paper's evaluation (§5.1).
//!
//! Each pipeline takes the imperative graph captured by the frontend and
//! produces a [`CompiledProgram`]: a transformed graph plus the framework
//! overhead profile the backend charges while executing it.
//!
//! | Pipeline | Model of | Behaviour |
//! |---|---|---|
//! | [`Eager`] | PyTorch eager | no transformation; Python dispatch per op |
//! | [`TorchScriptNnc`] | TorchScript + NNC | fuses pure elementwise regions; views and mutations act as fusion barriers; compiled control flow |
//! | [`TorchScriptNvfuser`] | TorchScript + nvFuser | as NNC with a more conservative fusion threshold |
//! | [`DynamoInductor`] | TorchDynamo + TorchInductor | functorch-style data-flow functionalization *within* blocks (no cross-control-flow versioning), fused codegen, but control flow stays in the Python interpreter (guard cost per entry) |
//! | [`TensorSsa`] | the paper's system | full Algorithm 1 conversion across control flow, access/assign fusion, horizontal loop parallelization, compiled control flow |
//!
//! Every pipeline schedules its transformations through a
//! [`PassManager`], so each compile reports (and, when given a
//! [`TraceScope`], emits spans for) per-pass wall time and graph deltas —
//! the attribution data behind the paper's stage-by-stage evaluation.
//! Execution goes through an [`ExecSession`], a builder owning the
//! [`ExecConfig`] and an optional trace scope, which emits an `exec` span
//! with one `batch[i]` child per run.
//!
//! # Examples
//!
//! ```
//! use tssa_pipelines::{Pipeline, TensorSsa, Eager};
//! use tssa_frontend::compile;
//! use tssa_backend::{DeviceProfile, RtValue};
//! use tssa_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = compile(
//!     "def f(b0: Tensor, n: int):
//!          b = b0.clone()
//!          for i in range(n):
//!              b[i] = sigmoid(b[i]) * 2.0
//!          return b
//! ")?;
//! let inputs = [RtValue::Tensor(Tensor::ones(&[8, 4])), RtValue::Int(8)];
//! let eager = Eager.compile(&g);
//! let ours = TensorSsa::default().compile(&g);
//! let (eo, es) = eager.run(DeviceProfile::consumer(), &inputs)?;
//! let (to, ts) = ours
//!     .session()
//!     .on_device(DeviceProfile::consumer())
//!     .run(&inputs)?;
//! assert!(eo[0].as_tensor()?.allclose(to[0].as_tensor()?, 1e-5));
//! assert!(ts.kernel_launches < es.kernel_launches);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use tssa_backend::{
    DeviceProfile, ExecConfig, ExecError, ExecStats, Executor, OpObserver, RtValue,
};
use tssa_core::passes::{
    ConstantFold, Convert, Cse, Dce, Licm, PruneLoopCarries, PurifyViews, RevertUnfusedAccesses,
};
use tssa_core::{ConversionStats, PassManager, PassRun};
use tssa_fusion::{FusionConfig, ParallelizeLoops, VerticalFusion};
use tssa_ir::{Graph, ShapeSignature};
use tssa_obs::{Span, TraceScope};

/// A graph compiled by some pipeline, ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The (possibly transformed) graph.
    pub graph: Graph,
    /// Framework overheads charged during execution (device filled in at
    /// run time).
    pub exec_config: ExecConfig,
    /// Pipeline name for reports.
    pub pipeline: &'static str,
    /// What the compilation did (zeros for non-functionalizing pipelines).
    pub conversion: ConversionStats,
    /// Number of fusion groups created.
    pub fusion_groups: usize,
    /// Number of loops parallelized.
    pub parallel_loops: usize,
    /// Per-pass record of the compilation, in run order: timing, rewrite
    /// counts and node deltas for every pass the pipeline scheduled.
    pub passes: Vec<PassRun>,
    /// Shape-polymorphism certificate, when the shape certifier has run.
    /// Compilation itself leaves this `None` (the certifier needs input
    /// ranks, which pipelines do not see); hosts that know the example
    /// inputs — the serving layer — attach it post-compile via
    /// `tssa_lint::certify_shapes` and persist it in plan files.
    pub signature: Option<ShapeSignature>,
}

impl CompiledProgram {
    /// Start building an execution: an [`ExecSession`] seeded with the
    /// pipeline's compile-time [`ExecConfig`].
    pub fn session(&self) -> ExecSession<'_> {
        ExecSession {
            program: self,
            config: self.exec_config.clone(),
            scope: TraceScope::disabled(),
            exec_span: None,
            batches: 0,
            observer: None,
        }
    }

    /// Execute on the given device profile.
    ///
    /// Convenience for `self.session().on_device(device).run(inputs)`; use
    /// [`CompiledProgram::session`] directly to override more of the
    /// configuration or attach tracing.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the backend.
    pub fn run(
        &self,
        device: DeviceProfile,
        inputs: &[RtValue],
    ) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        self.session().on_device(device).run(inputs)
    }

    /// Total wall-clock time the pipeline spent inside passes.
    pub fn pass_time(&self) -> std::time::Duration {
        self.passes.iter().map(|r| r.duration).sum()
    }
}

/// A configured execution of one [`CompiledProgram`]: owns the
/// [`ExecConfig`] (seeded from compile time, overridable per knob) and an
/// optional [`TraceScope`]. Long-lived hosts use it to re-point the device
/// or cap `parallel_threads` — e.g. a worker pool dividing the machine's
/// cores between concurrent executions.
///
/// When traced, the session emits a single `exec` span (opened lazily at
/// the first run, closed when the session drops) with one `batch[i]` child
/// per [`ExecSession::run`], each carrying that run's [`ExecStats`]
/// counters.
pub struct ExecSession<'p> {
    program: &'p CompiledProgram,
    config: ExecConfig,
    scope: TraceScope,
    exec_span: Option<Span>,
    batches: usize,
    observer: Option<Arc<dyn OpObserver>>,
}

impl std::fmt::Debug for ExecSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecSession")
            .field("pipeline", &self.program.pipeline)
            .field("config", &self.config)
            .field("batches", &self.batches)
            .field("observed", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

impl<'p> ExecSession<'p> {
    /// Re-point execution at `device`.
    #[must_use]
    pub fn on_device(mut self, device: DeviceProfile) -> Self {
        self.config = self.config.with_device(device);
        self
    }

    /// Replace the whole [`ExecConfig`] (device, overheads, threads).
    #[must_use]
    pub fn with_config(mut self, config: ExecConfig) -> Self {
        self.config = config;
        self
    }

    /// Set the `prim::ParallelMap` thread budget.
    #[must_use]
    pub fn with_parallel_threads(mut self, threads: usize) -> Self {
        self.config = self.config.with_parallel_threads(threads);
        self
    }

    /// Cap the thread budget at `cap` (≥ 1), keeping a smaller compile-time
    /// choice — how a worker pool divides cores without oversubscribing.
    #[must_use]
    pub fn cap_parallel_threads(mut self, cap: usize) -> Self {
        let threads = self.config.parallel_threads.min(cap.max(1));
        self.config = self.config.with_parallel_threads(threads);
        self
    }

    /// Record this session's execution under `scope`: an `exec` span with
    /// one `batch[i]` child per run.
    #[must_use]
    pub fn traced(mut self, scope: &TraceScope) -> Self {
        self.scope = scope.clone();
        self
    }

    /// Attach an [`OpObserver`] that receives one sample per executed op
    /// — the seam the serving layer's execution profiler plugs into (see
    /// [`ProfileRecorder`]).
    #[must_use]
    pub fn observed(mut self, observer: Arc<dyn OpObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// The effective configuration runs will use.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The program this session executes.
    pub fn program(&self) -> &'p CompiledProgram {
        self.program
    }

    /// Runs performed so far.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Execute one batch of inputs, returning outputs and this run's
    /// statistics.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the backend.
    pub fn run(&mut self, inputs: &[RtValue]) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        let mut scratch = ExecStats::default();
        self.run_collect(inputs, &mut scratch)
    }

    /// As [`ExecSession::run`], additionally folding the run's statistics
    /// into `aggregate` — the hook long-lived callers (benchmark loops, the
    /// serving worker pool) use to account many runs without re-merging at
    /// every call site.
    ///
    /// # Errors
    ///
    /// Propagates any [`ExecError`] from the backend.
    pub fn run_collect(
        &mut self,
        inputs: &[RtValue],
        aggregate: &mut ExecStats,
    ) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        let batch = self.batches;
        self.batches += 1;
        let mut batch_span = if self.scope.enabled() {
            let exec = self
                .exec_span
                .get_or_insert_with(|| self.scope.span("exec", "exec"));
            Some(exec.child(format!("batch[{batch}]"), "batch"))
        } else {
            None
        };
        let mut exec = Executor::new(self.config.clone());
        if let Some(obs) = &self.observer {
            exec = exec.observed(Arc::clone(obs));
        }
        let result = exec.run_collect(&self.program.graph, inputs, aggregate);
        if let Some(span) = batch_span.as_mut() {
            match &result {
                Ok((_, stats)) => span.counters(stats.counters()),
                Err(_) => span.counter("failed", 1),
            }
        }
        result
    }
}

/// Adapter from the backend's [`OpObserver`] seam onto a `tssa-obs`
/// [`tssa_obs::ProfileSink`]: stamps every sample with the plan label the
/// backend does not know. One recorder per (plan, sink) pairing; attach it
/// with [`ExecSession::observed`].
pub struct ProfileRecorder {
    plan: Arc<str>,
    sink: Arc<tssa_obs::ProfileSink>,
}

impl ProfileRecorder {
    /// A recorder feeding `sink` under the plan label `plan`.
    pub fn new(plan: impl Into<Arc<str>>, sink: Arc<tssa_obs::ProfileSink>) -> ProfileRecorder {
        ProfileRecorder {
            plan: plan.into(),
            sink,
        }
    }
}

impl OpObserver for ProfileRecorder {
    fn record_op(
        &self,
        group: u32,
        node: u32,
        op: &tssa_ir::Op,
        wall_ns: u64,
        bytes: u64,
        flops: u64,
    ) {
        self.sink
            .record(&self.plan, group, node, wall_ns, bytes, flops, || op.name());
    }
}

/// A compilation pipeline.
///
/// A pipeline is fully described by its [`Pipeline::plan`]: the
/// [`PassManager`] it would schedule plus the [`ExecConfig`] it stamps on
/// the result. Compilation is derived from the plan, which means callers
/// (the persistent plan store, the perf gate) can inspect a pipeline's pass
/// roster — [`Pipeline::roster`] — without compiling anything.
pub trait Pipeline {
    /// Display name, e.g. `"TensorSSA"`.
    fn name(&self) -> &'static str;

    /// The transformation schedule and execution profile this pipeline
    /// applies, built fresh (a [`PassManager`] is consumed by a compile).
    fn plan(&self) -> (PassManager, ExecConfig);

    /// The pass names this pipeline would run, in order — the identity the
    /// on-disk plan cache fingerprints for invalidation.
    fn roster(&self) -> Vec<&'static str> {
        self.plan().0.names()
    }

    /// Compile `graph` (the captured imperative program), emitting a
    /// `compile:<name>` span under `scope` with one child span per pass.
    fn compile_traced(&self, graph: &Graph, scope: &TraceScope) -> CompiledProgram {
        let (passes, exec_config) = self.plan();
        compile_with(self.name(), graph, scope, passes, exec_config)
    }

    /// Compile `graph` without tracing.
    fn compile(&self, graph: &Graph) -> CompiledProgram {
        self.compile_traced(graph, &TraceScope::disabled())
    }
}

/// Shared compile skeleton: open the `compile:<name>` span, clone the
/// captured graph under a `capture` child, run `passes`, and assemble the
/// [`CompiledProgram`] (conversion stats, fusion-group and parallel-loop
/// counts are read back off the pass records).
fn compile_with(
    name: &'static str,
    graph: &Graph,
    scope: &TraceScope,
    mut passes: PassManager,
    exec_config: ExecConfig,
) -> CompiledProgram {
    // In debug builds (including every test run) the lint pass sanitizer
    // re-verifies the graph and re-runs the effect checker after each pass,
    // attributing the first broken invariant to `pass:<name>`. The shape
    // ratchet rides along: a pass may refine a statically known output dim
    // but never widen it back to unknown. Both are compiled out of release
    // pipelines, where pass cost is benchmarked.
    #[cfg(debug_assertions)]
    {
        passes.add_hook(tssa_lint::PassSanitizer::new());
        passes.add_hook(tssa_core::ShapeRatchet::new());
    }
    let mut span = scope.span(format!("compile:{name}"), "compile");
    let cscope = span.scope();
    let mut g = {
        let _capture = cscope.span("capture", "compile");
        graph.clone()
    };
    let runs = passes.run(&mut g, &cscope);
    span.counter("passes", runs.len() as i64);
    span.counter("nodes", g.live_node_count() as i64);
    let rewrites_of = |pass: &str| {
        runs.iter()
            .find(|r| r.name == pass)
            .map_or(0, |r| r.rewrites)
    };
    let fusion_groups = rewrites_of("fuse-vertical");
    let parallel_loops = rewrites_of("parallelize-loops");
    span.counter("fusion_groups", fusion_groups as i64);
    CompiledProgram {
        graph: g,
        exec_config,
        pipeline: name,
        conversion: conversion_from(&runs),
        fusion_groups,
        parallel_loops,
        passes: runs,
        signature: None,
    }
}

/// Reassemble the conversion pass's [`ConversionStats`] from the counters
/// it published on its [`PassRun`].
fn conversion_from(runs: &[PassRun]) -> ConversionStats {
    let Some(run) = runs.iter().find(|r| r.name == "tensorssa-convert") else {
        return ConversionStats::default();
    };
    let get = |key: &str| {
        run.counters
            .iter()
            .find(|(n, _)| *n == key)
            .map_or(0, |&(_, v)| v as usize)
    };
    ConversionStats {
        candidates: get("candidates"),
        mutations_removed: get("mutations_removed"),
        views_rewritten: get("views_rewritten"),
        updates_inserted: get("updates_inserted"),
        loop_carries_added: get("loop_carries_added"),
        branch_returns_added: get("branch_returns_added"),
    }
}

/// PyTorch eager mode: the baseline everything is normalized to (Figure 5).
#[derive(Debug, Clone, Copy, Default)]
pub struct Eager;

impl Pipeline for Eager {
    fn name(&self) -> &'static str {
        "Eager"
    }

    fn plan(&self) -> (PassManager, ExecConfig) {
        (PassManager::new(), ExecConfig::eager())
    }
}

/// TorchScript with the NNC fuser: mutation and views are fusion barriers;
/// no functionalization.
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchScriptNnc;

impl Pipeline for TorchScriptNnc {
    fn name(&self) -> &'static str {
        "TorchScript+NNC"
    }

    fn plan(&self) -> (PassManager, ExecConfig) {
        let cfg = FusionConfig {
            fuse_access_assign: false,
            ..FusionConfig::default()
        };
        let pm = PassManager::new()
            .with(ConstantFold)
            .with(Cse)
            .with(Licm)
            .with(Dce)
            .with(VerticalFusion::new(cfg));
        (pm, ExecConfig::compiled())
    }
}

/// TorchScript with nvFuser: modelled as NNC with a more conservative fusion
/// threshold (nvFuser declines small fusion groups).
#[derive(Debug, Clone, Copy, Default)]
pub struct TorchScriptNvfuser;

impl Pipeline for TorchScriptNvfuser {
    fn name(&self) -> &'static str {
        "TorchScript+nvFuser"
    }

    fn plan(&self) -> (PassManager, ExecConfig) {
        let cfg = FusionConfig {
            min_group_size: 3,
            fuse_access_assign: false,
        };
        let pm = PassManager::new()
            .with(ConstantFold)
            .with(Cse)
            .with(Licm)
            .with(Dce)
            .with(VerticalFusion::new(cfg));
        (pm, ExecConfig::compiled())
    }
}

/// TorchDynamo + TorchInductor: data-flow functionalization (functorch) that
/// stops at control-flow boundaries, strong codegen inside compiled regions,
/// Python-resident control flow.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamoInductor;

impl Pipeline for DynamoInductor {
    fn name(&self) -> &'static str {
        "Dynamo+Inductor"
    }

    fn plan(&self) -> (PassManager, ExecConfig) {
        // Non-holistic functionalization: components whose mutations cross a
        // control-flow boundary are left imperative (graph breaks).
        let pm = PassManager::new()
            .with(Convert::new(false))
            .with(PurifyViews)
            .with(ConstantFold)
            .with(Cse)
            .with(Licm)
            .with(Dce)
            .with(VerticalFusion::new(FusionConfig::default()))
            .with(RevertUnfusedAccesses);
        (pm, ExecConfig::traced_python_control())
    }
}

/// The paper's pipeline: holistic TensorSSA conversion, then vertical fusion
/// including access/assign, then horizontal loop parallelization.
#[derive(Debug, Clone, Copy)]
pub struct TensorSsa {
    /// Disable block propagation (ablation 1 in DESIGN.md).
    pub block_propagation: bool,
    /// Disable loop parallelization (ablation 2).
    pub horizontal: bool,
    /// Disable access/assign fusion (ablation 3).
    pub fuse_access_assign: bool,
}

impl Default for TensorSsa {
    fn default() -> Self {
        TensorSsa {
            block_propagation: true,
            horizontal: true,
            fuse_access_assign: true,
        }
    }
}

impl Pipeline for TensorSsa {
    fn name(&self) -> &'static str {
        "TensorSSA"
    }

    fn plan(&self) -> (PassManager, ExecConfig) {
        let mut pm = PassManager::new();
        pm.add(Convert::new(self.block_propagation));
        pm.add(PurifyViews);
        pm.add(ConstantFold);
        pm.add(Cse);
        pm.add(Licm);
        pm.add(Dce);
        pm.add(PruneLoopCarries);
        pm.add(Dce);
        if self.horizontal {
            pm.add(ParallelizeLoops::default());
        }
        pm.add(VerticalFusion::new(FusionConfig {
            fuse_access_assign: self.fuse_access_assign,
            ..FusionConfig::default()
        }));
        pm.add(RevertUnfusedAccesses);
        pm.add(Dce);
        // A ParallelMap is one batched kernel occupying the whole device;
        // mirror that in the engine by running its iterations on all cores.
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        (pm, ExecConfig::compiled().with_parallel_threads(threads))
    }
}

/// The serving layer's graceful-degradation fallback: no optimization
/// passes at all — the captured imperative graph is interpreted directly.
///
/// Not one of the paper's evaluated configurations (and deliberately absent
/// from [`all_pipelines`]): its purpose is a compile that costs microseconds
/// and an execution with no batching assumptions, so an overloaded service
/// can shed its optimization pipeline without shedding correctness.
/// Numerically it agrees with every other pipeline, which
/// `degraded_agrees_with_eager` pins.
#[derive(Debug, Clone, Copy, Default)]
pub struct Degraded;

impl Pipeline for Degraded {
    fn name(&self) -> &'static str {
        "Degraded"
    }

    fn plan(&self) -> (PassManager, ExecConfig) {
        (PassManager::new(), ExecConfig::eager())
    }
}

/// The pipelines of Figure 5, in the paper's order.
pub fn all_pipelines() -> Vec<Box<dyn Pipeline>> {
    vec![
        Box::new(Eager),
        Box::new(TorchScriptNnc),
        Box::new(TorchScriptNvfuser),
        Box::new(DynamoInductor),
        Box::new(TensorSsa::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_frontend::compile;
    use tssa_tensor::Tensor;

    fn figure4() -> Graph {
        compile(
            "def f(b0: Tensor, n: int):
                 b = b0.clone()
                 for i in range(n):
                     b[i] = sigmoid(b[i]) * 2.0
                 return b
        ",
        )
        .unwrap()
    }

    fn run_all(g: &Graph, inputs: &[RtValue]) -> Vec<(String, Vec<RtValue>, ExecStats)> {
        all_pipelines()
            .iter()
            .map(|p| {
                let cp = p.compile(g);
                assert!(
                    cp.graph.verify().is_ok(),
                    "{}: {:?}",
                    p.name(),
                    cp.graph.verify()
                );
                let (o, s) = cp.run(DeviceProfile::consumer(), inputs).unwrap();
                (p.name().to_string(), o, s)
            })
            .collect()
    }

    #[test]
    fn all_pipelines_agree_numerically() {
        let g = figure4();
        let b = Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 42);
        let results = run_all(&g, &[RtValue::Tensor(b), RtValue::Int(8)]);
        let reference = results[0].1[0].as_tensor().unwrap().clone();
        for (name, outs, _) in &results {
            assert!(
                outs[0].as_tensor().unwrap().allclose(&reference, 1e-5),
                "{name} diverges from eager"
            );
        }
    }

    #[test]
    fn tensorssa_launches_fewest_kernels() {
        let g = figure4();
        let b = Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 1);
        let results = run_all(&g, &[RtValue::Tensor(b), RtValue::Int(8)]);
        let by_name = |n: &str| {
            results
                .iter()
                .find(|(name, ..)| name == n)
                .map(|(_, _, s)| s.kernel_launches)
                .unwrap()
        };
        let ours = by_name("TensorSSA");
        assert!(ours <= by_name("Eager"));
        assert!(ours <= by_name("TorchScript+NNC"));
        assert!(ours <= by_name("Dynamo+Inductor"));
        // Horizontal parallelization collapses the loop: the clone plus one
        // batched launch.
        assert_eq!(ours, 2, "{results:#?}");
    }

    #[test]
    fn tensorssa_is_fastest_on_loop_workload() {
        let g = figure4();
        let b = Tensor::rand_uniform(&[16, 8], -1.0, 1.0, 2);
        let results = run_all(&g, &[RtValue::Tensor(b), RtValue::Int(16)]);
        let ours = results.iter().find(|(n, ..)| n == "TensorSSA").unwrap().2;
        for (name, _, stats) in &results {
            if name != "TensorSSA" {
                assert!(
                    ours.total_ns() < stats.total_ns(),
                    "TensorSSA ({:.1}us) should beat {name} ({:.1}us)",
                    ours.total_us(),
                    stats.total_us()
                );
            }
        }
    }

    #[test]
    fn ablation_flags_change_behavior() {
        let g = figure4();
        let full = TensorSsa::default().compile(&g);
        let no_prop = TensorSsa {
            block_propagation: false,
            ..TensorSsa::default()
        }
        .compile(&g);
        let no_horizontal = TensorSsa {
            horizontal: false,
            ..TensorSsa::default()
        }
        .compile(&g);
        assert!(full.conversion.mutations_removed > 0);
        assert_eq!(no_prop.conversion.mutations_removed, 0);
        assert_eq!(full.parallel_loops, 1);
        assert_eq!(no_horizontal.parallel_loops, 0);
    }

    #[test]
    fn branchy_program_supported_by_all() {
        let g = compile(
            "def f(x: Tensor, c: bool):
                 b = x.clone()
                 if c:
                     b[0] = relu(b[0])
                 else:
                     b[0] = sigmoid(b[0])
                 return b
        ",
        )
        .unwrap();
        let x = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, 3);
        for cond in [true, false] {
            let results = run_all(&g, &[RtValue::Tensor(x.clone()), RtValue::Bool(cond)]);
            let reference = results[0].1[0].as_tensor().unwrap().clone();
            for (name, outs, _) in &results {
                assert!(
                    outs[0].as_tensor().unwrap().allclose(&reference, 1e-5),
                    "{name} diverges (cond={cond})"
                );
            }
        }
    }

    #[test]
    fn compiled_program_records_pass_runs() {
        let g = figure4();
        let cp = TensorSsa::default().compile(&g);
        let names: Vec<&str> = cp.passes.iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "tensorssa-convert",
                "purify-views",
                "constant-fold",
                "cse",
                "licm",
                "dce",
                "prune-loop-carries",
                "dce",
                "parallelize-loops",
                "fuse-vertical",
                "revert-unfused-accesses",
                "dce",
            ]
        );
        assert_eq!(
            cp.passes
                .iter()
                .find(|r| r.name == "fuse-vertical")
                .unwrap()
                .rewrites,
            cp.fusion_groups
        );
        assert!(cp.pass_time() > std::time::Duration::ZERO);
        // Eager schedules nothing.
        assert!(Eager.compile(&g).passes.is_empty());
    }

    #[test]
    fn roster_matches_compiled_pass_record() {
        let g = figure4();
        for p in all_pipelines() {
            let roster = p.roster();
            let names: Vec<&str> = p.compile(&g).passes.iter().map(|r| r.name).collect();
            assert_eq!(roster, names, "{} roster drifted from compile", p.name());
        }
        assert!(Degraded.roster().is_empty());
    }

    #[test]
    fn degraded_agrees_with_eager_and_schedules_nothing() {
        let g = figure4();
        let cp = Degraded.compile(&g);
        assert!(cp.passes.is_empty(), "degraded path must skip every pass");
        assert_eq!(cp.pipeline, "Degraded");
        let inputs = [
            RtValue::Tensor(Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 11)),
            RtValue::Int(8),
        ];
        let (ours, _) = cp.run(DeviceProfile::consumer(), &inputs).unwrap();
        let (eager, _) = Eager
            .compile(&g)
            .run(DeviceProfile::consumer(), &inputs)
            .unwrap();
        assert!(ours[0]
            .as_tensor()
            .unwrap()
            .allclose(eager[0].as_tensor().unwrap(), 1e-6));
        // Not part of the paper's comparison set.
        assert!(all_pipelines().iter().all(|p| p.name() != "Degraded"));
    }

    #[test]
    fn session_reuses_and_overrides_config() {
        let g = figure4();
        let cp = TensorSsa::default().compile(&g);
        let mut session = cp
            .session()
            .on_device(DeviceProfile::consumer())
            .cap_parallel_threads(1);
        assert_eq!(session.config().parallel_threads, 1);
        let inputs = [
            RtValue::Tensor(Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 7)),
            RtValue::Int(8),
        ];
        let mut aggregate = ExecStats::default();
        let (_, s1) = session.run_collect(&inputs, &mut aggregate).unwrap();
        let (_, s2) = session.run_collect(&inputs, &mut aggregate).unwrap();
        assert_eq!(session.batches(), 2);
        assert_eq!(
            aggregate.kernel_launches,
            s1.kernel_launches + s2.kernel_launches
        );
    }

    #[test]
    fn observed_session_attributes_every_executed_op() {
        let g = figure4();
        let cp = TensorSsa::default().compile(&g);
        let profiler = tssa_obs::Profiler::new();
        let sink = profiler.sink();
        let mut session = cp
            .session()
            .on_device(DeviceProfile::consumer())
            .cap_parallel_threads(1)
            .observed(Arc::new(ProfileRecorder::new("figure4", Arc::clone(&sink))));
        let inputs = [
            RtValue::Tensor(Tensor::rand_uniform(&[8, 4], -1.0, 1.0, 5)),
            RtValue::Int(8),
        ];
        let (_, stats) = session.run(&inputs).unwrap();
        let snap = profiler.snapshot();
        assert!(!snap.entries.is_empty(), "profiler saw no ops");
        let recorded: u64 = snap.entries.iter().map(|(_, s)| s.count).sum();
        // Every sample carries the session's plan label and a resolved name.
        for (key, stat) in &snap.entries {
            assert_eq!(&*key.plan, "figure4");
            assert!(!stat.op.is_empty(), "missing op name for node {}", key.node);
        }
        // At least one sample per op the cost model charged, plus control
        // and group-overhead frames.
        assert!(
            recorded >= stats.ops_executed,
            "recorded {recorded} < executed {}",
            stats.ops_executed
        );
    }
}
