//! Golden trace for the doc example: compiling and running the Figure 4
//! loop under a tracer must yield exactly the expected span tree — one
//! `pass:*` child per scheduled pass, in order, under the compile span, and
//! one `batch[i]` child per run under the exec span.

use tssa_backend::{DeviceProfile, RtValue};
use tssa_obs::{SpanRecord, Tracer};
use tssa_pipelines::{Pipeline, TensorSsa};
use tssa_tensor::Tensor;

fn children<'a>(records: &'a [SpanRecord], parent: &SpanRecord) -> Vec<&'a SpanRecord> {
    let mut out: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| r.parent == Some(parent.id))
        .collect();
    out.sort_by_key(|r| r.start_ns);
    out
}

#[test]
fn compile_and_exec_span_tree_matches_pass_schedule() {
    let g = tssa_frontend::compile(
        "def f(b0: Tensor, n: int):
             b = b0.clone()
             for i in range(n):
                 b[i] = sigmoid(b[i]) * 2.0
             return b
    ",
    )
    .unwrap();
    let (tracer, sink) = Tracer::ring(256);

    let pipeline = TensorSsa::default();
    let cp = pipeline.compile_traced(&g, &tracer.scope());
    let inputs = [RtValue::Tensor(Tensor::ones(&[8, 4])), RtValue::Int(8)];
    {
        let mut session = cp
            .session()
            .on_device(DeviceProfile::consumer())
            .traced(&tracer.scope());
        session.run(&inputs).unwrap();
        session.run(&inputs).unwrap();
        // Dropping the session closes the exec span.
    }

    let records = sink.snapshot();

    // Exactly two roots: the compile span, then the exec span, disjoint in
    // time and in that order.
    let roots: Vec<&SpanRecord> = records.iter().filter(|r| r.parent.is_none()).collect();
    assert_eq!(roots.len(), 2, "{roots:#?}");
    let compile = roots[0];
    let exec = roots[1];
    assert_eq!(compile.name, "compile:TensorSSA");
    assert_eq!(compile.category, "compile");
    assert_eq!(exec.name, "exec");
    assert_eq!(exec.category, "exec");
    assert!(
        compile.end_ns() <= exec.start_ns,
        "compile must finish before execution starts"
    );

    // The compile span's children: the graph capture, then one span per
    // scheduled pass, in schedule order — mirroring `cp.passes` exactly.
    let compile_children = children(&records, compile);
    assert_eq!(compile_children[0].name, "capture");
    let pass_names: Vec<&str> = compile_children[1..]
        .iter()
        .map(|r| r.name.as_str())
        .collect();
    let expected: Vec<String> = cp
        .passes
        .iter()
        .map(|r| format!("pass:{}", r.name))
        .collect();
    assert_eq!(
        pass_names,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );
    assert_eq!(
        pass_names,
        vec![
            "pass:tensorssa-convert",
            "pass:purify-views",
            "pass:constant-fold",
            "pass:cse",
            "pass:licm",
            "pass:dce",
            "pass:prune-loop-carries",
            "pass:dce",
            "pass:parallelize-loops",
            "pass:fuse-vertical",
            "pass:revert-unfused-accesses",
            "pass:dce",
        ]
    );
    // Pass spans tile the compile window in order and carry graph deltas.
    for pair in compile_children.windows(2) {
        assert!(pair[0].end_ns() <= pair[1].start_ns);
    }
    let convert = compile_children
        .iter()
        .find(|r| r.name == "pass:tensorssa-convert")
        .unwrap();
    assert_eq!(
        convert.counter("rewrites"),
        Some(cp.conversion.mutations_removed as i64)
    );
    assert!(convert.counter("nodes_before").is_some());
    assert!(convert.counter("nodes_after").is_some());

    // The exec span: one batch child per run, in order, each with stats.
    let exec_children = children(&records, exec);
    let names: Vec<&str> = exec_children.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(names, vec!["batch[0]", "batch[1]"]);
    for batch in &exec_children {
        assert!(batch.counter("kernel_launches").unwrap_or(0) > 0);
        assert!(batch.end_ns() <= exec.end_ns());
    }
}
