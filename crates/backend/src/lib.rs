//! Execution engine and simulated-GPU cost model.
//!
//! The [`Executor`] interprets graph IR with the *real* semantics of the
//! `tssa-tensor` runtime — views alias, mutations write through shared
//! storage — so both imperative (pre-conversion) and functional
//! (TensorSSA-form) programs run and can be compared for equivalence.
//!
//! While executing, the engine plays the role of the GPU runtime the paper
//! measures: every tensor operator is a *kernel launch* against a
//! [`DeviceProfile`] (launch overhead + memory bandwidth + FLOP throughput),
//! scalar/control operators run on the *host* with per-framework overheads
//! from [`ExecConfig`], a `prim::FusionGroup` executes as a **single** launch
//! evaluated element-at-a-time without intermediate buffers, and a
//! `prim::ParallelMap` executes all loop iterations as one batched launch.
//! [`ExecStats`] reports kernel counts (Figure 6) and simulated time
//! (Figures 5, 7, 8).
//!
//! # Examples
//!
//! ```
//! use tssa_backend::{ExecConfig, Executor, RtValue};
//! use tssa_ir::parse_graph;
//! use tssa_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = parse_graph(
//!     "graph(%x : Tensor):
//!        %y : Tensor = aten::relu(%x)
//!        return (%y)",
//! )?;
//! let exec = Executor::new(ExecConfig::compiled());
//! let x = Tensor::from_vec_f32(vec![-1.0, 2.0], &[2])?;
//! let (outs, stats) = exec.run(&g, &[RtValue::Tensor(x)])?;
//! assert_eq!(outs[0].as_tensor()?.to_vec_f32()?, vec![0.0, 2.0]);
//! assert_eq!(stats.kernel_launches, 1);
//! # Ok(())
//! # }
//! ```

mod device;
mod error;
mod fused;
mod interp;
mod observe;
mod stats;
mod value;

pub use device::{DeviceProfile, ExecConfig};
pub use error::ExecError;
pub use interp::{Executor, OpProfile};
pub use observe::{OpObserver, TOP_LEVEL_GROUP};
pub use stats::ExecStats;
pub use value::RtValue;
