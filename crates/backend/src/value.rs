//! Dynamically-typed runtime values flowing through the interpreter.

use tssa_tensor::Tensor;

use crate::ExecError;

/// A runtime value bound to an IR value during execution.
#[derive(Debug, Clone)]
pub enum RtValue {
    /// A device tensor.
    Tensor(Tensor),
    /// A host integer.
    Int(i64),
    /// A host float.
    Float(f64),
    /// A host boolean.
    Bool(bool),
    /// A host list.
    List(Vec<RtValue>),
}

impl RtValue {
    /// Borrow as tensor.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TypeMismatch`] for non-tensor values.
    pub fn as_tensor(&self) -> Result<&Tensor, ExecError> {
        match self {
            RtValue::Tensor(t) => Ok(t),
            other => Err(ExecError::type_mismatch("Tensor", other)),
        }
    }

    /// Read as integer.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TypeMismatch`] for non-int values.
    pub fn as_int(&self) -> Result<i64, ExecError> {
        match self {
            RtValue::Int(v) => Ok(*v),
            other => Err(ExecError::type_mismatch("int", other)),
        }
    }

    /// Read as float.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TypeMismatch`] for non-float values (ints are
    /// promoted).
    pub fn as_float(&self) -> Result<f64, ExecError> {
        match self {
            RtValue::Float(v) => Ok(*v),
            RtValue::Int(v) => Ok(*v as f64),
            other => Err(ExecError::type_mismatch("float", other)),
        }
    }

    /// Read as boolean.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TypeMismatch`] for non-bool values.
    pub fn as_bool(&self) -> Result<bool, ExecError> {
        match self {
            RtValue::Bool(v) => Ok(*v),
            other => Err(ExecError::type_mismatch("bool", other)),
        }
    }

    /// Borrow as list.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::TypeMismatch`] for non-list values.
    pub fn as_list(&self) -> Result<&[RtValue], ExecError> {
        match self {
            RtValue::List(v) => Ok(v),
            other => Err(ExecError::type_mismatch("list", other)),
        }
    }

    /// Short description used in error messages (`Tensor[2x3]`, `int`, …).
    pub fn kind(&self) -> String {
        match self {
            RtValue::Tensor(t) => format!(
                "Tensor[{}]",
                t.shape()
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("x")
            ),
            RtValue::Int(_) => "int".into(),
            RtValue::Float(_) => "float".into(),
            RtValue::Bool(_) => "bool".into(),
            RtValue::List(_) => "list".into(),
        }
    }
}

impl From<Tensor> for RtValue {
    fn from(t: Tensor) -> Self {
        RtValue::Tensor(t)
    }
}

impl From<i64> for RtValue {
    fn from(v: i64) -> Self {
        RtValue::Int(v)
    }
}

impl From<f64> for RtValue {
    fn from(v: f64) -> Self {
        RtValue::Float(v)
    }
}

impl From<bool> for RtValue {
    fn from(v: bool) -> Self {
        RtValue::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_check_types() {
        let v = RtValue::Int(3);
        assert_eq!(v.as_int().unwrap(), 3);
        assert_eq!(v.as_float().unwrap(), 3.0);
        assert!(v.as_bool().is_err());
        assert!(v.as_tensor().is_err());
        let t = RtValue::Tensor(Tensor::zeros(&[2, 3]));
        assert_eq!(t.kind(), "Tensor[2x3]");
        assert!(t.as_tensor().is_ok());
        let l = RtValue::List(vec![RtValue::Bool(true)]);
        assert_eq!(l.as_list().unwrap().len(), 1);
    }
}
