//! Execution statistics: kernel launches, simulated time, traffic.

use std::fmt;

/// Counters accumulated over one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Device kernels launched (Figure 6's metric).
    pub kernel_launches: u64,
    /// Simulated device time (launch overheads + roofline work), ns.
    pub device_ns: f64,
    /// Simulated host time (dispatch, scalar ops, control flow), ns.
    pub host_ns: f64,
    /// Bytes moved through device memory.
    pub bytes: u64,
    /// Floating-point operations executed on device.
    pub flops: u64,
    /// IR operators executed (any kind).
    pub ops_executed: u64,
}

impl ExecStats {
    /// Total simulated wall time in nanoseconds (host and device serialized
    /// — a deliberately simple first-order model).
    pub fn total_ns(&self) -> f64 {
        self.device_ns + self.host_ns
    }

    /// Total simulated wall time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.total_ns() / 1_000.0
    }

    /// The record as `(name, value)` counter pairs, in field order — the
    /// shape trace spans and exporters consume (times truncated to whole
    /// nanoseconds).
    pub fn counters(&self) -> [(&'static str, i64); 6] {
        [
            ("kernel_launches", self.kernel_launches as i64),
            ("device_ns", self.device_ns as i64),
            ("host_ns", self.host_ns as i64),
            ("bytes", self.bytes as i64),
            ("flops", self.flops as i64),
            ("ops_executed", self.ops_executed as i64),
        ]
    }

    /// Fold another stats record into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.kernel_launches += other.kernel_launches;
        self.device_ns += other.device_ns;
        self.host_ns += other.host_ns;
        self.bytes += other.bytes;
        self.flops += other.flops;
        self.ops_executed += other.ops_executed;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1}us ({} launches, {:.1}us device, {:.1}us host, {} bytes, {} flops)",
            self.total_us(),
            self.kernel_launches,
            self.device_ns / 1_000.0,
            self.host_ns / 1_000.0,
            self.bytes,
            self.flops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = ExecStats {
            kernel_launches: 1,
            device_ns: 10.0,
            host_ns: 5.0,
            bytes: 100,
            flops: 20,
            ops_executed: 2,
        };
        a.merge(&a.clone());
        assert_eq!(a.kernel_launches, 2);
        assert_eq!(a.total_ns(), 30.0);
        assert_eq!(a.bytes, 200);
    }

    #[test]
    fn display_nonempty() {
        assert!(!ExecStats::default().to_string().is_empty());
    }
}
