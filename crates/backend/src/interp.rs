//! The graph interpreter and cost accountant.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use tssa_ir::{BlockId, ConstValue, Graph, NodeId, Op, ValueId, ViewKind};
use tssa_tensor::{concat, stack, where_select, DType, Scalar, Tensor};

use crate::fused::run_group;
use crate::observe::{OpObserver, TOP_LEVEL_GROUP};
use crate::{ExecConfig, ExecError, ExecStats, RtValue};

type Env = HashMap<ValueId, RtValue>;

/// Per-operator aggregate recorded when profiling is enabled.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpProfile {
    /// Number of executions.
    pub count: u64,
    /// Kernel launches attributed to the operator.
    pub launches: u64,
    /// Simulated device time, ns.
    pub device_ns: f64,
    /// Simulated host time, ns.
    pub host_ns: f64,
}

/// One shape-trace entry: a value binding and the concrete shape it took.
pub type ShapeTraceEntry = (ValueId, Vec<usize>);

/// Executes graphs against a simulated device, with real tensor semantics.
pub struct Executor {
    cfg: ExecConfig,
    profile: Option<Mutex<HashMap<String, OpProfile>>>,
    shape_trace: Option<Mutex<Vec<ShapeTraceEntry>>>,
    /// Wall-time op observer ([`Executor::observed`]); `None` costs one
    /// branch per node.
    observer: Option<Arc<dyn OpObserver>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("cfg", &self.cfg)
            .field("profiling", &self.profile.is_some())
            .field("shape_trace", &self.shape_trace.is_some())
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

impl Clone for Executor {
    fn clone(&self) -> Executor {
        Executor {
            cfg: self.cfg.clone(),
            profile: self.profile.as_ref().map(|_| Mutex::new(HashMap::new())),
            // Cloned executors (parallel-map workers get one each) share no
            // trace; callers only read the original's.
            shape_trace: self.shape_trace.as_ref().map(|_| Mutex::new(Vec::new())),
            // The observer *is* shared: its sinks are thread-safe and the
            // samples all belong to the same profile.
            observer: self.observer.clone(),
        }
    }
}

impl Executor {
    /// An executor with the given device/framework configuration.
    pub fn new(cfg: ExecConfig) -> Executor {
        Executor {
            cfg,
            profile: None,
            shape_trace: None,
            observer: None,
        }
    }

    /// Attach a wall-time op observer: every executed op reports its wall
    /// self-time, invocation and traffic estimates. Control-flow nodes
    /// report only their own bookkeeping (bodies report node by node);
    /// fusion groups report per contained op plus a `fusion_group` overhead
    /// sample.
    #[must_use]
    pub fn observed(mut self, observer: Arc<dyn OpObserver>) -> Executor {
        self.observer = Some(observer);
        self
    }

    /// An executor that additionally records the exact shape of every
    /// tensor value it binds — block parameters at entry and node outputs
    /// after evaluation, in binding order, with loop-body re-bindings
    /// recorded once per iteration. The fuzzer's concretization gate diffs
    /// this trace against the symbolic shape analysis (every recorded shape
    /// must refine the static one).
    pub fn with_shape_trace(cfg: ExecConfig) -> Executor {
        Executor {
            cfg,
            profile: None,
            shape_trace: Some(Mutex::new(Vec::new())),
            observer: None,
        }
    }

    /// Drain the shape trace recorded by [`Executor::with_shape_trace`].
    /// Empty when tracing is off or nothing ran.
    pub fn take_shape_trace(&self) -> Vec<ShapeTraceEntry> {
        self.shape_trace
            .as_ref()
            .map(|t| std::mem::take(&mut *t.lock().expect("shape trace lock")))
            .unwrap_or_default()
    }

    fn record_shape(&self, env: &Env, v: ValueId) {
        if let Some(trace) = &self.shape_trace {
            if let Some(RtValue::Tensor(t)) = env.get(&v) {
                trace
                    .lock()
                    .expect("shape trace lock")
                    .push((v, t.shape().to_vec()));
            }
        }
    }

    /// An executor that additionally aggregates per-operator costs,
    /// retrievable with [`Executor::take_profile`] after a run. Control-flow
    /// nodes are not recorded themselves (their bodies are, node by node);
    /// fused groups and parallel maps are recorded as single kernels.
    pub fn with_profiling(cfg: ExecConfig) -> Executor {
        Executor {
            cfg,
            profile: Some(Mutex::new(HashMap::new())),
            shape_trace: None,
            observer: None,
        }
    }

    /// Drain the per-operator profile, sorted by total simulated time
    /// (descending). Empty when profiling is off or nothing ran.
    pub fn take_profile(&self) -> Vec<(String, OpProfile)> {
        let Some(prof) = &self.profile else {
            return Vec::new();
        };
        let mut entries: Vec<(String, OpProfile)> =
            prof.lock().expect("profile lock").drain().collect();
        entries.sort_by(|a, b| {
            let ta = a.1.device_ns + a.1.host_ns;
            let tb = b.1.device_ns + b.1.host_ns;
            tb.partial_cmp(&ta).expect("finite times")
        });
        entries
    }

    /// The active configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.cfg
    }

    /// Run `graph` on `inputs`, returning outputs and execution statistics.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on arity/type mismatches, tensor-level
    /// failures (bad shapes, out-of-range indices) or unsupported constructs.
    pub fn run(
        &self,
        graph: &Graph,
        inputs: &[RtValue],
    ) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        let top = graph.top();
        let params = &graph.block(top).params;
        if params.len() != inputs.len() {
            return Err(ExecError::ArityMismatch {
                expected: params.len(),
                found: inputs.len(),
            });
        }
        let mut env: Env = Env::new();
        for (&p, v) in params.iter().zip(inputs) {
            env.insert(p, v.clone());
        }
        let mut stats = ExecStats::default();
        self.eval_block(graph, top, &mut env, &mut stats)?;
        let outs = graph
            .block(top)
            .returns
            .iter()
            .map(|&r| lookup(&env, r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok((outs, stats))
    }

    /// As [`Executor::run`], but additionally folds the run's statistics
    /// into `aggregate` — the hook long-lived callers (benchmark loops, the
    /// serving worker pool) use to account many runs without re-merging at
    /// every call site.
    ///
    /// # Errors
    ///
    /// As [`Executor::run`]; `aggregate` is untouched when the run fails.
    pub fn run_collect(
        &self,
        graph: &Graph,
        inputs: &[RtValue],
        aggregate: &mut ExecStats,
    ) -> Result<(Vec<RtValue>, ExecStats), ExecError> {
        let (outs, stats) = self.run(graph, inputs)?;
        aggregate.merge(&stats);
        Ok((outs, stats))
    }

    fn eval_block(
        &self,
        g: &Graph,
        b: BlockId,
        env: &mut Env,
        stats: &mut ExecStats,
    ) -> Result<(), ExecError> {
        if self.shape_trace.is_some() {
            for &p in &g.block(b).params {
                self.record_shape(env, p);
            }
        }
        for &n in &g.block(b).nodes {
            let before = (stats.device_ns, stats.host_ns, stats.kernel_launches);
            // Wall-time observation: block-bearing nodes attribute their
            // own self-time inside their eval arms (bodies report node by
            // node), so only leaf ops are timed here.
            let traffic_before = (stats.bytes, stats.flops);
            let observed_at = match &self.observer {
                Some(_)
                    if !matches!(
                        g.node(n).op,
                        Op::If | Op::Loop | Op::FusionGroup | Op::ParallelMap { .. }
                    ) =>
                {
                    Some(Instant::now())
                }
                _ => None,
            };
            self.eval_node(g, n, env, stats)?;
            if let (Some(started), Some(obs)) = (observed_at, &self.observer) {
                obs.record_op(
                    TOP_LEVEL_GROUP,
                    n.index() as u32,
                    &g.node(n).op,
                    started.elapsed().as_nanos() as u64,
                    stats.bytes - traffic_before.0,
                    stats.flops - traffic_before.1,
                );
            }
            if self.shape_trace.is_some() {
                for &out in &g.node(n).outputs {
                    self.record_shape(env, out);
                }
            }
            if let Some(prof) = &self.profile {
                // Control flow is attributed to its children; atomic
                // block-bearing nodes (fused groups, parallel maps) count as
                // themselves.
                if !matches!(g.node(n).op, Op::If | Op::Loop) {
                    let mut map = prof.lock().expect("profile lock");
                    let entry = map.entry(g.node(n).op.name()).or_default();
                    entry.count += 1;
                    entry.device_ns += stats.device_ns - before.0;
                    entry.host_ns += stats.host_ns - before.1;
                    entry.launches += stats.kernel_launches - before.2;
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------ charging

    fn kernel(&self, stats: &mut ExecStats, bytes: u64, flops: u64) {
        stats.kernel_launches += 1;
        stats.device_ns +=
            self.cfg.device.launch_overhead_ns + self.cfg.device.kernel_work_ns(bytes, flops);
        stats.bytes += bytes;
        stats.flops += flops;
        stats.host_ns += self.cfg.host_dispatch_ns;
    }

    fn host_scalar(&self, stats: &mut ExecStats) {
        stats.host_ns += self.cfg.host_scalar_ns;
    }

    // ----------------------------------------------------------- the match

    #[allow(clippy::too_many_lines)]
    fn eval_node(
        &self,
        g: &Graph,
        n: NodeId,
        env: &mut Env,
        stats: &mut ExecStats,
    ) -> Result<(), ExecError> {
        stats.ops_executed += 1;
        let node = g.node(n);
        let arg = |i: usize| -> Result<RtValue, ExecError> { lookup(env, node.inputs[i]) };
        let tensor = |i: usize| -> Result<Tensor, ExecError> { Ok(arg(i)?.as_tensor()?.clone()) };
        let set = |env: &mut Env, i: usize, v: RtValue| {
            env.insert(node.outputs[i], v);
        };

        match &node.op {
            Op::Constant(c) => {
                self.host_scalar(stats);
                let v = match c {
                    ConstValue::Int(v) => RtValue::Int(*v),
                    ConstValue::Float(v) => RtValue::Float(*v),
                    ConstValue::Bool(v) => RtValue::Bool(*v),
                    ConstValue::IntList(v) => {
                        RtValue::List(v.iter().map(|&x| RtValue::Int(x)).collect())
                    }
                };
                set(env, 0, v);
            }
            Op::ListConstruct => {
                self.host_scalar(stats);
                let items = node
                    .inputs
                    .iter()
                    .map(|&v| lookup(env, v))
                    .collect::<Result<Vec<_>, _>>()?;
                set(env, 0, RtValue::List(items));
            }
            Op::ListUnpack => {
                self.host_scalar(stats);
                let list = arg(0)?.as_list()?.to_vec();
                if list.len() != node.outputs.len() {
                    return Err(ExecError::unsupported("list unpack arity mismatch"));
                }
                for (i, item) in list.into_iter().enumerate() {
                    set(env, i, item);
                }
            }
            Op::If => {
                let started = self.observer.as_ref().map(|_| Instant::now());
                stats.host_ns += self.cfg.control_entry_ns;
                let cond = arg(0)?.as_bool()?;
                let block = node.blocks[if cond { 0 } else { 1 }];
                let body_at = started.map(|_| Instant::now());
                self.eval_block(g, block, env, stats)?;
                let body_ns = body_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
                let rets = g.block(block).returns.clone();
                for (i, r) in rets.into_iter().enumerate() {
                    let v = lookup(env, r)?;
                    set(env, i, v);
                }
                if let (Some(t0), Some(obs)) = (started, &self.observer) {
                    let self_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(body_ns);
                    obs.record_op(TOP_LEVEL_GROUP, n.index() as u32, &node.op, self_ns, 0, 0);
                }
            }
            Op::Loop => {
                let started = self.observer.as_ref().map(|_| Instant::now());
                let mut body_ns = 0u64;
                let trip = arg(0)?.as_int()?.max(0);
                let mut cond = arg(1)?.as_bool()?;
                let mut carried: Vec<RtValue> = node.inputs[2..]
                    .iter()
                    .map(|&v| lookup(env, v))
                    .collect::<Result<_, _>>()?;
                let body = node.blocks[0];
                let params = g.block(body).params.clone();
                let rets = g.block(body).returns.clone();
                let mut i = 0i64;
                while i < trip && cond {
                    stats.host_ns += self.cfg.control_entry_ns;
                    env.insert(params[0], RtValue::Int(i));
                    for (k, v) in carried.iter().enumerate() {
                        env.insert(params[1 + k], v.clone());
                    }
                    let body_at = started.map(|_| Instant::now());
                    self.eval_block(g, body, env, stats)?;
                    body_ns += body_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
                    cond = lookup(env, rets[0])?.as_bool()?;
                    for (k, &r) in rets[1..].iter().enumerate() {
                        carried[k] = lookup(env, r)?;
                    }
                    i += 1;
                }
                for (k, v) in carried.into_iter().enumerate() {
                    set(env, k, v);
                }
                if let (Some(t0), Some(obs)) = (started, &self.observer) {
                    let self_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(body_ns);
                    obs.record_op(TOP_LEVEL_GROUP, n.index() as u32, &node.op, self_ns, 0, 0);
                }
            }

            // ------------------------------------------------- scalar ops
            Op::IntAdd | Op::IntSub | Op::IntMul | Op::IntDiv | Op::IntMod => {
                self.host_scalar(stats);
                let a = arg(0)?.as_int()?;
                let b = arg(1)?.as_int()?;
                let r = match node.op {
                    Op::IntAdd => a.wrapping_add(b),
                    Op::IntSub => a.wrapping_sub(b),
                    Op::IntMul => a.wrapping_mul(b),
                    Op::IntDiv => {
                        if b == 0 {
                            return Err(ExecError::unsupported("integer division by zero"));
                        }
                        a / b
                    }
                    _ => {
                        if b == 0 {
                            return Err(ExecError::unsupported("integer modulo by zero"));
                        }
                        a % b
                    }
                };
                set(env, 0, RtValue::Int(r));
            }
            Op::IntNeg => {
                self.host_scalar(stats);
                let a = arg(0)?.as_int()?;
                set(env, 0, RtValue::Int(-a));
            }
            Op::IntLt | Op::IntLe | Op::IntGt | Op::IntGe | Op::IntEq | Op::IntNe => {
                self.host_scalar(stats);
                let a = arg(0)?.as_int()?;
                let b = arg(1)?.as_int()?;
                let r = match node.op {
                    Op::IntLt => a < b,
                    Op::IntLe => a <= b,
                    Op::IntGt => a > b,
                    Op::IntGe => a >= b,
                    Op::IntEq => a == b,
                    _ => a != b,
                };
                set(env, 0, RtValue::Bool(r));
            }
            Op::BoolAnd | Op::BoolOr => {
                self.host_scalar(stats);
                let a = arg(0)?.as_bool()?;
                let b = arg(1)?.as_bool()?;
                let r = if node.op == Op::BoolAnd {
                    a && b
                } else {
                    a || b
                };
                set(env, 0, RtValue::Bool(r));
            }
            Op::BoolNot => {
                self.host_scalar(stats);
                let a = arg(0)?.as_bool()?;
                set(env, 0, RtValue::Bool(!a));
            }
            Op::FloatAdd | Op::FloatSub | Op::FloatMul | Op::FloatDiv => {
                self.host_scalar(stats);
                let a = arg(0)?.as_float()?;
                let b = arg(1)?.as_float()?;
                let r = match node.op {
                    Op::FloatAdd => a + b,
                    Op::FloatSub => a - b,
                    Op::FloatMul => a * b,
                    _ => a / b,
                };
                set(env, 0, RtValue::Float(r));
            }
            Op::FloatNeg => {
                self.host_scalar(stats);
                let a = arg(0)?.as_float()?;
                set(env, 0, RtValue::Float(-a));
            }
            Op::FloatLt | Op::FloatGt => {
                self.host_scalar(stats);
                let a = arg(0)?.as_float()?;
                let b = arg(1)?.as_float()?;
                let r = if node.op == Op::FloatLt { a < b } else { a > b };
                set(env, 0, RtValue::Bool(r));
            }
            Op::IntToFloat => {
                self.host_scalar(stats);
                let a = arg(0)?.as_int()?;
                set(env, 0, RtValue::Float(a as f64));
            }

            // --------------------------------------------- tensor queries
            Op::Size { dim } => {
                self.host_scalar(stats);
                let t = tensor(0)?;
                let d = norm_dim(*dim, t.rank())?;
                set(env, 0, RtValue::Int(t.shape()[d] as i64));
            }
            Op::ItemFloat | Op::ItemInt | Op::ItemBool => {
                // Reading a device scalar forces a pipeline sync.
                stats.host_ns += self.cfg.sync_ns;
                let t = tensor(0)?;
                let s = t.item()?;
                let v = match node.op {
                    Op::ItemFloat => RtValue::Float(s.as_f64()),
                    Op::ItemInt => RtValue::Int(s.as_i64()),
                    _ => RtValue::Bool(s.as_bool()),
                };
                set(env, 0, v);
            }

            // -------------------------------------------- tensor creation
            Op::Zeros { shape } | Op::Ones { shape } => {
                let s: Vec<usize> = shape.iter().map(|&d| d.max(0) as usize).collect();
                let t = if matches!(node.op, Op::Zeros { .. }) {
                    Tensor::zeros(&s)
                } else {
                    Tensor::ones(&s)
                };
                self.kernel(stats, t_bytes(&t), 0);
                set(env, 0, RtValue::Tensor(t));
            }
            Op::Full { shape } => {
                let s: Vec<usize> = shape.iter().map(|&d| d.max(0) as usize).collect();
                let v = arg(0)?.as_float()? as f32;
                let t = Tensor::full(&s, v);
                self.kernel(stats, t_bytes(&t), 0);
                set(env, 0, RtValue::Tensor(t));
            }
            Op::Arange => {
                let n = arg(0)?.as_int()?.max(0) as usize;
                let t = Tensor::arange_f32(n);
                self.kernel(stats, t_bytes(&t), 0);
                set(env, 0, RtValue::Tensor(t));
            }
            Op::ZerosLike | Op::OnesLike => {
                let like = tensor(0)?;
                let v = if node.op == Op::OnesLike { 1.0 } else { 0.0 };
                let t = Tensor::full_scalar(like.shape(), Scalar::F32(v).cast(like.dtype()));
                self.kernel(stats, t_bytes(&t), 0);
                set(env, 0, RtValue::Tensor(t));
            }
            Op::FullLike => {
                let like = tensor(0)?;
                let v = arg(1)?.as_float()? as f32;
                let t = Tensor::full_scalar(like.shape(), Scalar::F32(v).cast(like.dtype()));
                self.kernel(stats, t_bytes(&t), 0);
                set(env, 0, RtValue::Tensor(t));
            }
            Op::BroadcastLike => {
                let src = tensor(0)?;
                let like = tensor(1)?;
                let out = Tensor::zeros_dtype(like.shape(), like.dtype());
                out.copy_(&src)?;
                self.kernel(stats, t_bytes(&src) + t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }

            // ------------------------------------------------------ views
            Op::View(kind) => {
                // Metadata-only on device; dispatch cost on host.
                stats.host_ns += self.cfg.host_dispatch_ns;
                let base = tensor(0)?;
                let extras = self.int_extras(env, &node.inputs[1..])?;
                let v = apply_view(&base, kind, &extras)?;
                set(env, 0, RtValue::Tensor(v));
            }

            // -------------------------------------------------- mutations
            Op::Mutate(kind) => {
                let recv = tensor(0)?;
                let bytes = 2 * t_bytes(&recv)
                    + node
                        .inputs
                        .get(1)
                        .and_then(|&v| lookup(env, v).ok())
                        .and_then(|v| v.as_tensor().ok().map(t_bytes))
                        .unwrap_or(0);
                apply_mutation(&recv, *kind, node, env)?;
                self.kernel(stats, bytes, recv.numel() as u64);
                // The output aliases the receiver.
                if !node.outputs.is_empty() {
                    set(env, 0, RtValue::Tensor(recv));
                }
            }

            // ------------------------------------------------- functional
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Maximum
            | Op::Minimum
            | Op::Pow
            | Op::Gt
            | Op::Lt
            | Op::Ge
            | Op::Le
            | Op::EqElem
            | Op::LogicalAnd
            | Op::LogicalOr => {
                let a = tensor(0)?;
                let b = tensor(1)?;
                let out = match node.op {
                    Op::Add => a.add(&b)?,
                    Op::Sub => a.sub(&b)?,
                    Op::Mul => a.mul(&b)?,
                    Op::Div => a.div(&b)?,
                    Op::Maximum => a.maximum(&b)?,
                    Op::Minimum => a.minimum(&b)?,
                    Op::Pow => a.pow(&b)?,
                    Op::Gt => a.gt(&b)?,
                    Op::Lt => a.lt(&b)?,
                    Op::Ge => a.ge(&b)?,
                    Op::Le => a.le(&b)?,
                    Op::EqElem => a.eq_elem(&b)?,
                    Op::LogicalAnd => a.logical_and(&b)?,
                    _ => a.logical_or(&b)?,
                };
                self.kernel(
                    stats,
                    t_bytes(&a) + t_bytes(&b) + t_bytes(&out),
                    out.numel() as u64,
                );
                set(env, 0, RtValue::Tensor(out));
            }
            Op::AddScalar | Op::SubScalar | Op::MulScalar | Op::DivScalar | Op::PowScalar => {
                let a = tensor(0)?;
                let s = arg(1)?.as_float()? as f32;
                let out = match node.op {
                    Op::AddScalar => a.add_scalar(s),
                    Op::SubScalar => a.sub_scalar(s),
                    Op::MulScalar => a.mul_scalar(s),
                    Op::DivScalar => a.div_scalar(s),
                    _ => a.pow_scalar(s),
                };
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), out.numel() as u64);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Neg
            | Op::Relu
            | Op::Sigmoid
            | Op::Tanh
            | Op::Exp
            | Op::Log
            | Op::Sqrt
            | Op::Abs
            | Op::LogicalNot => {
                let a = tensor(0)?;
                let out = match node.op {
                    Op::Neg => a.neg(),
                    Op::Relu => a.relu(),
                    Op::Sigmoid => a.sigmoid(),
                    Op::Tanh => a.tanh(),
                    Op::Exp => a.exp(),
                    Op::Log => a.log(),
                    Op::Sqrt => a.sqrt(),
                    Op::Abs => a.abs(),
                    _ => a.logical_not(),
                };
                let unit = match node.op {
                    Op::Sigmoid | Op::Tanh | Op::Exp | Op::Log | Op::Sqrt => 4,
                    _ => 1,
                };
                self.kernel(
                    stats,
                    t_bytes(&a) + t_bytes(&out),
                    out.numel() as u64 * unit,
                );
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Clamp => {
                let a = tensor(0)?;
                let lo = arg(1)?.as_float()? as f32;
                let hi = arg(2)?.as_float()? as f32;
                let out = a.clamp(lo, hi)?;
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), out.numel() as u64);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Softmax { dim } => {
                let a = tensor(0)?;
                let out = a.softmax(*dim as isize)?;
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), a.numel() as u64 * 4);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::SumDim { dim, keepdim }
            | Op::MeanDim { dim, keepdim }
            | Op::MaxDim { dim, keepdim }
            | Op::MinDim { dim, keepdim } => {
                let a = tensor(0)?;
                let out = match node.op {
                    Op::SumDim { .. } => a.sum_dim(*dim as isize, *keepdim)?,
                    Op::MeanDim { .. } => a.mean_dim(*dim as isize, *keepdim)?,
                    Op::MaxDim { .. } => a.max_dim(*dim as isize, *keepdim)?,
                    _ => a.min_dim(*dim as isize, *keepdim)?,
                };
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), a.numel() as u64);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::ArgmaxDim { dim, keepdim } => {
                let a = tensor(0)?;
                let out = a.argmax_dim(*dim as isize, *keepdim)?;
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), a.numel() as u64);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Cumsum { dim } => {
                let a = tensor(0)?;
                let out = a.cumsum(*dim as isize)?;
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), a.numel() as u64);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Matmul => {
                let a = tensor(0)?;
                let b = tensor(1)?;
                let out = a.matmul(&b)?;
                let flops = 2 * a.shape()[0] * a.shape()[1] * b.shape()[1];
                self.kernel(
                    stats,
                    t_bytes(&a) + t_bytes(&b) + t_bytes(&out),
                    flops as u64,
                );
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Bmm => {
                let a = tensor(0)?;
                let b = tensor(1)?;
                let out = a.bmm(&b)?;
                let flops = 2 * a.shape()[0] * a.shape()[1] * a.shape()[2] * b.shape()[2];
                self.kernel(
                    stats,
                    t_bytes(&a) + t_bytes(&b) + t_bytes(&out),
                    flops as u64,
                );
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Concat { dim } | Op::Stack { dim } => {
                let tensors: Vec<Tensor> = node
                    .inputs
                    .iter()
                    .map(|&v| Ok(lookup(env, v)?.as_tensor()?.clone()))
                    .collect::<Result<_, ExecError>>()?;
                let refs: Vec<&Tensor> = tensors.iter().collect();
                let out = if matches!(node.op, Op::Concat { .. }) {
                    concat(&refs, *dim as isize)?
                } else {
                    stack(&refs, *dim as isize)?
                };
                self.kernel(stats, 2 * t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::WhereSelect => {
                let c = tensor(0)?;
                let a = tensor(1)?;
                let b = tensor(2)?;
                let out = where_select(&c, &a, &b)?;
                self.kernel(
                    stats,
                    t_bytes(&c) + t_bytes(&a) + t_bytes(&b) + t_bytes(&out),
                    out.numel() as u64,
                );
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Gather { dim } => {
                let a = tensor(0)?;
                let idx = tensor(1)?;
                let out = a.gather(*dim as isize, &idx)?;
                self.kernel(stats, t_bytes(&a) + t_bytes(&idx) + t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::IndexSelect { dim } => {
                let a = tensor(0)?;
                let idx = tensor(1)?;
                let out = a.index_select(*dim as isize, &idx)?;
                self.kernel(stats, t_bytes(&a) + t_bytes(&idx) + t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Cast { dtype } => {
                let a = tensor(0)?;
                let dt = match dtype {
                    tssa_ir::ScalarType::F32 => DType::F32,
                    tssa_ir::ScalarType::I64 => DType::I64,
                    tssa_ir::ScalarType::Bool => DType::Bool,
                };
                let out = a.cast(dt);
                self.kernel(stats, t_bytes(&a) + t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::CloneOp | Op::Contiguous => {
                let a = tensor(0)?;
                let out = a.clone_data();
                self.kernel(stats, 2 * t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Reshape { shape } => {
                let a = tensor(0)?;
                let s: Vec<isize> = shape.iter().map(|&d| d as isize).collect();
                let out = a.clone_data().view(&s)?;
                self.kernel(stats, 2 * t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }

            // -------------------------------------------------- TensorSSA
            Op::Access(kind) => {
                // Standalone (unfused) access materializes a copy kernel.
                let base = tensor(0)?;
                let extras = self.int_extras(env, &node.inputs[1..])?;
                let out = apply_view(&base, kind, &extras)?.clone_data();
                self.kernel(stats, 2 * t_bytes(&out), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Assign(kind) => {
                // Standalone assign: whole-tensor copy plus region write —
                // the cost fusion exists to eliminate.
                let base = tensor(0)?;
                let src = tensor(1)?;
                let extras = self.int_extras(env, &node.inputs[2..])?;
                let out = base.clone_data();
                let view = apply_view(&out, kind, &extras)?;
                view.copy_(&src)?;
                self.kernel(stats, 2 * t_bytes(&base) + t_bytes(&src), 0);
                set(env, 0, RtValue::Tensor(out));
            }
            Op::Update => {
                // Annotation with no semantics; tolerated for robustness.
            }

            // ------------------------------------------------------ fused
            Op::FusionGroup => {
                let inputs: Vec<RtValue> = node
                    .inputs
                    .iter()
                    .map(|&v| lookup(env, v))
                    .collect::<Result<_, _>>()?;
                let result = run_group(g, n, &inputs, self.observer.as_deref())?;
                self.kernel(stats, result.bytes, result.flops);
                for (i, v) in result.outputs.into_iter().enumerate() {
                    set(env, i, v);
                }
            }
            Op::ParallelMap { dim } => {
                let out = self.eval_parallel_map(g, n, *dim, env, stats)?;
                set(env, 0, RtValue::Tensor(out));
            }
        }
        Ok(())
    }

    fn int_extras(&self, env: &Env, values: &[ValueId]) -> Result<Vec<i64>, ExecError> {
        values.iter().map(|&v| lookup(env, v)?.as_int()).collect()
    }

    /// Execute all iterations of a `prim::ParallelMap` as one batched
    /// kernel (optionally on multiple worker threads).
    fn eval_parallel_map(
        &self,
        g: &Graph,
        n: NodeId,
        dim: i64,
        env: &mut Env,
        stats: &mut ExecStats,
    ) -> Result<Tensor, ExecError> {
        let started = self.observer.as_ref().map(|_| Instant::now());
        let node = g.node(n);
        let trip = lookup(env, node.inputs[0])?.as_int()?.max(0);
        let init = lookup(env, node.inputs[1])?.as_tensor()?.clone();
        let out = init.clone_data();
        let body = node.blocks[0];
        let i_param = g.block(body).params[0];
        let ret = g.block(body).returns[0];

        // Per-iteration work is metered into a silent sub-account and folded
        // into a single batched launch afterwards. When observed, each
        // iteration's body wall time is summed so the map node can report
        // only its own overhead (bodies report node by node).
        let mut inner = ExecStats::default();
        let mut body_ns = 0u64;
        let observing = self.observer.is_some();
        let run_iter =
            |i: i64, env_snapshot: &Env, acc: &mut ExecStats| -> Result<(Tensor, u64), ExecError> {
                let mut e = env_snapshot.clone();
                e.insert(i_param, RtValue::Int(i));
                let body_at = observing.then(Instant::now);
                self.eval_block(g, body, &mut e, acc)?;
                let ns = body_at.map_or(0, |t| t.elapsed().as_nanos() as u64);
                Ok((lookup(&e, ret)?.as_tensor()?.clone(), ns))
            };

        let threads = self.cfg.parallel_threads;
        if threads <= 1 || trip < 4 {
            for i in 0..trip {
                let (slice, ns) = run_iter(i, env, &mut inner)?;
                body_ns += ns;
                out.select(norm_dim(dim, out.rank())? as isize, i as isize)?
                    .copy_(&slice)?;
            }
        } else {
            let chunks: Vec<Vec<i64>> = (0..threads as i64)
                .map(|t| (0..trip).filter(|i| i % threads as i64 == t).collect())
                .collect();
            let results = crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for chunk in &chunks {
                    let env_ref = &*env;
                    handles.push(scope.spawn(move |_| {
                        let mut acc = ExecStats::default();
                        let mut slices = Vec::new();
                        let mut ns_sum = 0u64;
                        for &i in chunk {
                            match run_iter(i, env_ref, &mut acc) {
                                Ok((t, ns)) => {
                                    slices.push((i, t));
                                    ns_sum += ns;
                                }
                                Err(e) => return Err(e),
                            }
                        }
                        Ok((slices, acc, ns_sum))
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel map worker panicked"))
                    .collect::<Result<Vec<_>, ExecError>>()
            })
            .expect("parallel map scope panicked")?;
            for (slices, acc, ns_sum) in results {
                inner.merge(&acc);
                body_ns += ns_sum;
                for (i, slice) in slices {
                    out.select(norm_dim(dim, out.rank())? as isize, i as isize)?
                        .copy_(&slice)?;
                }
            }
        }

        // One batched launch: all per-iteration traffic and arithmetic, one
        // overhead, one dispatch.
        stats.kernel_launches += 1;
        let bytes = inner.bytes + 2 * t_bytes(&out);
        let flops = inner.flops;
        stats.device_ns +=
            self.cfg.device.launch_overhead_ns + self.cfg.device.kernel_work_ns(bytes, flops);
        stats.bytes += bytes;
        stats.flops += flops;
        stats.host_ns += self.cfg.host_dispatch_ns;
        if let (Some(t0), Some(obs)) = (started, &self.observer) {
            // Scatter copies and launch folding; per-thread body sums can
            // exceed the wall on multi-core runs, hence the saturation.
            let self_ns = (t0.elapsed().as_nanos() as u64).saturating_sub(body_ns);
            obs.record_op(
                TOP_LEVEL_GROUP,
                n.index() as u32,
                &node.op,
                self_ns,
                2 * t_bytes(&out),
                0,
            );
        }
        Ok(out)
    }
}

fn lookup(env: &Env, v: ValueId) -> Result<RtValue, ExecError> {
    env.get(&v)
        .cloned()
        .ok_or(ExecError::Undefined { value: v.index() })
}

fn t_bytes(t: &Tensor) -> u64 {
    (t.numel() * t.dtype().size_bytes()) as u64
}

fn norm_dim(dim: i64, rank: usize) -> Result<usize, ExecError> {
    let r = rank as i64;
    let d = if dim < 0 { dim + r } else { dim };
    if d < 0 || d >= r.max(1) {
        return Err(ExecError::unsupported(format!(
            "dimension {dim} out of range for rank {rank}"
        )));
    }
    Ok(d as usize)
}

/// Apply an aliasing view described by `kind` + resolved integer extras.
pub(crate) fn apply_view(
    base: &Tensor,
    kind: &ViewKind,
    extras: &[i64],
) -> Result<Tensor, ExecError> {
    Ok(match kind {
        ViewKind::Select { dim } => base.select(*dim as isize, extras[0] as isize)?,
        ViewKind::SliceView { dim } => {
            let end = extras[1].min(isize::MAX as i64) as isize;
            base.slice(*dim as isize, extras[0] as isize, end, extras[2] as isize)?
        }
        ViewKind::Permute { perm } => {
            let p: Vec<usize> = perm.iter().map(|&x| x as usize).collect();
            base.permute(&p)?
        }
        ViewKind::Transpose { dim0, dim1 } => base.transpose(*dim0 as isize, *dim1 as isize)?,
        ViewKind::Unsqueeze { dim } => base.unsqueeze(*dim as isize)?,
        ViewKind::Squeeze { dim } => base.squeeze(*dim as isize)?,
        ViewKind::Expand { shape } => {
            let pad = shape.len().saturating_sub(base.rank());
            let target: Vec<usize> = shape
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    if d == -1 && i >= pad {
                        base.shape()[i - pad]
                    } else {
                        d.max(0) as usize
                    }
                })
                .collect();
            base.expand(&target)?
        }
        ViewKind::ViewShape { shape } => {
            let s: Vec<isize> = shape.iter().map(|&d| d as isize).collect();
            base.view(&s)?
        }
    })
}

fn apply_mutation(
    recv: &Tensor,
    kind: tssa_ir::MutateKind,
    node: &tssa_ir::Node,
    env: &Env,
) -> Result<(), ExecError> {
    use tssa_ir::MutateKind as MK;
    let src = |i: usize| -> Result<Tensor, ExecError> {
        Ok(lookup(env, node.inputs[i])?.as_tensor()?.clone())
    };
    let flt = |i: usize| -> Result<f32, ExecError> {
        Ok(lookup(env, node.inputs[i])?.as_float()? as f32)
    };
    match kind {
        MK::Copy => recv.copy_(&src(1)?)?,
        MK::Fill => recv.fill_(flt(1)?)?,
        MK::Add => recv.add_(&src(1)?)?,
        MK::Sub => recv.sub_(&src(1)?)?,
        MK::Mul => recv.mul_(&src(1)?)?,
        MK::Div => recv.div_(&src(1)?)?,
        MK::AddScalar => recv.add_scalar_(flt(1)?)?,
        MK::MulScalar => recv.mul_scalar_(flt(1)?)?,
        MK::Relu => recv.relu_()?,
        MK::Sigmoid => recv.sigmoid_()?,
        MK::Tanh => recv.tanh_()?,
        MK::Exp => recv.exp_()?,
        MK::Neg => recv.neg_()?,
        MK::Clamp => recv.clamp_(flt(1)?, flt(2)?)?,
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tssa_ir::parse_graph;

    fn run_compiled(src: &str, inputs: &[RtValue]) -> (Vec<RtValue>, ExecStats) {
        let g = parse_graph(src).unwrap();
        g.verify().unwrap();
        Executor::new(ExecConfig::compiled())
            .run(&g, inputs)
            .unwrap()
    }

    #[test]
    fn executes_views_and_mutations_with_aliasing() {
        let (outs, stats) = run_compiled(
            "graph(%x : Tensor):
               %b : Tensor = aten::clone(%x)
               %i : int = prim::Constant[value=0]()
               %v : Tensor = aten::select[dim=0](%b, %i)
               %f : float = prim::Constant[value=9.0]()
               %m : Tensor = aten::fill_(%v, %f)
               return (%b)",
            &[RtValue::Tensor(Tensor::zeros(&[2, 2]))],
        );
        let t = outs[0].as_tensor().unwrap();
        assert_eq!(t.to_vec_f32().unwrap(), vec![9.0, 9.0, 0.0, 0.0]);
        // clone + fill_ kernels; view/constants are host-side.
        assert_eq!(stats.kernel_launches, 2);
    }

    #[test]
    fn loop_accumulates() {
        let (outs, _) = run_compiled(
            "graph(%x : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %x)
                 block0(%i : int, %c : Tensor):
                   %one : float = prim::Constant[value=1.0]()
                   %u : Tensor = aten::add_scalar(%c, %one)
                   -> (%t, %u)
               return (%o)",
            &[RtValue::Tensor(Tensor::zeros(&[2])), RtValue::Int(5)],
        );
        assert_eq!(
            outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
            vec![5.0, 5.0]
        );
    }

    #[test]
    fn branch_selects_block() {
        let src = "graph(%x : Tensor, %c : bool):
               %o : Tensor = prim::If(%c)
                 block0():
                   %a : Tensor = aten::relu(%x)
                   -> (%a)
                 block1():
                   %b : Tensor = aten::neg(%x)
                   -> (%b)
               return (%o)";
        let x = Tensor::from_vec_f32(vec![-2.0, 3.0], &[2]).unwrap();
        let (outs, _) = run_compiled(src, &[RtValue::Tensor(x.clone()), RtValue::Bool(true)]);
        assert_eq!(
            outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
            vec![0.0, 3.0]
        );
        let (outs, _) = run_compiled(src, &[RtValue::Tensor(x), RtValue::Bool(false)]);
        assert_eq!(
            outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
            vec![2.0, -3.0]
        );
    }

    #[test]
    fn access_assign_value_semantics() {
        let (outs, _) = run_compiled(
            "graph(%x : Tensor):
               %i : int = prim::Constant[value=0]()
               %v : Tensor = immut::select[dim=0](%x, %i)
               %f : float = prim::Constant[value=1.0]()
               %w : Tensor = aten::add_scalar(%v, %f)
               %s : Tensor = immut::assign_select[dim=0](%x, %w, %i)
               return (%s, %x, %v)",
            &[RtValue::Tensor(Tensor::zeros(&[2, 2]))],
        );
        // New version has the write; the input and the access are untouched.
        assert_eq!(
            outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
            vec![1.0, 1.0, 0.0, 0.0]
        );
        assert_eq!(
            outs[1].as_tensor().unwrap().to_vec_f32().unwrap(),
            vec![0.0; 4]
        );
        assert_eq!(
            outs[2].as_tensor().unwrap().to_vec_f32().unwrap(),
            vec![0.0, 0.0]
        );
    }

    #[test]
    fn fusion_group_single_launch_same_result() {
        let fused_src = "graph(%x : Tensor):
               %o : Tensor = prim::FusionGroup(%x)
                 block0(%p : Tensor):
                   %a : Tensor = aten::sigmoid(%p)
                   %b : Tensor = aten::mul(%a, %p)
                   -> (%b)
               return (%o)";
        let unfused_src = "graph(%x : Tensor):
               %a : Tensor = aten::sigmoid(%x)
               %b : Tensor = aten::mul(%a, %x)
               return (%b)";
        let x = Tensor::rand_uniform(&[4, 4], -1.0, 1.0, 3);
        let (fo, fs) = run_compiled(fused_src, &[RtValue::Tensor(x.clone())]);
        let (uo, us) = run_compiled(unfused_src, &[RtValue::Tensor(x)]);
        assert!(fo[0]
            .as_tensor()
            .unwrap()
            .allclose(uo[0].as_tensor().unwrap(), 1e-6));
        assert_eq!(fs.kernel_launches, 1);
        assert_eq!(us.kernel_launches, 2);
        assert!(fs.total_ns() < us.total_ns());
    }

    #[test]
    fn parallel_map_matches_sequential_loop() {
        let pm_src = "graph(%b0 : Tensor, %n : int):
               %o : Tensor = prim::ParallelMap[dim=0](%n, %b0)
                 block0(%i : int):
                   %bi : Tensor = immut::select[dim=0](%b0, %i)
                   %one : float = prim::Constant[value=1.0]()
                   %w : Tensor = aten::add_scalar(%bi, %one)
                   -> (%w)
               return (%o)";
        let loop_src = "graph(%b0 : Tensor, %n : int):
               %t : bool = prim::Constant[value=true]()
               %o : Tensor = prim::Loop(%n, %t, %b0)
                 block0(%i : int, %c : Tensor):
                   %bi : Tensor = immut::select[dim=0](%c, %i)
                   %one : float = prim::Constant[value=1.0]()
                   %w : Tensor = aten::add_scalar(%bi, %one)
                   %c2 : Tensor = immut::assign_select[dim=0](%c, %w, %i)
                   -> (%t, %c2)
               return (%o)";
        let b = Tensor::rand_uniform(&[6, 3], 0.0, 1.0, 7);
        let inputs = [RtValue::Tensor(b), RtValue::Int(6)];
        let (po, ps) = run_compiled(pm_src, &inputs);
        let (lo, ls) = run_compiled(loop_src, &inputs);
        assert!(po[0]
            .as_tensor()
            .unwrap()
            .allclose(lo[0].as_tensor().unwrap(), 1e-6));
        assert_eq!(ps.kernel_launches, 1);
        assert!(ls.kernel_launches > 6);
    }

    #[test]
    fn parallel_map_multithreaded_matches_serial() {
        let pm_src = "graph(%b0 : Tensor, %n : int):
               %o : Tensor = prim::ParallelMap[dim=0](%n, %b0)
                 block0(%i : int):
                   %bi : Tensor = immut::select[dim=0](%b0, %i)
                   %w : Tensor = aten::sigmoid(%bi)
                   -> (%w)
               return (%o)";
        let g = parse_graph(pm_src).unwrap();
        let b = Tensor::rand_uniform(&[16, 8], -2.0, 2.0, 11);
        let serial = Executor::new(ExecConfig::compiled())
            .run(&g, &[RtValue::Tensor(b.clone()), RtValue::Int(16)])
            .unwrap();
        let parallel = Executor::new(ExecConfig::compiled().with_parallel_threads(4))
            .run(&g, &[RtValue::Tensor(b), RtValue::Int(16)])
            .unwrap();
        assert!(serial.0[0]
            .as_tensor()
            .unwrap()
            .allclose(parallel.0[0].as_tensor().unwrap(), 1e-6));
        assert_eq!(parallel.1.kernel_launches, 1);
    }

    #[test]
    fn scalar_and_item_ops() {
        let (outs, _) = run_compiled(
            "graph(%x : Tensor):
               %s : int = aten::size[dim=0](%x)
               %two : int = prim::Constant[value=2]()
               %m : int = aten::int_mul(%s, %two)
               return (%m)",
            &[RtValue::Tensor(Tensor::zeros(&[3, 4]))],
        );
        assert_eq!(outs[0].as_int().unwrap(), 6);
    }

    #[test]
    fn undefined_input_arity_is_reported() {
        let g = parse_graph("graph(%x : Tensor):\n  return (%x)").unwrap();
        let r = Executor::new(ExecConfig::compiled()).run(&g, &[]);
        assert!(matches!(r, Err(ExecError::ArityMismatch { .. })));
    }
}
