//! Evaluation of `prim::FusionGroup` bodies.
//!
//! The group is compiled at execution time — when input shapes and scalar
//! operands (slice bounds, select indices, fill values) are known, the same
//! shape-specialization strategy as PyTorch NNC — into a flat plan of
//! element-level operations, then materialized one tight pass per operator
//! over plain `Vec` buffers (no tensor machinery, no locks, each element
//! computed exactly once).
//!
//! The *cost model* charges the whole group as a single kernel whose memory
//! traffic covers only the group's inputs and outputs: on the modeled GPU
//! the fused kernel keeps intermediates in registers. The host-side flat
//! buffers here are an interpreter implementation detail.

use tssa_ir::{Graph, NodeId, Op, ValueId, ViewKind};
use tssa_tensor::{DType, Scalar, Tensor};

use crate::observe::OpObserver;
use crate::{ExecError, RtValue};

/// Result of executing a fusion group.
pub(crate) struct GroupResult {
    /// One runtime value per node output.
    pub outputs: Vec<RtValue>,
    /// Device-memory traffic of the fused kernel (inputs + outputs).
    pub bytes: u64,
    /// Arithmetic work of the fused kernel.
    pub flops: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Input(usize),
    Node(usize),
}

#[derive(Debug, Clone, Copy)]
enum UnKind {
    Neg,
    Relu,
    Sigmoid,
    Tanh,
    Exp,
    Log,
    Sqrt,
    Abs,
    Not,
}

#[derive(Debug, Clone, Copy)]
enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Max,
    Min,
    Pow,
    Gt,
    Lt,
    Ge,
    Le,
    Eq,
    And,
    Or,
}

/// Out-coordinate → base-coordinate transform of an access, or the region
/// test + inverse of an assign.
#[derive(Debug, Clone)]
enum Xform {
    Select {
        dim: usize,
        index: usize,
    },
    Slice {
        dim: usize,
        start: usize,
        step: usize,
        len: usize,
    },
    Permute {
        perm: Vec<usize>,
    },
    Transpose {
        d0: usize,
        d1: usize,
    },
    Unsqueeze {
        dim: usize,
    },
    Squeeze {
        dim: usize,
    },
    Expand {
        base_shape: Vec<usize>,
    },
    ViewShape {
        base_shape: Vec<usize>,
        out_shape: Vec<usize>,
    },
}

#[derive(Debug, Clone)]
enum EvalOp {
    Un {
        f: UnKind,
        a: Slot,
    },
    Bin {
        f: BinKind,
        a: Slot,
        b: Slot,
    },
    AddConst {
        a: Slot,
        c: f32,
        mul: bool,
    },
    SubConst {
        a: Slot,
        c: f32,
    },
    DivConst {
        a: Slot,
        c: f32,
    },
    PowConst {
        a: Slot,
        c: f32,
    },
    Clamp {
        a: Slot,
        lo: f32,
        hi: f32,
    },
    Where {
        c: Slot,
        a: Slot,
        b: Slot,
    },
    Fill {
        value: Scalar,
    },
    Broadcast {
        src: Slot,
    },
    Access {
        base: Slot,
        xform: Xform,
    },
    Assign {
        base: Slot,
        src: Slot,
        xform: Xform,
        view_shape: Vec<usize>,
    },
    Cast {
        a: Slot,
        dtype: DType,
    },
}

struct PlanNode {
    op: EvalOp,
    shape: Vec<usize>,
    dtype: DType,
    compute: bool,
}

#[derive(Clone)]
enum InputBuf {
    F32(Vec<f32>, Vec<usize>),
    I64(Vec<i64>, Vec<usize>),
    Bool(Vec<bool>, Vec<usize>),
    Scalar(Scalar),
}

impl InputBuf {
    fn shape(&self) -> &[usize] {
        match self {
            InputBuf::F32(_, s) | InputBuf::I64(_, s) | InputBuf::Bool(_, s) => s,
            InputBuf::Scalar(_) => &[],
        }
    }

    fn dtype(&self) -> DType {
        match self {
            InputBuf::F32(..) => DType::F32,
            InputBuf::I64(..) => DType::I64,
            InputBuf::Bool(..) => DType::Bool,
            InputBuf::Scalar(s) => s.dtype(),
        }
    }

    fn at_flat(&self, i: usize) -> Scalar {
        match self {
            InputBuf::F32(v, _) => Scalar::F32(v[i]),
            InputBuf::I64(v, _) => Scalar::I64(v[i]),
            InputBuf::Bool(v, _) => Scalar::Bool(v[i]),
            InputBuf::Scalar(s) => *s,
        }
    }
}

struct Plan {
    inputs: Vec<InputBuf>,
    nodes: Vec<PlanNode>,
    /// Materialized node results, filled in topological order by
    /// [`Plan::materialize`]; `at` for a `Slot::Node` reads from here, so a
    /// node's elements are computed exactly once with no recursion depth.
    cache: Vec<InputBuf>,
}

fn flat_index(coord: &[usize], shape: &[usize]) -> usize {
    let mut idx = 0usize;
    for (c, s) in coord.iter().zip(shape) {
        idx = idx * s + c;
    }
    idx
}

fn delinearize(mut idx: usize, shape: &[usize]) -> Vec<usize> {
    let mut coord = vec![0usize; shape.len()];
    for i in (0..shape.len()).rev() {
        coord[i] = idx % shape[i];
        idx /= shape[i];
    }
    coord
}

/// Map an output coordinate onto a (possibly broadcast) operand shape.
fn bc_coord(coord: &[usize], operand_shape: &[usize]) -> Vec<usize> {
    let pad = coord.len() - operand_shape.len();
    operand_shape
        .iter()
        .enumerate()
        .map(|(i, &d)| if d == 1 { 0 } else { coord[pad + i] })
        .collect()
}

/// Whether `coord` can be passed to an operand of `shape` unchanged.
fn bc_identity(coord_len: usize, operand_shape: &[usize]) -> bool {
    coord_len == operand_shape.len() && !operand_shape.contains(&1)
}

fn broadcast_shapes(a: &[usize], b: &[usize]) -> Result<Vec<usize>, ExecError> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db || db == 1 {
            da
        } else if da == 1 {
            db
        } else {
            return Err(ExecError::unsupported(format!(
                "fused broadcast of {a:?} and {b:?}"
            )));
        };
    }
    Ok(out)
}

fn promote(a: DType, b: DType) -> DType {
    match (a, b) {
        (DType::F32, _) | (_, DType::F32) => DType::F32,
        (DType::I64, _) | (_, DType::I64) => DType::I64,
        _ => DType::Bool,
    }
}

impl Plan {
    fn slot_shape(&self, s: Slot) -> &[usize] {
        match s {
            Slot::Input(i) => self.inputs[i].shape(),
            Slot::Node(i) => &self.nodes[i].shape,
        }
    }

    fn slot_dtype(&self, s: Slot) -> DType {
        match s {
            Slot::Input(i) => self.inputs[i].dtype(),
            Slot::Node(i) => self.nodes[i].dtype,
        }
    }

    /// Value of `slot` at `coord` (a coordinate in the slot's own shape).
    /// Node slots must already be materialized.
    fn at(&self, slot: Slot, coord: &[usize]) -> Scalar {
        match slot {
            Slot::Input(i) => {
                let shape = self.inputs[i].shape();
                self.inputs[i].at_flat(flat_index(coord, shape))
            }
            Slot::Node(i) => self.cache[i].at_flat(flat_index(coord, &self.nodes[i].shape)),
        }
    }

    /// Whether `Slot::Node(i)`'s buffer is still needed after node `idx`
    /// (by a later node or as a group return, tracked in `returned`).
    fn node_live_after(&self, i: usize, idx: usize, returned: &[bool]) -> bool {
        if returned[i] {
            return true;
        }
        self.nodes[idx + 1..]
            .iter()
            .any(|n| eval_op_slots(&n.op).contains(&Slot::Node(i)))
    }

    /// Evaluate an assign by writing only its *region* into `buf` (which
    /// already holds the base contents) — the re-inplacing optimization a
    /// production backend performs; turns O(tensor) assigns into O(region).
    fn write_region(&self, buf: &mut InputBuf, xform: &Xform, src: Slot, view_shape: &[usize]) {
        let n: usize = view_shape.iter().product();
        if n == 0 {
            return;
        }
        let base_shape = match buf {
            InputBuf::F32(_, s) | InputBuf::I64(_, s) | InputBuf::Bool(_, s) => s.clone(),
            InputBuf::Scalar(_) => return,
        };
        let mut coord = vec![0usize; view_shape.len()];
        for _ in 0..n {
            // view coord -> base coord via the access mapping (same rule).
            let base_coord = access_coord(xform, &coord);
            let flat = flat_index(&base_coord, &base_shape);
            let v = self.at_bc(src, &coord);
            match buf {
                InputBuf::F32(d, _) => d[flat] = v.as_f32(),
                InputBuf::I64(d, _) => d[flat] = v.as_i64(),
                InputBuf::Bool(d, _) => d[flat] = v.as_bool(),
                InputBuf::Scalar(_) => {}
            }
            // odometer step
            let mut i = view_shape.len();
            loop {
                if i == 0 {
                    break;
                }
                i -= 1;
                coord[i] += 1;
                if coord[i] < view_shape[i] {
                    break;
                }
                coord[i] = 0;
            }
        }
    }

    /// Evaluate every node into the cache, in plan order: one tight pass per
    /// node, each element computed exactly once. Assigns reuse (or copy)
    /// their base buffer and write only the assigned region. When `observe`
    /// is set it receives `(plan index, wall ns)` per node so the profiler
    /// can attribute self-time inside the single fused launch.
    fn materialize(&mut self, returned: &[bool], mut observe: Option<&mut dyn FnMut(usize, u64)>) {
        for idx in 0..self.nodes.len() {
            let started = observe.as_ref().map(|_| std::time::Instant::now());
            if let EvalOp::Assign {
                base,
                src,
                xform,
                view_shape,
            } = self.nodes[idx].op.clone()
            {
                let mut buf = match base {
                    Slot::Node(i) if base != src && !self.node_live_after(i, idx, returned) => {
                        // Steal the dead base buffer: true in-place update.
                        std::mem::replace(&mut self.cache[i], InputBuf::Scalar(Scalar::F32(0.0)))
                    }
                    Slot::Node(i) => self.cache[i].clone(),
                    Slot::Input(i) => self.inputs[i].clone(),
                };
                self.write_region(&mut buf, &xform, src, &view_shape);
                self.cache.push(buf);
            } else {
                self.materialize_full(idx);
            }
            if let (Some(obs), Some(at)) = (observe.as_mut(), started) {
                obs(idx, at.elapsed().as_nanos() as u64);
            }
        }
    }

    fn materialize_full(&mut self, idx: usize) {
        {
            let shape = self.nodes[idx].shape.clone();
            let dtype = self.nodes[idx].dtype;
            let n: usize = shape.iter().product();
            let mut coord = vec![0usize; shape.len()];
            let step = |coord: &mut Vec<usize>| {
                let mut i = shape.len();
                loop {
                    if i == 0 {
                        return;
                    }
                    i -= 1;
                    coord[i] += 1;
                    if coord[i] < shape[i] {
                        return;
                    }
                    coord[i] = 0;
                }
            };
            let buf = match dtype {
                DType::F32 => {
                    let mut data = Vec::with_capacity(n);
                    for _ in 0..n {
                        data.push(self.eval_node(idx, &coord).as_f32());
                        step(&mut coord);
                    }
                    InputBuf::F32(data, shape)
                }
                DType::I64 => {
                    let mut data = Vec::with_capacity(n);
                    for _ in 0..n {
                        data.push(self.eval_node(idx, &coord).as_i64());
                        step(&mut coord);
                    }
                    InputBuf::I64(data, shape)
                }
                DType::Bool => {
                    let mut data = Vec::with_capacity(n);
                    for _ in 0..n {
                        data.push(self.eval_node(idx, &coord).as_bool());
                        step(&mut coord);
                    }
                    InputBuf::Bool(data, shape)
                }
            };
            self.cache.push(buf);
        }
    }

    /// Value of operand `slot` broadcast up to `coord` of shape `out_shape`.
    fn at_bc(&self, slot: Slot, coord: &[usize]) -> Scalar {
        let shape = self.slot_shape(slot);
        if bc_identity(coord.len(), shape) {
            return self.at(slot, coord);
        }
        let c = bc_coord(coord, shape);
        self.at(slot, &c)
    }

    fn eval_node(&self, idx: usize, coord: &[usize]) -> Scalar {
        let node = &self.nodes[idx];
        match &node.op {
            EvalOp::Un { f, a } => {
                let v = self.at_bc(*a, coord);
                un_apply(*f, v)
            }
            EvalOp::Bin { f, a, b } => {
                let va = self.at_bc(*a, coord);
                let vb = self.at_bc(*b, coord);
                bin_apply(*f, va, vb).cast(node.dtype)
            }
            EvalOp::AddConst { a, c, mul } => {
                let v = self.at_bc(*a, coord).as_f32();
                Scalar::F32(if *mul { v * c } else { v + c })
            }
            EvalOp::SubConst { a, c } => Scalar::F32(self.at_bc(*a, coord).as_f32() - c),
            EvalOp::DivConst { a, c } => Scalar::F32(self.at_bc(*a, coord).as_f32() / c),
            EvalOp::PowConst { a, c } => Scalar::F32(self.at_bc(*a, coord).as_f32().powf(*c)),
            EvalOp::Clamp { a, lo, hi } => {
                Scalar::F32(self.at_bc(*a, coord).as_f32().clamp(*lo, *hi))
            }
            EvalOp::Where { c, a, b } => {
                if self.at_bc(*c, coord).as_bool() {
                    self.at_bc(*a, coord).cast(node.dtype)
                } else {
                    self.at_bc(*b, coord).cast(node.dtype)
                }
            }
            EvalOp::Fill { value } => value.cast(node.dtype),
            EvalOp::Broadcast { src } => self.at_bc(*src, coord).cast(node.dtype),
            EvalOp::Access { base, xform } => {
                let bc = access_coord(xform, coord);
                self.at(*base, &bc)
            }
            EvalOp::Assign {
                base,
                src,
                xform,
                view_shape,
            } => match assign_region(xform, coord) {
                Some(view_coord) => {
                    let s = self.slot_shape(*src).to_vec();
                    let _ = view_shape;
                    let sc = bc_coord(&view_coord, &s);
                    self.at(*src, &sc).cast(node.dtype)
                }
                None => self.at(*base, coord),
            },
            EvalOp::Cast { a, dtype } => self.at_bc(*a, coord).cast(*dtype),
        }
    }
}

fn un_apply(f: UnKind, v: Scalar) -> Scalar {
    match f {
        UnKind::Neg => match v {
            Scalar::I64(x) => Scalar::I64(-x),
            _ => Scalar::F32(-v.as_f32()),
        },
        UnKind::Relu => Scalar::F32(v.as_f32().max(0.0)),
        UnKind::Sigmoid => Scalar::F32(1.0 / (1.0 + (-v.as_f32()).exp())),
        UnKind::Tanh => Scalar::F32(v.as_f32().tanh()),
        UnKind::Exp => Scalar::F32(v.as_f32().exp()),
        UnKind::Log => Scalar::F32(v.as_f32().ln()),
        UnKind::Sqrt => Scalar::F32(v.as_f32().sqrt()),
        UnKind::Abs => match v {
            Scalar::I64(x) => Scalar::I64(x.abs()),
            _ => Scalar::F32(v.as_f32().abs()),
        },
        UnKind::Not => Scalar::Bool(!v.as_bool()),
    }
}

fn bin_apply(f: BinKind, a: Scalar, b: Scalar) -> Scalar {
    let (x, y) = (a.as_f64(), b.as_f64());
    match f {
        BinKind::Add => Scalar::F32((x + y) as f32),
        BinKind::Sub => Scalar::F32((x - y) as f32),
        BinKind::Mul => Scalar::F32((x * y) as f32),
        BinKind::Div => Scalar::F32((x / y) as f32),
        BinKind::Max => Scalar::F32(x.max(y) as f32),
        BinKind::Min => Scalar::F32(x.min(y) as f32),
        BinKind::Pow => Scalar::F32(x.powf(y) as f32),
        BinKind::Gt => Scalar::Bool(x > y),
        BinKind::Lt => Scalar::Bool(x < y),
        BinKind::Ge => Scalar::Bool(x >= y),
        BinKind::Le => Scalar::Bool(x <= y),
        BinKind::Eq => Scalar::Bool(x == y),
        BinKind::And => Scalar::Bool(a.as_bool() && b.as_bool()),
        BinKind::Or => Scalar::Bool(a.as_bool() || b.as_bool()),
    }
}

fn access_coord(xform: &Xform, coord: &[usize]) -> Vec<usize> {
    match xform {
        Xform::Select { dim, index } => {
            let mut c = coord.to_vec();
            c.insert(*dim, *index);
            c
        }
        Xform::Slice {
            dim, start, step, ..
        } => {
            let mut c = coord.to_vec();
            c[*dim] = start + c[*dim] * step;
            c
        }
        Xform::Permute { perm } => {
            let mut c = vec![0usize; coord.len()];
            for (i, &p) in perm.iter().enumerate() {
                c[p] = coord[i];
            }
            c
        }
        Xform::Transpose { d0, d1 } => {
            let mut c = coord.to_vec();
            c.swap(*d0, *d1);
            c
        }
        Xform::Unsqueeze { dim } => {
            let mut c = coord.to_vec();
            c.remove(*dim);
            c
        }
        Xform::Squeeze { dim } => {
            let mut c = coord.to_vec();
            c.insert(*dim, 0);
            c
        }
        Xform::Expand { base_shape } => bc_coord(coord, base_shape),
        Xform::ViewShape {
            base_shape,
            out_shape,
        } => delinearize(flat_index(coord, out_shape), base_shape),
    }
}

/// For an assign at base-coordinate `coord`: `Some(view_coord)` when the
/// coordinate lies in the written region, `None` when the base value shows
/// through.
fn assign_region(xform: &Xform, coord: &[usize]) -> Option<Vec<usize>> {
    match xform {
        Xform::Select { dim, index } => {
            if coord[*dim] == *index {
                let mut c = coord.to_vec();
                c.remove(*dim);
                Some(c)
            } else {
                None
            }
        }
        Xform::Slice {
            dim,
            start,
            step,
            len,
        } => {
            let x = coord[*dim];
            if x < *start {
                return None;
            }
            let off = x - start;
            if !off.is_multiple_of(*step) || off / step >= *len {
                return None;
            }
            let mut c = coord.to_vec();
            c[*dim] = off / step;
            Some(c)
        }
        Xform::Permute { perm } => {
            // view_coord[i] = base_coord[perm[i]]
            Some(perm.iter().map(|&p| coord[p]).collect())
        }
        Xform::Transpose { d0, d1 } => {
            let mut c = coord.to_vec();
            c.swap(*d0, *d1);
            Some(c)
        }
        Xform::Unsqueeze { dim } => {
            let mut c = coord.to_vec();
            c.insert(*dim, 0);
            Some(c)
        }
        Xform::Squeeze { dim } => {
            let mut c = coord.to_vec();
            c.remove(*dim);
            Some(c)
        }
        Xform::ViewShape {
            base_shape,
            out_shape,
        } => Some(delinearize(flat_index(coord, base_shape), out_shape)),
        Xform::Expand { .. } => None,
    }
}

fn tensor_to_buf(t: &Tensor) -> Result<InputBuf, ExecError> {
    let c = t.contiguous();
    let shape = c.shape().to_vec();
    Ok(match c.dtype() {
        DType::F32 => InputBuf::F32(c.to_vec_f32()?, shape),
        DType::I64 => InputBuf::I64(c.to_vec_i64()?, shape),
        DType::Bool => InputBuf::Bool(c.to_vec_bool()?, shape),
    })
}

fn resolve_shape_arg(shape: &[i64], base: &[usize], right_align: bool) -> Vec<usize> {
    if right_align {
        let pad = shape.len().saturating_sub(base.len());
        shape
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                if d == -1 && i >= pad {
                    base[i - pad]
                } else {
                    d.max(0) as usize
                }
            })
            .collect()
    } else {
        // resolve a single -1 against the element count
        let total: usize = base.iter().product();
        let known: usize = shape
            .iter()
            .filter(|&&d| d != -1)
            .map(|&d| d as usize)
            .product();
        shape
            .iter()
            .map(|&d| {
                if d == -1 {
                    total / known.max(1)
                } else {
                    d as usize
                }
            })
            .collect()
    }
}

/// Execute `group` (a `prim::FusionGroup` node) on `inputs`.
///
/// When an [`OpObserver`] is supplied, each body node's share of the fused
/// launch is timed during materialization and attributed to its graph node
/// id under the group, with the remaining plan-building/readback overhead
/// reported against the group node itself.
pub(crate) fn run_group(
    g: &Graph,
    group: NodeId,
    inputs: &[RtValue],
    observer: Option<&dyn OpObserver>,
) -> Result<GroupResult, ExecError> {
    let total_at = observer.map(|_| std::time::Instant::now());
    let body = g.node(group).blocks[0];
    let params: Vec<ValueId> = g.block(body).params.clone();

    let mut plan = Plan {
        inputs: Vec::with_capacity(inputs.len()),
        nodes: Vec::new(),
        cache: Vec::new(),
    };
    let mut slot_of: std::collections::HashMap<ValueId, Slot> = std::collections::HashMap::new();
    for (k, v) in inputs.iter().enumerate() {
        let buf = match v {
            RtValue::Tensor(t) => tensor_to_buf(t)?,
            RtValue::Float(f) => InputBuf::Scalar(Scalar::F32(*f as f32)),
            RtValue::Int(i) => InputBuf::Scalar(Scalar::I64(*i)),
            RtValue::Bool(b) => InputBuf::Scalar(Scalar::Bool(*b)),
            RtValue::List(_) => return Err(ExecError::unsupported("list input to fusion group")),
        };
        plan.inputs.push(buf);
        slot_of.insert(params[k], Slot::Input(k));
    }

    let scalar_f32 = |plan: &Plan, slot: Slot| -> Result<f32, ExecError> {
        match slot {
            Slot::Input(i) => match &plan.inputs[i] {
                InputBuf::Scalar(s) => Ok(s.as_f32()),
                _ => Err(ExecError::unsupported("expected scalar operand in group")),
            },
            Slot::Node(_) => Err(ExecError::unsupported("computed scalar operand in group")),
        }
    };
    let scalar_usize = |plan: &Plan, slot: Slot| -> Result<i64, ExecError> {
        match slot {
            Slot::Input(i) => match &plan.inputs[i] {
                InputBuf::Scalar(s) => Ok(s.as_i64()),
                _ => Err(ExecError::unsupported("expected int operand in group")),
            },
            Slot::Node(_) => Err(ExecError::unsupported("computed int operand in group")),
        }
    };

    for n in g.block(body).nodes.clone() {
        let node = g.node(n).clone();
        let slot = |v: ValueId| -> Result<Slot, ExecError> {
            slot_of
                .get(&v)
                .copied()
                .ok_or_else(|| ExecError::unsupported("group operand escapes compilation scope"))
        };
        let (op, shape, dtype, compute): (EvalOp, Vec<usize>, DType, bool) = match &node.op {
            Op::Neg
            | Op::Relu
            | Op::Sigmoid
            | Op::Tanh
            | Op::Exp
            | Op::Log
            | Op::Sqrt
            | Op::Abs
            | Op::LogicalNot => {
                let a = slot(node.inputs[0])?;
                let f = match node.op {
                    Op::Neg => UnKind::Neg,
                    Op::Relu => UnKind::Relu,
                    Op::Sigmoid => UnKind::Sigmoid,
                    Op::Tanh => UnKind::Tanh,
                    Op::Exp => UnKind::Exp,
                    Op::Log => UnKind::Log,
                    Op::Sqrt => UnKind::Sqrt,
                    Op::Abs => UnKind::Abs,
                    _ => UnKind::Not,
                };
                let dt = match node.op {
                    Op::Neg | Op::Abs => plan.slot_dtype(a),
                    Op::LogicalNot => DType::Bool,
                    _ => DType::F32,
                };
                (EvalOp::Un { f, a }, plan.slot_shape(a).to_vec(), dt, true)
            }
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Div
            | Op::Maximum
            | Op::Minimum
            | Op::Pow
            | Op::Gt
            | Op::Lt
            | Op::Ge
            | Op::Le
            | Op::EqElem
            | Op::LogicalAnd
            | Op::LogicalOr => {
                let a = slot(node.inputs[0])?;
                let b = slot(node.inputs[1])?;
                let f = match node.op {
                    Op::Add => BinKind::Add,
                    Op::Sub => BinKind::Sub,
                    Op::Mul => BinKind::Mul,
                    Op::Div => BinKind::Div,
                    Op::Maximum => BinKind::Max,
                    Op::Minimum => BinKind::Min,
                    Op::Pow => BinKind::Pow,
                    Op::Gt => BinKind::Gt,
                    Op::Lt => BinKind::Lt,
                    Op::Ge => BinKind::Ge,
                    Op::Le => BinKind::Le,
                    Op::EqElem => BinKind::Eq,
                    Op::LogicalAnd => BinKind::And,
                    _ => BinKind::Or,
                };
                let shape = broadcast_shapes(plan.slot_shape(a), plan.slot_shape(b))?;
                let dt = match f {
                    BinKind::Gt
                    | BinKind::Lt
                    | BinKind::Ge
                    | BinKind::Le
                    | BinKind::Eq
                    | BinKind::And
                    | BinKind::Or => DType::Bool,
                    BinKind::Div | BinKind::Pow => DType::F32,
                    _ => promote(plan.slot_dtype(a), plan.slot_dtype(b)),
                };
                (EvalOp::Bin { f, a, b }, shape, dt, true)
            }
            Op::AddScalar | Op::MulScalar | Op::SubScalar | Op::DivScalar | Op::PowScalar => {
                let a = slot(node.inputs[0])?;
                let c = scalar_f32(&plan, slot(node.inputs[1])?)?;
                let op = match node.op {
                    Op::AddScalar => EvalOp::AddConst { a, c, mul: false },
                    Op::MulScalar => EvalOp::AddConst { a, c, mul: true },
                    Op::SubScalar => EvalOp::SubConst { a, c },
                    Op::DivScalar => EvalOp::DivConst { a, c },
                    _ => EvalOp::PowConst { a, c },
                };
                (op, plan.slot_shape(a).to_vec(), DType::F32, true)
            }
            Op::Clamp => {
                let a = slot(node.inputs[0])?;
                let lo = scalar_f32(&plan, slot(node.inputs[1])?)?;
                let hi = scalar_f32(&plan, slot(node.inputs[2])?)?;
                (
                    EvalOp::Clamp { a, lo, hi },
                    plan.slot_shape(a).to_vec(),
                    DType::F32,
                    true,
                )
            }
            Op::WhereSelect => {
                let c = slot(node.inputs[0])?;
                let a = slot(node.inputs[1])?;
                let b = slot(node.inputs[2])?;
                let s1 = broadcast_shapes(plan.slot_shape(a), plan.slot_shape(b))?;
                let shape = broadcast_shapes(plan.slot_shape(c), &s1)?;
                let dt = promote(plan.slot_dtype(a), plan.slot_dtype(b));
                (EvalOp::Where { c, a, b }, shape, dt, true)
            }
            Op::FullLike => {
                let like = slot(node.inputs[0])?;
                let v = scalar_f32(&plan, slot(node.inputs[1])?)?;
                (
                    EvalOp::Fill {
                        value: Scalar::F32(v),
                    },
                    plan.slot_shape(like).to_vec(),
                    plan.slot_dtype(like),
                    false,
                )
            }
            Op::ZerosLike | Op::OnesLike => {
                let like = slot(node.inputs[0])?;
                let v = if node.op == Op::OnesLike { 1.0 } else { 0.0 };
                (
                    EvalOp::Fill {
                        value: Scalar::F32(v),
                    },
                    plan.slot_shape(like).to_vec(),
                    plan.slot_dtype(like),
                    false,
                )
            }
            Op::BroadcastLike => {
                let src = slot(node.inputs[0])?;
                let like = slot(node.inputs[1])?;
                (
                    EvalOp::Broadcast { src },
                    plan.slot_shape(like).to_vec(),
                    plan.slot_dtype(like),
                    false,
                )
            }
            Op::Cast { dtype } => {
                let a = slot(node.inputs[0])?;
                let dt = match dtype {
                    tssa_ir::ScalarType::F32 => DType::F32,
                    tssa_ir::ScalarType::I64 => DType::I64,
                    tssa_ir::ScalarType::Bool => DType::Bool,
                };
                (
                    EvalOp::Cast { a, dtype: dt },
                    plan.slot_shape(a).to_vec(),
                    dt,
                    true,
                )
            }
            Op::Access(kind) => {
                let base = slot(node.inputs[0])?;
                let base_shape = plan.slot_shape(base).to_vec();
                let (xform, shape) = build_xform(kind, &base_shape, &node.inputs[1..], &|v| {
                    scalar_usize(&plan, slot(v)?)
                })?;
                (
                    EvalOp::Access { base, xform },
                    shape,
                    plan.slot_dtype(base),
                    false,
                )
            }
            Op::Assign(kind) => {
                let base = slot(node.inputs[0])?;
                let src = slot(node.inputs[1])?;
                let base_shape = plan.slot_shape(base).to_vec();
                let (xform, view_shape) =
                    build_xform(kind, &base_shape, &node.inputs[2..], &|v| {
                        scalar_usize(&plan, slot(v)?)
                    })?;
                (
                    EvalOp::Assign {
                        base,
                        src,
                        xform,
                        view_shape,
                    },
                    base_shape,
                    plan.slot_dtype(base),
                    false,
                )
            }
            other => {
                return Err(ExecError::unsupported(format!(
                    "operator {} inside fusion group",
                    other.name()
                )))
            }
        };
        let idx = plan.nodes.len();
        plan.nodes.push(PlanNode {
            op,
            shape,
            dtype,
            compute,
        });
        slot_of.insert(node.outputs[0], Slot::Node(idx));
    }

    // Traffic accounting: an input consumed only through accesses is read
    // partially, so it is charged the accessed elements (capped at its full
    // size) rather than the whole buffer — this matters for parallel-map
    // bodies that read one slice per iteration.
    let mut in_bytes = 0u64;
    for (k, buf) in plan.inputs.iter().enumerate() {
        let full = (buf.shape().iter().product::<usize>() * buf.dtype().size_bytes()) as u64;
        let mut only_access = true;
        let mut accessed = 0u64;
        for node in &plan.nodes {
            let uses_k = |s: &Slot| *s == Slot::Input(k);
            match &node.op {
                EvalOp::Access { base, .. } if uses_k(base) => {
                    accessed +=
                        (node.shape.iter().product::<usize>() * buf.dtype().size_bytes()) as u64;
                }
                other => {
                    if eval_op_slots(other).iter().any(uses_k) {
                        only_access = false;
                    }
                }
            }
        }
        in_bytes += if only_access && accessed > 0 {
            accessed.min(full)
        } else {
            full
        };
    }

    let mut returned = vec![false; g.block(body).nodes.len()];
    for &ret in &g.block(body).returns {
        if let Some(Slot::Node(i)) = slot_of.get(&ret).copied() {
            returned[i] = true;
        }
    }
    let mut node_ns = vec![0u64; plan.nodes.len()];
    match observer {
        Some(_) => {
            let mut record = |idx: usize, ns: u64| node_ns[idx] = ns;
            plan.materialize(&returned, Some(&mut record));
        }
        None => plan.materialize(&returned, None),
    }

    // Read each group output from the materialized cache.
    let mut outputs = Vec::new();
    let mut out_bytes = 0u64;
    let mut flops = 0u64;
    for node in &plan.nodes {
        if node.compute {
            flops += node.shape.iter().product::<usize>() as u64;
        }
    }
    for &ret in &g.block(body).returns {
        let slot = slot_of
            .get(&ret)
            .copied()
            .ok_or_else(|| ExecError::unsupported("group return not computed"))?;
        let shape = plan.slot_shape(slot).to_vec();
        let dtype = plan.slot_dtype(slot);
        let n: usize = shape.iter().product();
        out_bytes += (n * dtype.size_bytes()) as u64;
        let tensor = match slot {
            Slot::Node(i) => match &plan.cache[i] {
                InputBuf::F32(v, _) => Tensor::from_vec_f32(v.clone(), &shape)?,
                InputBuf::I64(v, _) => Tensor::from_vec_i64(v.clone(), &shape)?,
                InputBuf::Bool(v, _) => Tensor::from_vec_bool(v.clone(), &shape)?,
                InputBuf::Scalar(_) => return Err(ExecError::unsupported("scalar group return")),
            },
            Slot::Input(i) => match &plan.inputs[i] {
                InputBuf::F32(v, _) => Tensor::from_vec_f32(v.clone(), &shape)?,
                InputBuf::I64(v, _) => Tensor::from_vec_i64(v.clone(), &shape)?,
                InputBuf::Bool(v, _) => Tensor::from_vec_bool(v.clone(), &shape)?,
                InputBuf::Scalar(_) => return Err(ExecError::unsupported("scalar group return")),
            },
        };
        outputs.push(RtValue::Tensor(tensor));
    }
    if let Some(obs) = observer {
        let mut child_ns = 0u64;
        // Plan node i was built from the i-th body node, in order.
        for (i, &bn) in g.block(body).nodes.iter().enumerate() {
            let pn = &plan.nodes[i];
            let elems = pn.shape.iter().product::<usize>() as u64;
            obs.record_op(
                group.index() as u32,
                bn.index() as u32,
                &g.node(bn).op,
                node_ns[i],
                elems * pn.dtype.size_bytes() as u64,
                if pn.compute { elems } else { 0 },
            );
            child_ns += node_ns[i];
        }
        // The remainder (plan build, input conversion, output readback) is
        // the fused launch's own overhead, charged to the group node.
        let total = total_at
            .map(|at| at.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        obs.record_op(
            group.index() as u32,
            group.index() as u32,
            &g.node(group).op,
            total.saturating_sub(child_ns),
            in_bytes + out_bytes,
            0,
        );
    }
    Ok(GroupResult {
        outputs,
        bytes: in_bytes + out_bytes,
        flops,
    })
}

/// Operand slots of an eval op (used by the traffic accounting above).
fn eval_op_slots(op: &EvalOp) -> Vec<Slot> {
    match op {
        EvalOp::Un { a, .. }
        | EvalOp::AddConst { a, .. }
        | EvalOp::SubConst { a, .. }
        | EvalOp::DivConst { a, .. }
        | EvalOp::PowConst { a, .. }
        | EvalOp::Clamp { a, .. }
        | EvalOp::Cast { a, .. } => vec![*a],
        EvalOp::Bin { a, b, .. } => vec![*a, *b],
        EvalOp::Where { c, a, b } => vec![*c, *a, *b],
        EvalOp::Fill { .. } => vec![],
        EvalOp::Broadcast { src } => vec![*src],
        EvalOp::Access { base, .. } => vec![*base],
        EvalOp::Assign { base, src, .. } => vec![*base, *src],
    }
}

fn build_xform(
    kind: &ViewKind,
    base_shape: &[usize],
    extra: &[ValueId],
    scalar_int: &dyn Fn(ValueId) -> Result<i64, ExecError>,
) -> Result<(Xform, Vec<usize>), ExecError> {
    match kind {
        ViewKind::Select { dim } => {
            let d = norm_dim(*dim, base_shape.len())?;
            let raw = scalar_int(extra[0])?;
            let size = base_shape[d] as i64;
            let idx = if raw < 0 { raw + size } else { raw };
            if idx < 0 || idx >= size {
                return Err(ExecError::unsupported("select index out of range in group"));
            }
            let mut shape = base_shape.to_vec();
            shape.remove(d);
            Ok((
                Xform::Select {
                    dim: d,
                    index: idx as usize,
                },
                shape,
            ))
        }
        ViewKind::SliceView { dim } => {
            let d = norm_dim(*dim, base_shape.len())?;
            let size = base_shape[d] as i64;
            let clamp = |v: i64| -> i64 {
                let v = if v < 0 { v + size } else { v };
                v.clamp(0, size)
            };
            let start = clamp(scalar_int(extra[0])?);
            let end = clamp(scalar_int(extra[1])?).max(start);
            let step = scalar_int(extra[2])?;
            if step <= 0 {
                return Err(ExecError::unsupported("non-positive slice step in group"));
            }
            let len = ((end - start) + step - 1) / step;
            let mut shape = base_shape.to_vec();
            shape[d] = len as usize;
            Ok((
                Xform::Slice {
                    dim: d,
                    start: start as usize,
                    step: step as usize,
                    len: len as usize,
                },
                shape,
            ))
        }
        ViewKind::Permute { perm } => {
            let p: Vec<usize> = perm.iter().map(|&x| x as usize).collect();
            let shape: Vec<usize> = p.iter().map(|&i| base_shape[i]).collect();
            Ok((Xform::Permute { perm: p }, shape))
        }
        ViewKind::Transpose { dim0, dim1 } => {
            let d0 = norm_dim(*dim0, base_shape.len())?;
            let d1 = norm_dim(*dim1, base_shape.len())?;
            let mut shape = base_shape.to_vec();
            shape.swap(d0, d1);
            Ok((Xform::Transpose { d0, d1 }, shape))
        }
        ViewKind::Unsqueeze { dim } => {
            let d = norm_dim(*dim, base_shape.len() + 1)?;
            let mut shape = base_shape.to_vec();
            shape.insert(d, 1);
            Ok((Xform::Unsqueeze { dim: d }, shape))
        }
        ViewKind::Squeeze { dim } => {
            let d = norm_dim(*dim, base_shape.len())?;
            let mut shape = base_shape.to_vec();
            shape.remove(d);
            Ok((Xform::Squeeze { dim: d }, shape))
        }
        ViewKind::Expand { shape } => {
            let target = resolve_shape_arg(shape, base_shape, true);
            Ok((
                Xform::Expand {
                    base_shape: base_shape.to_vec(),
                },
                target,
            ))
        }
        ViewKind::ViewShape { shape } => {
            let out = resolve_shape_arg(shape, base_shape, false);
            Ok((
                Xform::ViewShape {
                    base_shape: base_shape.to_vec(),
                    out_shape: out.clone(),
                },
                out,
            ))
        }
    }
}

fn norm_dim(dim: i64, rank: usize) -> Result<usize, ExecError> {
    let r = rank as i64;
    let d = if dim < 0 { dim + r } else { dim };
    if d < 0 || d >= r.max(1) {
        return Err(ExecError::unsupported("dimension out of range in group"));
    }
    Ok(d as usize)
}
