//! Execution errors.

use std::error::Error;
use std::fmt;

use tssa_tensor::TensorError;

use crate::RtValue;

/// Error raised while executing a graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// An IR value had the wrong runtime type.
    TypeMismatch {
        /// What the operator expected.
        expected: &'static str,
        /// What it found.
        found: String,
    },
    /// A tensor operation failed.
    Tensor(TensorError),
    /// A graph value was consumed before being defined (malformed IR).
    Undefined {
        /// Index of the missing value.
        value: usize,
    },
    /// The executor does not support this operator in this position.
    Unsupported {
        /// Description of the unsupported construct.
        message: String,
    },
    /// Wrong number of graph inputs supplied.
    ArityMismatch {
        /// Declared graph inputs.
        expected: usize,
        /// Supplied values.
        found: usize,
    },
}

impl ExecError {
    pub(crate) fn type_mismatch(expected: &'static str, found: &RtValue) -> ExecError {
        ExecError::TypeMismatch {
            expected,
            found: found.kind(),
        }
    }

    pub(crate) fn unsupported(message: impl Into<String>) -> ExecError {
        ExecError::Unsupported {
            message: message.into(),
        }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::TypeMismatch { expected, found } => {
                write!(
                    f,
                    "runtime type mismatch: expected {expected}, found {found}"
                )
            }
            ExecError::Tensor(e) => write!(f, "tensor error: {e}"),
            ExecError::Undefined { value } => write!(f, "value %{value} used before definition"),
            ExecError::Unsupported { message } => write!(f, "unsupported: {message}"),
            ExecError::ArityMismatch { expected, found } => {
                write!(f, "graph expects {expected} inputs, got {found}")
            }
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for ExecError {
    fn from(e: TensorError) -> Self {
        ExecError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExecError::from(TensorError::invalid("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(Error::source(&e).is_some());
        assert!(!ExecError::unsupported("x").to_string().is_empty());
    }
}
