//! Execution observation seam: the backend reports per-op wall time to an
//! [`OpObserver`] without depending on any particular profiler.
//!
//! The observer vocabulary is deliberately minimal — `(group, node, op,
//! wall, bytes, flops)` — so the backend stays free of observability
//! dependencies; `tssa-pipelines` adapts it onto the `tssa-obs` profile
//! sinks (adding the plan label the backend does not know).

use tssa_ir::Op;

/// Sentinel "fusion group" id for ops executed outside any fusion group.
pub const TOP_LEVEL_GROUP: u32 = u32::MAX;

/// Receives one sample per executed op. Implementations must be cheap and
/// thread-safe: parallel-map bodies record from worker threads.
pub trait OpObserver: Send + Sync {
    /// One op executed: `group` is the owning fusion-group node id (or
    /// [`TOP_LEVEL_GROUP`]), `node` the op's node id, `wall_ns` its wall
    /// self-time (child blocks excluded), `bytes`/`flops` the traffic the
    /// cost model attributed to it.
    fn record_op(&self, group: u32, node: u32, op: &Op, wall_ns: u64, bytes: u64, flops: u64);
}
