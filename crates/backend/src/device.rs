//! The simulated execution platform: device profiles and per-framework
//! host overheads.
//!
//! The paper evaluates on two NVIDIA GPUs; we model each as launch overhead
//! plus a roofline (memory bandwidth vs. FLOP throughput). The *framework*
//! overheads (eager dispatch, compiled-runtime dispatch, Python-driven
//! control flow) are what separate the four compared pipelines at equal
//! device work — §5.3 attributes TorchDynamo's gap on loop-heavy workloads
//! exactly to its Python-interpreted control flow.

/// A simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Fixed cost of one kernel launch, in nanoseconds.
    pub launch_overhead_ns: f64,
    /// Global-memory bandwidth, in bytes per nanosecond (= GB/s × 10⁻⁹).
    pub bytes_per_ns: f64,
    /// FP32 throughput, in flops per nanosecond (= GFLOPS × 10⁻⁹).
    pub flops_per_ns: f64,
}

impl DeviceProfile {
    /// The consumer platform of the paper (GTX 1660 Ti class: ~288 GB/s,
    /// ~5.4 TFLOPS).
    pub fn consumer() -> DeviceProfile {
        DeviceProfile {
            name: "consumer-1660ti",
            launch_overhead_ns: 5_000.0,
            bytes_per_ns: 288.0,
            flops_per_ns: 5_400.0,
        }
    }

    /// The data-center platform of the paper (RTX 3090 class: ~936 GB/s,
    /// ~35.6 TFLOPS).
    pub fn datacenter() -> DeviceProfile {
        DeviceProfile {
            name: "datacenter-3090",
            launch_overhead_ns: 3_500.0,
            bytes_per_ns: 936.0,
            flops_per_ns: 35_600.0,
        }
    }

    /// Roofline time for one kernel moving `bytes` and computing `flops`,
    /// excluding launch overhead.
    pub fn kernel_work_ns(&self, bytes: u64, flops: u64) -> f64 {
        (bytes as f64 / self.bytes_per_ns).max(flops as f64 / self.flops_per_ns)
    }
}

/// Execution configuration: a device plus the framework overheads of the
/// pipeline being modelled.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// The simulated device.
    pub device: DeviceProfile,
    /// Host-side cost of dispatching one tensor operator (framework
    /// dispatch, shape checks, allocator).
    pub host_dispatch_ns: f64,
    /// Host-side cost of one scalar/bookkeeping operator.
    pub host_scalar_ns: f64,
    /// Host-side cost charged per control-flow block entry (loop iteration
    /// or branch) — high when control flow runs under a Python interpreter.
    pub control_entry_ns: f64,
    /// Extra stall charged when a device value must be synchronized to the
    /// host (`aten::item`).
    pub sync_ns: f64,
    /// Number of worker threads used to execute `prim::ParallelMap`
    /// iterations (1 = serial).
    pub parallel_threads: usize,
}

impl ExecConfig {
    /// Eager-mode framework: Python dispatch on every op.
    pub fn eager() -> ExecConfig {
        ExecConfig {
            device: DeviceProfile::consumer(),
            host_dispatch_ns: 3_000.0,
            host_scalar_ns: 300.0,
            control_entry_ns: 800.0,
            sync_ns: 10_000.0,
            parallel_threads: 1,
        }
    }

    /// A compiled runtime (TorchScript interpreter / generated code):
    /// cheap dispatch, compiled control flow.
    pub fn compiled() -> ExecConfig {
        ExecConfig {
            device: DeviceProfile::consumer(),
            host_dispatch_ns: 1_200.0,
            host_scalar_ns: 60.0,
            control_entry_ns: 100.0,
            sync_ns: 6_000.0,
            parallel_threads: 1,
        }
    }

    /// Tracing JIT with Python-resident control flow (TorchDynamo-style):
    /// compiled regions dispatch cheaply but every control-flow entry pays a
    /// guard-check / graph-break penalty in the Python interpreter.
    pub fn traced_python_control() -> ExecConfig {
        ExecConfig {
            device: DeviceProfile::consumer(),
            host_dispatch_ns: 1_000.0,
            host_scalar_ns: 300.0,
            control_entry_ns: 2_500.0,
            sync_ns: 10_000.0,
            parallel_threads: 1,
        }
    }

    /// Replace the device, keeping framework overheads.
    pub fn with_device(mut self, device: DeviceProfile) -> ExecConfig {
        self.device = device;
        self
    }

    /// Enable multi-threaded `prim::ParallelMap` execution.
    pub fn with_parallel_threads(mut self, threads: usize) -> ExecConfig {
        self.parallel_threads = threads.max(1);
        self
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::compiled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_picks_binding_resource() {
        let d = DeviceProfile::consumer();
        // Memory-bound: many bytes, few flops.
        let mem = d.kernel_work_ns(1_000_000, 10);
        assert!((mem - 1_000_000.0 / 288.0).abs() < 1e-6);
        // Compute-bound: few bytes, many flops.
        let cmp = d.kernel_work_ns(8, 1_000_000_000);
        assert!((cmp - 1_000_000_000.0 / 5_400.0).abs() < 1e-3);
    }

    #[test]
    fn profiles_are_ordered_sensibly() {
        let c = DeviceProfile::consumer();
        let d = DeviceProfile::datacenter();
        assert!(d.bytes_per_ns > c.bytes_per_ns);
        assert!(d.flops_per_ns > c.flops_per_ns);
        let eager = ExecConfig::eager();
        let compiled = ExecConfig::compiled();
        assert!(eager.host_dispatch_ns > compiled.host_dispatch_ns);
        let dynamo = ExecConfig::traced_python_control();
        assert!(dynamo.control_entry_ns > compiled.control_entry_ns);
    }
}
