//! Interpreter coverage: individual operators through the executor, error
//! paths, and cost-model accounting invariants.

use tssa_backend::{DeviceProfile, ExecConfig, ExecError, Executor, RtValue};
use tssa_ir::parse_graph;
use tssa_tensor::Tensor;

fn run(src: &str, inputs: &[RtValue]) -> (Vec<RtValue>, tssa_backend::ExecStats) {
    let g = parse_graph(src).unwrap_or_else(|e| panic!("{src}\n{e}"));
    g.verify().unwrap_or_else(|e| panic!("{src}\n{e}"));
    Executor::new(ExecConfig::compiled())
        .run(&g, inputs)
        .unwrap_or_else(|e| panic!("{src}\n{e}"))
}

fn t(data: Vec<f32>, shape: &[usize]) -> RtValue {
    RtValue::Tensor(Tensor::from_vec_f32(data, shape).unwrap())
}

#[test]
fn reductions_and_argmax() {
    let (outs, _) = run(
        "graph(%x : Tensor):
           %s : Tensor = aten::sum[dim=1, keepdim=false](%x)
           %m : Tensor = aten::mean[dim=1, keepdim=false](%x)
           %mx : Tensor = aten::max[dim=1, keepdim=false](%x)
           %mn : Tensor = aten::min[dim=1, keepdim=false](%x)
           %am : Tensor = aten::argmax[dim=1, keepdim=false](%x)
           return (%s, %m, %mx, %mn, %am)",
        &[t(vec![1.0, 5.0, 3.0, 4.0, 0.0, 2.0], &[2, 3])],
    );
    assert_eq!(
        outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![9.0, 6.0]
    );
    assert_eq!(
        outs[1].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![3.0, 2.0]
    );
    assert_eq!(
        outs[2].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![5.0, 4.0]
    );
    assert_eq!(
        outs[3].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![1.0, 0.0]
    );
    assert_eq!(
        outs[4].as_tensor().unwrap().to_vec_i64().unwrap(),
        vec![1, 0]
    );
}

#[test]
fn gather_index_select_cumsum() {
    let (outs, _) = run(
        "graph(%x : Tensor, %gi : Tensor, %si : Tensor):
           %g0 : Tensor = aten::gather[dim=1](%x, %gi)
           %s : Tensor = aten::index_select[dim=0](%x, %si)
           %c : Tensor = aten::cumsum[dim=0](%x)
           return (%g0, %s, %c)",
        &[
            t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]),
            RtValue::Tensor(Tensor::from_vec_i64(vec![1, 0], &[2, 1]).unwrap()),
            RtValue::Tensor(Tensor::from_vec_i64(vec![1], &[1]).unwrap()),
        ],
    );
    assert_eq!(
        outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![2.0, 3.0]
    );
    assert_eq!(
        outs[1].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![3.0, 4.0]
    );
    assert_eq!(
        outs[2].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![1.0, 2.0, 4.0, 6.0]
    );
}

#[test]
fn concat_stack_cast_reshape() {
    let (outs, _) = run(
        "graph(%x : Tensor, %y : Tensor):
           %c : Tensor = aten::cat[dim=0](%x, %y)
           %s : Tensor = aten::stack[dim=0](%x, %y)
           %i : Tensor = aten::to[dtype=i64](%x)
           %r : Tensor = aten::reshape[shape=[4]](%s)
           return (%c, %s, %i, %r)",
        &[t(vec![1.5, 2.5], &[2]), t(vec![3.5, 4.5], &[2])],
    );
    assert_eq!(outs[0].as_tensor().unwrap().shape(), &[4]);
    assert_eq!(outs[1].as_tensor().unwrap().shape(), &[2, 2]);
    assert_eq!(
        outs[2].as_tensor().unwrap().to_vec_i64().unwrap(),
        vec![1, 2]
    );
    assert_eq!(outs[3].as_tensor().unwrap().shape(), &[4]);
}

#[test]
fn creation_ops() {
    let (outs, stats) = run(
        "graph(%n : int, %f : float):
           %z : Tensor = aten::zeros[shape=[2, 2]]()
           %o : Tensor = aten::ones[shape=[3]]()
           %fu : Tensor = aten::full[shape=[2]](%f)
           %a : Tensor = aten::arange(%n)
           return (%z, %o, %fu, %a)",
        &[RtValue::Int(4), RtValue::Float(7.0)],
    );
    assert_eq!(outs[0].as_tensor().unwrap().sum_all(), 0.0);
    assert_eq!(outs[1].as_tensor().unwrap().sum_all(), 3.0);
    assert_eq!(
        outs[2].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![7.0, 7.0]
    );
    assert_eq!(
        outs[3].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![0.0, 1.0, 2.0, 3.0]
    );
    // Four creation kernels.
    assert_eq!(stats.kernel_launches, 4);
}

#[test]
fn views_do_not_launch_kernels() {
    let (_, stats) = run(
        "graph(%x : Tensor):
           %i : int = prim::Constant[value=0]()
           %a : Tensor = aten::select[dim=0](%x, %i)
           %b : Tensor = aten::unsqueeze[dim=0](%a)
           %c : Tensor = aten::transpose[dim0=0, dim1=1](%x)
           return (%b, %c)",
        &[t(vec![0.0; 6], &[2, 3])],
    );
    assert_eq!(stats.kernel_launches, 0);
    assert!(stats.host_ns > 0.0);
}

#[test]
fn list_construct_and_unpack() {
    let (outs, _) = run(
        "graph(%x : Tensor, %y : Tensor):
           %l : Tensor[] = prim::ListConstruct(%x, %y)
           %a : Tensor, %b : Tensor = prim::ListUnpack(%l)
           %s : Tensor = aten::add(%a, %b)
           return (%s)",
        &[t(vec![1.0], &[1]), t(vec![2.0], &[1])],
    );
    assert_eq!(
        outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![3.0]
    );
}

#[test]
fn datacenter_profile_is_faster() {
    let src = "graph(%x : Tensor):
           %a : Tensor = aten::sigmoid(%x)
           %b : Tensor = aten::mul(%a, %x)
           return (%b)";
    let g = parse_graph(src).unwrap();
    let inputs = [t(vec![0.5; 4096], &[64, 64])];
    let (_, consumer) =
        Executor::new(ExecConfig::compiled().with_device(DeviceProfile::consumer()))
            .run(&g, &inputs)
            .unwrap();
    let (_, datacenter) =
        Executor::new(ExecConfig::compiled().with_device(DeviceProfile::datacenter()))
            .run(&g, &inputs)
            .unwrap();
    assert!(datacenter.total_ns() < consumer.total_ns());
    assert_eq!(datacenter.kernel_launches, consumer.kernel_launches);
}

#[test]
fn error_paths_are_reported() {
    let g = parse_graph(
        "graph(%x : Tensor, %n : int):
           %m : Tensor = aten::matmul(%x, %x)
           return (%m)",
    )
    .unwrap();
    let exec = Executor::new(ExecConfig::compiled());
    // Non-square rank-2 self-matmul: inner dims disagree.
    let r = exec.run(&g, &[t(vec![0.0; 6], &[2, 3]), RtValue::Int(1)]);
    assert!(matches!(r, Err(ExecError::Tensor(_))), "{r:?}");
    // Type mismatch: int where tensor expected.
    let r = exec.run(&g, &[RtValue::Int(3), RtValue::Int(1)]);
    assert!(matches!(r, Err(ExecError::TypeMismatch { .. })));
    // Arity mismatch.
    let r = exec.run(&g, &[RtValue::Int(3)]);
    assert!(matches!(r, Err(ExecError::ArityMismatch { .. })));
}

#[test]
fn division_by_zero_is_an_error() {
    let g = parse_graph(
        "graph(%a : int, %b : int):
           %d : int = aten::int_div(%a, %b)
           return (%d)",
    )
    .unwrap();
    let r = Executor::new(ExecConfig::compiled()).run(&g, &[RtValue::Int(3), RtValue::Int(0)]);
    assert!(matches!(r, Err(ExecError::Unsupported { .. })));
}

#[test]
fn loop_respects_trip_and_condition() {
    // Condition becomes false after 3 iterations even though trip is 100.
    let (outs, _) = run(
        "graph(%x : Tensor):
           %hundred : int = prim::Constant[value=100]()
           %t : bool = prim::Constant[value=true]()
           %o : Tensor = prim::Loop(%hundred, %t, %x)
             block0(%i : int, %c : Tensor):
               %one : float = prim::Constant[value=1.0]()
               %u : Tensor = aten::add_scalar(%c, %one)
               %two : int = prim::Constant[value=2]()
               %cond : bool = aten::int_lt(%i, %two)
               -> (%cond, %u)
           return (%o)",
        &[t(vec![0.0], &[1])],
    );
    assert_eq!(
        outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![3.0]
    );
}

#[test]
fn negative_trip_count_runs_zero_iterations() {
    let (outs, _) = run(
        "graph(%x : Tensor, %n : int):
           %t : bool = prim::Constant[value=true]()
           %o : Tensor = prim::Loop(%n, %t, %x)
             block0(%i : int, %c : Tensor):
               %u : Tensor = aten::relu(%c)
               -> (%t, %u)
           return (%o)",
        &[t(vec![-5.0], &[1]), RtValue::Int(-3)],
    );
    assert_eq!(
        outs[0].as_tensor().unwrap().to_vec_f32().unwrap(),
        vec![-5.0]
    );
}

#[test]
fn item_ops_sync_and_convert() {
    let (outs, stats) = run(
        "graph(%x : Tensor):
           %f : float = aten::item_float(%x)
           %i : int = aten::item_int(%x)
           %zero : float = prim::Constant[value=0.0]()
           %fz : Tensor = aten::full[shape=[]](%zero)
           %b : bool = aten::item_bool(%fz)
           return (%f, %i, %b)",
        &[t(vec![2.75], &[1])],
    );
    assert_eq!(outs[0].as_float().unwrap(), 2.75);
    assert_eq!(outs[1].as_int().unwrap(), 2);
    assert!(!outs[2].as_bool().unwrap());
    // Each item op stalls the host.
    assert!(stats.host_ns >= 3.0 * ExecConfig::compiled().sync_ns);
}

#[test]
fn profiling_attributes_costs_per_operator() {
    use tssa_backend::Executor;
    let g = parse_graph(
        "graph(%x : Tensor):
           %a : Tensor = aten::relu(%x)
           %b : Tensor = aten::relu(%a)
           %c : Tensor = aten::sigmoid(%b)
           return (%c)",
    )
    .unwrap();
    let exec = Executor::with_profiling(ExecConfig::compiled());
    let (_, stats) = exec.run(&g, &[t(vec![0.5; 8], &[8])]).unwrap();
    let profile = exec.take_profile();
    let relu = profile.iter().find(|(n, _)| n == "aten::relu").unwrap();
    assert_eq!(relu.1.count, 2);
    assert_eq!(relu.1.launches, 2);
    let total_launches: u64 = profile.iter().map(|(_, p)| p.launches).sum();
    assert_eq!(total_launches, stats.kernel_launches);
    let total_ns: f64 = profile.iter().map(|(_, p)| p.device_ns + p.host_ns).sum();
    assert!((total_ns - stats.total_ns()).abs() < 1e-6);
    // Draining empties the profile.
    assert!(exec.take_profile().is_empty());
}
