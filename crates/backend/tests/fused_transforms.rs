//! Coverage of the fused per-element evaluator: every `ViewKind` must
//! behave identically inside a `prim::FusionGroup` (zero-intermediate
//! evaluation) and outside it (materializing interpretation).

use tssa_backend::{ExecConfig, Executor, RtValue};
use tssa_ir::parse_graph;
use tssa_tensor::Tensor;

/// Run `body` (a single fusion group over one tensor input plus listed int
/// inputs) and the equivalent unfused program, comparing outputs.
fn check_pair(fused_src: &str, unfused_src: &str, inputs: &[RtValue]) {
    let fused = parse_graph(fused_src).unwrap_or_else(|e| panic!("{fused_src}\n{e}"));
    let unfused = parse_graph(unfused_src).unwrap_or_else(|e| panic!("{unfused_src}\n{e}"));
    fused.verify().unwrap();
    unfused.verify().unwrap();
    let exec = Executor::new(ExecConfig::compiled());
    let (fo, fs) = exec.run(&fused, inputs).expect("fused executes");
    let (uo, _) = exec.run(&unfused, inputs).expect("unfused executes");
    assert_eq!(fs.kernel_launches, 1, "one launch for the group");
    for (a, b) in fo.iter().zip(&uo) {
        assert!(
            a.as_tensor()
                .unwrap()
                .allclose(b.as_tensor().unwrap(), 1e-5),
            "fused and unfused disagree"
        );
    }
}

fn input(shape: &[usize], seed: u64) -> RtValue {
    RtValue::Tensor(Tensor::rand_uniform(shape, -2.0, 2.0, seed))
}

#[test]
fn fused_access_select() {
    check_pair(
        "graph(%x : Tensor, %i : int):
           %o : Tensor = prim::FusionGroup(%x, %i)
             block0(%p : Tensor, %q : int):
               %v : Tensor = immut::select[dim=0](%p, %q)
               %r : Tensor = aten::sigmoid(%v)
               -> (%r)
           return (%o)",
        "graph(%x : Tensor, %i : int):
           %v : Tensor = immut::select[dim=0](%x, %i)
           %r : Tensor = aten::sigmoid(%v)
           return (%r)",
        &[input(&[4, 5], 1), RtValue::Int(2)],
    );
}

#[test]
fn fused_access_slice_with_step() {
    check_pair(
        "graph(%x : Tensor, %a : int, %b : int, %s : int):
           %o : Tensor = prim::FusionGroup(%x, %a, %b, %s)
             block0(%p : Tensor, %qa : int, %qb : int, %qs : int):
               %v : Tensor = immut::slice[dim=1](%p, %qa, %qb, %qs)
               %r : Tensor = aten::neg(%v)
               -> (%r)
           return (%o)",
        "graph(%x : Tensor, %a : int, %b : int, %s : int):
           %v : Tensor = immut::slice[dim=1](%x, %a, %b, %s)
           %r : Tensor = aten::neg(%v)
           return (%r)",
        &[
            input(&[3, 8], 2),
            RtValue::Int(1),
            RtValue::Int(7),
            RtValue::Int(2),
        ],
    );
}

#[test]
fn fused_access_permute_and_transpose() {
    check_pair(
        "graph(%x : Tensor):
           %o : Tensor, %t : Tensor = prim::FusionGroup(%x)
             block0(%p : Tensor):
               %v : Tensor = immut::permute[perm=[2, 0, 1]](%p)
               %w : Tensor = immut::transpose[dim0=0, dim1=1](%p)
               %r : Tensor = aten::relu(%v)
               %u : Tensor = aten::relu(%w)
               -> (%r, %u)
           return (%o, %t)",
        "graph(%x : Tensor):
           %v : Tensor = immut::permute[perm=[2, 0, 1]](%x)
           %w : Tensor = immut::transpose[dim0=0, dim1=1](%x)
           %r : Tensor = aten::relu(%v)
           %u : Tensor = aten::relu(%w)
           return (%r, %u)",
        &[input(&[2, 3, 4], 3)],
    );
}

#[test]
fn fused_access_squeeze_unsqueeze_view() {
    check_pair(
        "graph(%x : Tensor):
           %o : Tensor = prim::FusionGroup(%x)
             block0(%p : Tensor):
               %u : Tensor = immut::unsqueeze[dim=1](%p)
               %s : Tensor = immut::squeeze[dim=1](%u)
               %v : Tensor = immut::view[shape=[6, -1]](%s)
               %r : Tensor = aten::tanh(%v)
               -> (%r)
           return (%o)",
        "graph(%x : Tensor):
           %u : Tensor = immut::unsqueeze[dim=1](%x)
           %s : Tensor = immut::squeeze[dim=1](%u)
           %v : Tensor = immut::view[shape=[6, -1]](%s)
           %r : Tensor = aten::tanh(%v)
           return (%r)",
        &[input(&[3, 8], 4)],
    );
}

#[test]
fn fused_access_expand_broadcasts() {
    check_pair(
        "graph(%x : Tensor):
           %o : Tensor = prim::FusionGroup(%x)
             block0(%p : Tensor):
               %e : Tensor = immut::expand[shape=[4, -1]](%p)
               %r : Tensor = aten::mul(%e, %e)
               -> (%r)
           return (%o)",
        "graph(%x : Tensor):
           %e : Tensor = immut::expand[shape=[4, -1]](%x)
           %r : Tensor = aten::mul(%e, %e)
           return (%r)",
        &[input(&[1, 5], 5)],
    );
}

#[test]
fn fused_assign_select_and_slice() {
    check_pair(
        "graph(%x : Tensor, %i : int, %a : int, %b : int, %s : int):
           %o : Tensor = prim::FusionGroup(%x, %i, %a, %b, %s)
             block0(%p : Tensor, %qi : int, %qa : int, %qb : int, %qs : int):
               %row : Tensor = immut::select[dim=0](%p, %qi)
               %w : Tensor = aten::sigmoid(%row)
               %v1 : Tensor = immut::assign_select[dim=0](%p, %w, %qi)
               %col : Tensor = immut::slice[dim=1](%v1, %qa, %qb, %qs)
               %w2 : Tensor = aten::neg(%col)
               %v2 : Tensor = immut::assign_slice[dim=1](%v1, %w2, %qa, %qb, %qs)
               -> (%v2)
           return (%o)",
        "graph(%x : Tensor, %i : int, %a : int, %b : int, %s : int):
           %row : Tensor = immut::select[dim=0](%x, %i)
           %w : Tensor = aten::sigmoid(%row)
           %v1 : Tensor = immut::assign_select[dim=0](%x, %w, %i)
           %col : Tensor = immut::slice[dim=1](%v1, %a, %b, %s)
           %w2 : Tensor = aten::neg(%col)
           %v2 : Tensor = immut::assign_slice[dim=1](%v1, %w2, %a, %b, %s)
           return (%v2)",
        &[
            input(&[4, 6], 6),
            RtValue::Int(1),
            RtValue::Int(0),
            RtValue::Int(5),
            RtValue::Int(2),
        ],
    );
}

#[test]
fn fused_assign_broadcasts_source() {
    // Assigning a [1]-shaped source into a [5]-wide row: copy_ semantics.
    check_pair(
        "graph(%x : Tensor, %y : Tensor, %i : int):
           %o : Tensor = prim::FusionGroup(%x, %y, %i)
             block0(%p : Tensor, %src : Tensor, %q : int):
               %v : Tensor = immut::assign_select[dim=0](%p, %src, %q)
               -> (%v)
           return (%o)",
        "graph(%x : Tensor, %y : Tensor, %i : int):
           %v : Tensor = immut::assign_select[dim=0](%x, %y, %i)
           return (%v)",
        &[input(&[3, 5], 7), input(&[1], 8), RtValue::Int(2)],
    );
}

#[test]
fn fused_where_comparison_and_cast() {
    check_pair(
        "graph(%x : Tensor, %y : Tensor):
           %o : Tensor = prim::FusionGroup(%x, %y)
             block0(%p : Tensor, %q : Tensor):
               %m : Tensor = aten::gt(%p, %q)
               %w : Tensor = aten::where(%m, %p, %q)
               %c : Tensor = aten::to[dtype=f32](%w)
               -> (%c)
           return (%o)",
        "graph(%x : Tensor, %y : Tensor):
           %m : Tensor = aten::gt(%x, %y)
           %w : Tensor = aten::where(%m, %x, %y)
           %c : Tensor = aten::to[dtype=f32](%w)
           return (%c)",
        &[input(&[4, 4], 9), input(&[4, 4], 10)],
    );
}

#[test]
fn fused_fill_and_broadcast_like() {
    check_pair(
        "graph(%x : Tensor, %f : float):
           %o : Tensor = prim::FusionGroup(%x, %f)
             block0(%p : Tensor, %v : float):
               %z : Tensor = aten::full_like(%p, %v)
               %b : Tensor = aten::broadcast_like(%z, %p)
               %r : Tensor = aten::add(%b, %p)
               -> (%r)
           return (%o)",
        "graph(%x : Tensor, %f : float):
           %z : Tensor = aten::full_like(%x, %f)
           %b : Tensor = aten::broadcast_like(%z, %x)
           %r : Tensor = aten::add(%b, %x)
           return (%r)",
        &[input(&[2, 7], 11), RtValue::Float(3.5)],
    );
}

#[test]
fn fused_scalar_op_chain() {
    check_pair(
        "graph(%x : Tensor, %f : float):
           %o : Tensor = prim::FusionGroup(%x, %f)
             block0(%p : Tensor, %v : float):
               %a : Tensor = aten::add_scalar(%p, %v)
               %b : Tensor = aten::mul_scalar(%a, %v)
               %c : Tensor = aten::sub_scalar(%b, %v)
               %d : Tensor = aten::div_scalar(%c, %v)
               %e : Tensor = aten::pow_scalar(%d, %v)
               %g0 : Tensor = aten::clamp(%e, %v, %v)
               -> (%g0)
           return (%o)",
        "graph(%x : Tensor, %f : float):
           %a : Tensor = aten::add_scalar(%x, %f)
           %b : Tensor = aten::mul_scalar(%a, %f)
           %c : Tensor = aten::sub_scalar(%b, %f)
           %d : Tensor = aten::div_scalar(%c, %f)
           %e : Tensor = aten::pow_scalar(%d, %f)
           %g0 : Tensor = aten::clamp(%e, %f, %f)
           return (%g0)",
        &[input(&[3, 3], 12), RtValue::Float(2.0)],
    );
}

#[test]
fn unsupported_op_in_group_reports_error() {
    let g = parse_graph(
        "graph(%x : Tensor, %y : Tensor):
           %o : Tensor = prim::FusionGroup(%x, %y)
             block0(%p : Tensor, %q : Tensor):
               %m : Tensor = aten::matmul(%p, %q)
               -> (%m)
           return (%o)",
    )
    .unwrap();
    let exec = Executor::new(ExecConfig::compiled());
    let r = exec.run(&g, &[input(&[2, 2], 13), input(&[2, 2], 14)]);
    assert!(r.is_err(), "matmul cannot be evaluated per-element");
}
