//! Serialize → deserialize → run round-trips: a disk-loaded plan must be
//! numerically indistinguishable from the plan that was compiled in
//! process, across the paper's 8 workloads and the differential fuzzer's
//! generated programs.

use proptest::proptest;
use std::sync::Arc;
use tssa_backend::{DeviceProfile, RtValue};
use tssa_pipelines::{CompiledProgram, Pipeline, TensorSsa};
use tssa_store::{
    format::{decode_plan, encode_plan},
    roster_fingerprint, Expected, PlanStore,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tssa-store-rt-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fingerprint(pipeline: &TensorSsa) -> u64 {
    roster_fingerprint(pipeline.roster().iter().copied())
}

fn assert_same_outputs(cold: &CompiledProgram, warm: &CompiledProgram, inputs: &[RtValue]) {
    let (a, _) = cold.run(DeviceProfile::consumer(), inputs).unwrap();
    let (b, _) = warm.run(DeviceProfile::consumer(), inputs).unwrap();
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        match (x, y) {
            (RtValue::Tensor(t), RtValue::Tensor(u)) => {
                assert!(t.allclose(u, 1e-5), "tensor outputs diverge after reload");
            }
            _ => assert_eq!(format!("{x:?}"), format!("{y:?}")),
        }
    }
}

#[test]
fn all_eight_workloads_round_trip_through_the_store() {
    let dir = temp_dir("workloads");
    let store = PlanStore::open(&dir).unwrap();
    let pipeline = TensorSsa::default();
    let fp = fingerprint(&pipeline);
    for (i, w) in tssa_workloads::all_workloads().iter().enumerate() {
        let g = w.graph().unwrap();
        let cold = Arc::new(pipeline.compile(&g));
        let key = 0x1000 + i as u64;
        store.save_async(key, fp, Arc::clone(&cold));
        store.flush();
        let warm = store
            .load(key, fp)
            .unwrap_or_else(|| panic!("{}: warm load failed", w.name));
        assert_eq!(warm.pipeline, cold.pipeline, "{}", w.name);
        assert_eq!(warm.fusion_groups, cold.fusion_groups, "{}", w.name);
        assert_eq!(warm.parallel_loops, cold.parallel_loops, "{}", w.name);
        assert_eq!(warm.conversion, cold.conversion, "{}", w.name);
        assert_eq!(warm.exec_config, cold.exec_config, "{}", w.name);
        assert!(warm.passes.is_empty(), "a reloaded plan ran no passes here");
        let inputs = w.inputs(0, 0, 42 + i as u64);
        assert_same_outputs(&cold, &warm, &inputs);
    }
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 8);
    assert_eq!(stats.writes, 8);
    assert_eq!(stats.corrupt_evicted + stats.stale_evicted, 0);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #[test]
    fn fuzzer_programs_round_trip(seed in 0u64..48) {
        let source = tssa_lint::fuzz::generate_source(seed);
        let g = tssa_frontend::compile(&source).unwrap();
        let pipeline = TensorSsa::default();
        let cold = pipeline.compile(&g);
        let fp = fingerprint(&pipeline);
        let bytes = encode_plan(&cold, seed, fp);
        let (warm, roster) = decode_plan(
            &bytes,
            Expected { content_hash: Some(seed), roster_fingerprint: Some(fp) },
        ).unwrap();
        let expected_roster: Vec<&str> = cold.passes.iter().map(|r| r.name).collect();
        assert_eq!(roster, expected_roster, "seed {seed}");
        let inputs = tssa_lint::fuzz::inputs_for(seed);
        assert_same_outputs(&cold, &warm, &inputs);
    }
}

#[test]
fn shape_signature_round_trips_and_surfaces_in_the_header() {
    let w = &tssa_workloads::all_workloads()[0];
    let g = w.graph().unwrap();
    let pipeline = TensorSsa::default();
    let mut plan = pipeline.compile(&g);
    let ranks: Vec<Option<usize>> = w
        .inputs(4, 0, 7)
        .iter()
        .map(|v| match v {
            RtValue::Tensor(t) => Some(t.rank()),
            _ => None,
        })
        .collect();
    let sig = tssa_lint::certify_shapes(&plan.graph, &ranks);
    assert!(sig.polymorphic_dims() > 0, "{}", sig.render());
    plan.signature = Some(sig.clone());
    let fp = fingerprint(&pipeline);
    let bytes = encode_plan(&plan, 0xbeef, fp);
    // The header flags carry the polymorphic-dim count without decoding.
    let header = tssa_store::peek_header(&bytes).unwrap();
    assert_eq!(header.polymorphic_dims as usize, sig.polymorphic_dims());
    assert_eq!(header.content_hash, 0xbeef);
    let (warm, _) = decode_plan(
        &bytes,
        Expected {
            content_hash: Some(0xbeef),
            roster_fingerprint: Some(fp),
        },
    )
    .unwrap();
    assert_eq!(warm.signature, Some(sig));
}

#[test]
fn decode_validates_nothing_extra_when_expectations_absent() {
    let g = tssa_frontend::compile(
        "def f(x: Tensor):
             y = x.clone()
             y[0] = relu(y[0])
             return y
    ",
    )
    .unwrap();
    let plan = TensorSsa::default().compile(&g);
    let bytes = encode_plan(&plan, 7, 9);
    // An Expected::default() reader accepts any key/roster (used by tools
    // that inspect arbitrary plan files).
    let (decoded, _) = decode_plan(&bytes, Expected::default()).unwrap();
    assert_eq!(decoded.pipeline, "TensorSSA");
}
