//! Negative coverage for the plan store: truncated, bit-flipped,
//! version-bumped, and roster-mismatched entries must surface as typed
//! errors at the format layer and as counted evict-and-miss at the store
//! layer — never a panic, never a bogus plan.

use std::sync::Arc;
use tssa_pipelines::{CompiledProgram, Pipeline, TensorSsa};
use tssa_store::{
    format::{decode_plan, encode_plan},
    roster_fingerprint, Expected, PlanStore, StoreError, FORMAT_VERSION, HEADER_LEN, MAGIC,
};

const KEY: u64 = 0xABCD;

fn compiled() -> (CompiledProgram, u64) {
    let g = tssa_frontend::compile(
        "def f(b0: Tensor, n: int):
             b = b0.clone()
             for i in range(n):
                 b[i] = sigmoid(b[i]) * 2.0
             return b
    ",
    )
    .unwrap();
    let pipeline = TensorSsa::default();
    let fp = roster_fingerprint(pipeline.roster().iter().copied());
    (pipeline.compile(&g), fp)
}

fn expect(fp: u64) -> Expected {
    Expected {
        content_hash: Some(KEY),
        roster_fingerprint: Some(fp),
    }
}

#[test]
fn truncation_at_every_length_is_a_typed_error() {
    let (plan, fp) = compiled();
    let bytes = encode_plan(&plan, KEY, fp);
    // Cut the file at a spread of lengths covering the header, the length
    // field boundary, and the payload: all must decode to an error.
    let cuts: Vec<usize> = (0..HEADER_LEN)
        .chain([HEADER_LEN + 1, bytes.len() / 2, bytes.len() - 1])
        .collect();
    for cut in cuts {
        let err = decode_plan(&bytes[..cut], expect(fp)).unwrap_err();
        assert!(
            matches!(err, StoreError::Truncated(_) | StoreError::ChecksumMismatch),
            "cut at {cut}: unexpected {err}"
        );
    }
}

#[test]
fn bit_flips_never_panic_and_never_yield_a_wrong_plan() {
    let (plan, fp) = compiled();
    let bytes = encode_plan(&plan, KEY, fp);
    // Flip one bit at a sample of positions across header and payload.
    let step = (bytes.len() / 97).max(1);
    for pos in (0..bytes.len()).step_by(step) {
        let mut evil = bytes.clone();
        evil[pos] ^= 0x10;
        match decode_plan(&evil, expect(fp)) {
            // A flip inside the graph text can survive the checksum only if
            // the checksum itself was flipped to match — impossible for a
            // single-bit flip, so any Ok must be a flip in ignored bytes.
            Ok(_) => panic!("flip at {pos} went undetected"),
            Err(e) => {
                // Typed, recoverable; kind depends on which field was hit.
                assert!(!e.kind().is_empty());
            }
        }
    }
}

#[test]
fn version_bump_is_rejected_before_payload_is_touched() {
    let (plan, fp) = compiled();
    let mut bytes = encode_plan(&plan, KEY, fp);
    let future = (FORMAT_VERSION + 1).to_le_bytes();
    bytes[8..12].copy_from_slice(&future);
    match decode_plan(&bytes, expect(fp)).unwrap_err() {
        StoreError::VersionMismatch { found, expected } => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(expected, FORMAT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other}"),
    }
}

#[test]
fn roster_change_is_stale_not_corrupt() {
    let (plan, fp) = compiled();
    let bytes = encode_plan(&plan, KEY, fp);
    let new_roster = roster_fingerprint(["some", "new", "pass", "order"]);
    let err = decode_plan(&bytes, expect(new_roster)).unwrap_err();
    assert!(matches!(err, StoreError::RosterMismatch { .. }));
    assert!(err.is_stale());
    assert_eq!(err.kind(), "roster");
}

#[test]
fn wrong_magic_is_not_a_plan_file() {
    let (plan, fp) = compiled();
    let mut bytes = encode_plan(&plan, KEY, fp);
    bytes[..8].copy_from_slice(b"NOTAPLAN");
    assert!(matches!(
        decode_plan(&bytes, expect(fp)).unwrap_err(),
        StoreError::BadMagic
    ));
    assert_eq!(&bytes[..8], b"NOTAPLAN");
    assert_ne!(&bytes[..8], &MAGIC);
}

/// Store-level policy: each damaged/stale flavor is counted, evicted from
/// disk, and read as a miss; a following compile+save repopulates it.
#[test]
fn store_evicts_and_counts_each_flavor_then_recovers() {
    let dir = std::env::temp_dir().join(format!("tssa-store-neg-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = PlanStore::open(&dir).unwrap();
    let (plan, fp) = compiled();
    let plan = Arc::new(plan);

    // 1. plain miss
    assert!(store.load(KEY, fp).is_none());
    assert_eq!(store.stats().disk_misses, 1);

    // 2. truncated file -> corrupt_evicted, file removed
    store.save_blocking(KEY, fp, &plan).unwrap();
    let path = store.path_for(KEY);
    let full = std::fs::read(&path).unwrap();
    std::fs::write(&path, &full[..full.len() / 2]).unwrap();
    assert!(store.load(KEY, fp).is_none());
    assert_eq!(store.stats().corrupt_evicted, 1);
    assert!(!path.exists(), "corrupt entry must be evicted");

    // 3. bit flip in payload -> corrupt_evicted
    store.save_blocking(KEY, fp, &plan).unwrap();
    let mut flipped = std::fs::read(&path).unwrap();
    let mid = HEADER_LEN + (flipped.len() - HEADER_LEN) / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&path, &flipped).unwrap();
    assert!(store.load(KEY, fp).is_none());
    assert_eq!(store.stats().corrupt_evicted, 2);

    // 4. roster changed underneath -> stale_evicted
    store.save_blocking(KEY, fp, &plan).unwrap();
    let other = roster_fingerprint(["different"]);
    assert!(store.load(KEY, other).is_none());
    assert_eq!(store.stats().stale_evicted, 1);
    assert!(!path.exists());

    // 5. version bump -> stale_evicted
    store.save_blocking(KEY, fp, &plan).unwrap();
    let mut bumped = std::fs::read(&path).unwrap();
    bumped[8..12].copy_from_slice(&(FORMAT_VERSION + 9).to_le_bytes());
    std::fs::write(&path, &bumped).unwrap();
    assert!(store.load(KEY, fp).is_none());
    assert_eq!(store.stats().stale_evicted, 2);

    // 6. recovery: a fresh save serves hits again
    store.save_blocking(KEY, fp, &plan).unwrap();
    assert!(store.load(KEY, fp).is_some());
    let stats = store.stats();
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.writes, 5);
    assert_eq!(stats.write_errors, 0);

    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
