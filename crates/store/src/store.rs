//! The on-disk plan cache: a directory of plan files keyed by content hash,
//! with a dedicated writer thread so saves never block the serving hot
//! path.
//!
//! Invariants:
//!
//! - **Reads are infallible to the caller.** [`PlanStore::load`] returns
//!   `Some(plan)` only for an intact, version- and roster-matched entry;
//!   everything else — missing file, torn write, flipped bit, stale roster,
//!   old format — counts a typed counter, evicts the bad file, and reads as
//!   a miss. A poisoned file is just another fault kind.
//! - **Writes are atomic and asynchronous.** Entries are encoded on the
//!   writer thread and written to a temp file then renamed into place, so a
//!   crash mid-write leaves either the old entry or none — never a torn
//!   one. [`PlanStore::flush`] drains the queue for shutdown and tests.

use crate::format::{
    decode_plan, decode_plan_full, encode_plan_with, peek_header, ClassMeta, DecodedPlan, Expected,
    StoreError, FORMAT_VERSION,
};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use tssa_pipelines::CompiledProgram;

/// Snapshot of the store's activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Entries served intact from disk.
    pub disk_hits: u64,
    /// Lookups that found no entry on disk.
    pub disk_misses: u64,
    /// Damaged entries evicted (bad magic, truncation, checksum, parse).
    pub corrupt_evicted: u64,
    /// Stale entries evicted (version, roster, or key mismatch).
    pub stale_evicted: u64,
    /// Entries written to disk.
    pub writes: u64,
    /// Saves that failed (encode ok, filesystem said no).
    pub write_errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    disk_hits: AtomicU64,
    disk_misses: AtomicU64,
    corrupt_evicted: AtomicU64,
    stale_evicted: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
}

enum Job {
    Save {
        path: PathBuf,
        plan: Arc<CompiledProgram>,
        content_hash: u64,
        roster_fingerprint: u64,
        class: ClassMeta,
    },
    Sync(Sender<()>),
}

/// A directory of serialized compiled plans. Cheap to clone the handle via
/// `Arc`; dropping the last handle joins the writer thread.
pub struct PlanStore {
    dir: PathBuf,
    counters: Arc<Counters>,
    tx: Mutex<Option<Sender<Job>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for PlanStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanStore")
            .field("dir", &self.dir)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanStore {
    /// Open (creating if needed) the cache directory and start the writer
    /// thread.
    ///
    /// # Errors
    ///
    /// Any filesystem error creating `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<PlanStore> {
        let dir: PathBuf = dir.into();
        std::fs::create_dir_all(&dir)?;
        let counters = Arc::new(Counters::default());
        let (tx, rx) = channel::<Job>();
        let thread_counters = Arc::clone(&counters);
        let writer = std::thread::Builder::new()
            .name("tssa-plan-store".into())
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    match job {
                        Job::Save {
                            path,
                            plan,
                            content_hash,
                            roster_fingerprint,
                            class,
                        } => {
                            let bytes =
                                encode_plan_with(&plan, content_hash, roster_fingerprint, &class);
                            match write_atomic(&path, &bytes) {
                                Ok(()) => {
                                    thread_counters.writes.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(_) => {
                                    thread_counters.write_errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        Job::Sync(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })?;
        Ok(PlanStore {
            dir,
            counters,
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `content_hash`.
    pub fn path_for(&self, content_hash: u64) -> PathBuf {
        self.dir.join(format!("{content_hash:016x}.plan"))
    }

    /// Number of plan files currently on disk.
    pub fn entries(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|rd| {
                rd.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "plan"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Typed read of one entry, with full header validation against the
    /// caller's key and live roster. Does not touch counters or evict —
    /// [`PlanStore::load`] layers that policy on top; tests use this
    /// directly to assert error kinds.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]; `Io(NotFound)` means no entry exists.
    pub fn load_entry(
        &self,
        content_hash: u64,
        roster_fingerprint: u64,
    ) -> Result<CompiledProgram, StoreError> {
        let bytes = std::fs::read(self.path_for(content_hash))?;
        let (plan, _roster) = decode_plan(
            &bytes,
            Expected {
                content_hash: Some(content_hash),
                roster_fingerprint: Some(roster_fingerprint),
            },
        )?;
        Ok(plan)
    }

    /// Look up `content_hash`, requiring the entry to match
    /// `roster_fingerprint`. Missing entries count as misses; damaged or
    /// stale entries are evicted (file removed) under their typed counter
    /// and also read as misses. Never panics, never surfaces an error.
    pub fn load(&self, content_hash: u64, roster_fingerprint: u64) -> Option<CompiledProgram> {
        match self.load_entry(content_hash, roster_fingerprint) {
            Ok(plan) => {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            Err(e) => {
                let slot = if e.is_stale() {
                    &self.counters.stale_evicted
                } else {
                    &self.counters.corrupt_evicted
                };
                slot.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(self.path_for(content_hash));
                None
            }
        }
    }

    /// Class-aware lookup, counting **exactly one** disk hit or miss (or one
    /// eviction) per call. The exact `content_hash` entry is tried first; on
    /// an exact miss, the directory is scanned for a current-version entry
    /// whose header carries `coarse_hash`, matches `roster_fingerprint`, and
    /// whose decoded plan passes the caller's `admit` check (the shape-class
    /// admission test) — this is how a warm restart serves a concrete shape
    /// it never stored exactly. Returns the decoded plan and whether the hit
    /// was exact.
    pub fn load_class(
        &self,
        content_hash: u64,
        coarse_hash: u64,
        roster_fingerprint: u64,
        admit: impl Fn(&DecodedPlan) -> bool,
    ) -> Option<(DecodedPlan, bool)> {
        let exact_path = self.path_for(content_hash);
        match std::fs::read(&exact_path) {
            Ok(bytes) => {
                match decode_plan_full(
                    &bytes,
                    Expected {
                        content_hash: Some(content_hash),
                        roster_fingerprint: Some(roster_fingerprint),
                    },
                ) {
                    Ok(decoded) => {
                        self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Some((decoded, true));
                    }
                    Err(e) => {
                        // Damaged or stale exact entry: evict (the one
                        // counted outcome of this load) and stop — a bad
                        // exact entry means the class scan would find the
                        // same generation of files.
                        let slot = if e.is_stale() {
                            &self.counters.stale_evicted
                        } else {
                            &self.counters.corrupt_evicted
                        };
                        slot.fetch_add(1, Ordering::Relaxed);
                        let _ = std::fs::remove_file(&exact_path);
                        return None;
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => {
                self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        // Exact miss: scan headers for the class. Files that fail to peek
        // or decode are skipped without counters — they belong to other
        // keys, whose own loads will evict them.
        if coarse_hash != 0 {
            let mut paths: Vec<PathBuf> = std::fs::read_dir(&self.dir)
                .map(|rd| {
                    rd.filter_map(Result::ok)
                        .map(|e| e.path())
                        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
                        .collect()
                })
                .unwrap_or_default();
            paths.sort();
            for path in paths {
                if path == exact_path {
                    continue;
                }
                let Ok(bytes) = std::fs::read(&path) else {
                    continue;
                };
                let Ok(header) = peek_header(&bytes) else {
                    continue;
                };
                if header.version != FORMAT_VERSION
                    || header.coarse_hash != coarse_hash
                    || header.roster_fingerprint != roster_fingerprint
                {
                    continue;
                }
                let Ok(decoded) = decode_plan_full(
                    &bytes,
                    Expected {
                        content_hash: Some(header.content_hash),
                        roster_fingerprint: Some(roster_fingerprint),
                    },
                ) else {
                    continue;
                };
                if admit(&decoded) {
                    self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                    return Some((decoded, false));
                }
            }
        }
        self.counters.disk_misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Queue `plan` for write-back with no shape-class metadata. Thin
    /// wrapper over [`PlanStore::save_async_with`].
    pub fn save_async(
        &self,
        content_hash: u64,
        roster_fingerprint: u64,
        plan: Arc<CompiledProgram>,
    ) {
        self.save_async_with(content_hash, roster_fingerprint, plan, ClassMeta::default());
    }

    /// Queue `plan` for write-back. Returns immediately; encoding and the
    /// write happen on the store's writer thread.
    pub fn save_async_with(
        &self,
        content_hash: u64,
        roster_fingerprint: u64,
        plan: Arc<CompiledProgram>,
        class: ClassMeta,
    ) {
        let job = Job::Save {
            path: self.path_for(content_hash),
            plan,
            content_hash,
            roster_fingerprint,
            class,
        };
        let sent = self
            .tx
            .lock()
            .ok()
            .and_then(|tx| tx.as_ref().map(|tx| tx.send(job).is_ok()))
            .unwrap_or(false);
        if !sent {
            self.counters.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Encode and write `plan` on the calling thread (atomic temp+rename).
    ///
    /// # Errors
    ///
    /// Any filesystem error as [`StoreError::Io`].
    pub fn save_blocking(
        &self,
        content_hash: u64,
        roster_fingerprint: u64,
        plan: &CompiledProgram,
    ) -> Result<(), StoreError> {
        let bytes = encode_plan_with(
            plan,
            content_hash,
            roster_fingerprint,
            &ClassMeta::default(),
        );
        write_atomic(&self.path_for(content_hash), &bytes)?;
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Block until every save queued before this call has hit the
    /// filesystem.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = channel();
        let sent = self
            .tx
            .lock()
            .ok()
            .and_then(|tx| tx.as_ref().map(|tx| tx.send(Job::Sync(ack_tx)).is_ok()))
            .unwrap_or(false);
        if sent {
            let _ = ack_rx.recv();
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            disk_misses: self.counters.disk_misses.load(Ordering::Relaxed),
            corrupt_evicted: self.counters.corrupt_evicted.load(Ordering::Relaxed),
            stale_evicted: self.counters.stale_evicted.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            write_errors: self.counters.write_errors.load(Ordering::Relaxed),
        }
    }
}

impl Drop for PlanStore {
    fn drop(&mut self) {
        if let Ok(mut tx) = self.tx.lock() {
            tx.take(); // close the channel so the writer loop ends
        }
        if let Ok(mut writer) = self.writer.lock() {
            if let Some(handle) = writer.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Write `bytes` to `path` via a temp file in the same directory plus an
/// atomic rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("plan.tmp");
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}
