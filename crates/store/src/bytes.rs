//! Little-endian byte-buffer primitives shared by the plan file format and
//! the binary tensor wire codec in `tssa-net`.
//!
//! Deliberately minimal: fixed-width integers/floats and length-prefixed
//! strings/byte runs, with every read bounds-checked so truncated or
//! corrupted input surfaces as a typed [`Truncated`] error instead of a
//! panic.

use std::fmt;

/// A read ran past the end of the buffer (or a declared length did).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Truncated {
    /// What the reader was trying to decode.
    pub what: &'static str,
    /// Byte offset at which the read started.
    pub at: usize,
}

impl fmt::Display for Truncated {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "truncated input reading {} at byte {}",
            self.what, self.at
        )
    }
}

impl std::error::Error for Truncated {}

/// Append-only little-endian encoder.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// An empty writer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32` length prefix followed by the UTF-8 bytes of `s`.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a `u32` length prefix followed by `bytes` verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }
}

/// Bounds-checked little-endian decoder over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], Truncated> {
        let at = self.pos;
        let end = at.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                self.pos = end;
                Ok(&self.buf[at..end])
            }
            None => Err(Truncated { what, at }),
        }
    }

    /// Read `n` raw bytes (no length prefix).
    pub fn get_raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], Truncated> {
        self.take(n, what)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, Truncated> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, Truncated> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4-byte slice")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, Truncated> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self, what: &'static str) -> Result<i64, Truncated> {
        let b = self.take(8, what)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, Truncated> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Read a `u32`-length-prefixed UTF-8 string. Invalid UTF-8 is reported
    /// as truncation of `what` (the buffer is not a valid encoding either
    /// way).
    pub fn get_str(&mut self, what: &'static str) -> Result<&'a str, Truncated> {
        let at = self.pos;
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes).map_err(|_| Truncated { what, at })
    }

    /// Read a `u32`-length-prefixed byte run.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<&'a [u8], Truncated> {
        let len = self.get_u32(what)? as usize;
        self.take(len, what)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(-1.5e300);
        w.put_str("héllo");
        w.put_bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64("d").unwrap(), -42);
        assert_eq!(r.get_f64("e").unwrap(), -1.5e300);
        assert_eq!(r.get_str("f").unwrap(), "héllo");
        assert_eq!(r.get_bytes("g").unwrap(), &[1, 2, 3]);
        assert!(r.is_exhausted());
    }

    #[test]
    fn every_truncation_point_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(9);
        w.put_str("payload");
        let buf = w.into_bytes();
        for cut in 0..buf.len() {
            let mut r = ByteReader::new(&buf[..cut]);
            let ok = r
                .get_u64("n")
                .map_err(|e| e.to_string())
                .and_then(|_| r.get_str("s").map(str::to_owned).map_err(|e| e.to_string()));
            assert!(ok.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn declared_length_past_end_is_truncated() {
        let mut w = ByteWriter::new();
        w.put_u32(1_000_000);
        let buf = w.into_bytes();
        assert!(ByteReader::new(&buf).get_bytes("blob").is_err());
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let buf = w.into_bytes();
        assert!(ByteReader::new(&buf).get_str("s").is_err());
    }
}
