//! The versioned binary plan file format.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TSSAPLAN"
//! 8       4     format version (FORMAT_VERSION)
//! 12      4     flags — polymorphic input-dim count of the plan's shape
//!               signature (0 when the plan carries none), so ops tooling
//!               can read a plan's shape class without decoding the payload
//! 16      8     content hash  — FNV-1a of (source, pipeline, config)
//! 24      8     roster fingerprint — FNV-1a over the pass roster
//! 32      8     class hash — the plan's `PlanClassKey` identity
//!               (0 when the plan is not class-eligible)
//! 40      8     coarse class hash — the class identity with every pin
//!               erased (rank + dtype only; 0 when not class-eligible), so
//!               a warm restart can find the class plan for a *new* concrete
//!               shape without decoding every payload
//! 48      8     payload length in bytes
//! 56      8     checksum — FNV-1a over header bytes [0, 56) ++ payload,
//!               so a flipped bit anywhere in the file is detected
//! 64      …     payload
//! ```
//!
//! The header is self-describing: every field needed to decide whether the
//! payload is worth decoding (right format? right program? right pass
//! roster? intact?) sits at a fixed offset before the payload. The payload
//! serializes the [`CompiledProgram`]: pipeline name, [`ExecConfig`]
//! (device profile + host overheads), conversion stats, fusion/parallel
//! counts, the pass roster (names, for reports), the transformed graph
//! as textual IR — the printer/parser round-trip is the graph codec — the
//! optional [`ShapeSignature`] (format v2), and the admitted-shape census
//! (format v3: one `(bucket label, hits)` pair per concrete shape the class
//! plan served, so warm restarts rebuild bucket heat).

use crate::bytes::{ByteReader, ByteWriter, Truncated};
use std::fmt;
use tssa_backend::{DeviceProfile, ExecConfig};
use tssa_core::ConversionStats;
use tssa_ir::{parse_graph, DimClass, DimVar, ShapeSignature, SymDim, SymExpr};
use tssa_pipelines::CompiledProgram;

/// File magic: the first eight bytes of every plan file.
pub const MAGIC: [u8; 8] = *b"TSSAPLAN";

/// Current format version. Bump on any layout change; readers reject other
/// versions (a version-mismatched file is a cache miss, never a crash).
/// v2: payload carries the optional shape signature; header flags carry its
/// polymorphic-dim count.
/// v3: header carries the class + coarse class hashes, the payload carries
/// the admitted-shape census, and the checksum covers the header prefix as
/// well as the payload.
pub const FORMAT_VERSION: u32 = 3;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 64;

/// Byte length of the checksummed header prefix (everything before the
/// checksum field itself).
const CHECKSUMMED_PREFIX: usize = 56;

/// Why a plan file could not be decoded. Every variant is a recoverable
/// cache miss for the store: evict the file and recompile.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error reading or writing the entry.
    Io(std::io::Error),
    /// The file does not start with [`MAGIC`] — not a plan file.
    BadMagic,
    /// The file ends before a declared field or the declared payload length.
    Truncated(Truncated),
    /// The file was written by a different format version.
    VersionMismatch {
        /// Version found in the header.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The payload checksum does not match — bit rot or a torn write.
    ChecksumMismatch,
    /// The header's roster fingerprint differs from the live pipeline's pass
    /// roster — the plan was compiled by a different optimizer.
    RosterMismatch {
        /// Fingerprint found in the header.
        found: u64,
        /// Fingerprint of the live roster.
        expected: u64,
    },
    /// The header's content hash differs from the requested key — the file
    /// holds a different program.
    KeyMismatch {
        /// Hash found in the header.
        found: u64,
        /// Hash the caller asked for.
        expected: u64,
    },
    /// The payload is structurally invalid (unknown pipeline/device name,
    /// unparseable graph text).
    Parse(String),
}

impl StoreError {
    /// Short stable kind label for metrics
    /// (`tssa_plan_cache_disk_*_total` counters bucket on it).
    pub fn kind(&self) -> &'static str {
        match self {
            StoreError::Io(_) => "io",
            StoreError::BadMagic => "bad_magic",
            StoreError::Truncated(_) => "truncated",
            StoreError::VersionMismatch { .. } => "version",
            StoreError::ChecksumMismatch => "checksum",
            StoreError::RosterMismatch { .. } => "roster",
            StoreError::KeyMismatch { .. } => "key",
            StoreError::Parse(_) => "parse",
        }
    }

    /// True for entries that are stale (written by a different compiler or
    /// format revision) rather than damaged.
    pub fn is_stale(&self) -> bool {
        matches!(
            self,
            StoreError::VersionMismatch { .. }
                | StoreError::RosterMismatch { .. }
                | StoreError::KeyMismatch { .. }
        )
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "plan store i/o: {e}"),
            StoreError::BadMagic => write!(f, "not a plan file (bad magic)"),
            StoreError::Truncated(t) => write!(f, "corrupt plan file: {t}"),
            StoreError::VersionMismatch { found, expected } => {
                write!(f, "plan format version {found}, reader expects {expected}")
            }
            StoreError::ChecksumMismatch => write!(f, "plan payload checksum mismatch"),
            StoreError::RosterMismatch { found, expected } => write!(
                f,
                "plan pass roster {found:#018x} does not match live roster {expected:#018x}"
            ),
            StoreError::KeyMismatch { found, expected } => write!(
                f,
                "plan content hash {found:#018x} does not match requested {expected:#018x}"
            ),
            StoreError::Parse(msg) => write!(f, "plan payload invalid: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

impl From<Truncated> for StoreError {
    fn from(t: Truncated) -> StoreError {
        StoreError::Truncated(t)
    }
}

/// What the reader requires of a file before decoding its payload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Expected {
    /// Required content hash (the cache key), if any.
    pub content_hash: Option<u64>,
    /// Required roster fingerprint of the live pipeline, if any.
    pub roster_fingerprint: Option<u64>,
}

/// Pipeline names that may appear in a plan file, interned so the decoded
/// [`CompiledProgram::pipeline`] keeps its `&'static str` type.
const KNOWN_PIPELINES: [&str; 6] = [
    "Eager",
    "TorchScript+NNC",
    "TorchScript+nvFuser",
    "Dynamo+Inductor",
    "TensorSSA",
    "Degraded",
];

fn intern_pipeline(name: &str) -> Result<&'static str, StoreError> {
    KNOWN_PIPELINES
        .iter()
        .find(|&&k| k == name)
        .copied()
        .ok_or_else(|| StoreError::Parse(format!("unknown pipeline {name:?}")))
}

fn intern_device(name: &str) -> Result<&'static str, StoreError> {
    for known in [
        DeviceProfile::consumer().name,
        DeviceProfile::datacenter().name,
    ] {
        if known == name {
            return Ok(known);
        }
    }
    Err(StoreError::Parse(format!(
        "unknown device profile {name:?}"
    )))
}

/// The fixed-size header of a plan file, readable without decoding (or
/// checksumming) the payload — the cheap surface ops tooling and the
/// serving layer's cache reports use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanHeader {
    /// Format version the file was written with.
    pub version: u32,
    /// Polymorphic input-dim count of the plan's shape signature (0 when
    /// the plan carries none).
    pub polymorphic_dims: u32,
    /// Content hash (the cache key).
    pub content_hash: u64,
    /// Pass-roster fingerprint of the compiling pipeline.
    pub roster_fingerprint: u64,
    /// Shape-class hash of the plan (0 when not class-eligible).
    pub class_hash: u64,
    /// Coarse (rank + dtype) class hash (0 when not class-eligible). A warm
    /// restart scans headers for this value to find the class plan serving
    /// a concrete shape it has never stored exactly.
    pub coarse_hash: u64,
    /// Declared payload length in bytes.
    pub payload_len: u64,
}

/// Read just the header of a plan file image. Validates magic only — the
/// caller sees version/fingerprints and decides what to do.
///
/// # Errors
///
/// [`StoreError::BadMagic`] or [`StoreError::Truncated`].
pub fn peek_header(bytes: &[u8]) -> Result<PlanHeader, StoreError> {
    let mut r = ByteReader::new(bytes);
    if r.get_raw(8, "magic")? != MAGIC {
        return Err(StoreError::BadMagic);
    }
    Ok(PlanHeader {
        version: r.get_u32("version")?,
        polymorphic_dims: r.get_u32("flags")?,
        content_hash: r.get_u64("content hash")?,
        roster_fingerprint: r.get_u64("roster fingerprint")?,
        class_hash: r.get_u64("class hash")?,
        coarse_hash: r.get_u64("coarse class hash")?,
        payload_len: r.get_u64("payload length")?,
    })
}

fn put_expr(w: &mut ByteWriter, e: &SymExpr) {
    w.put_i64(e.constant_term());
    w.put_u32(e.terms().len() as u32);
    for &(v, c) in e.terms() {
        w.put_u32(v.input);
        w.put_u32(v.dim);
        w.put_i64(c);
    }
}

fn get_expr(p: &mut ByteReader<'_>) -> Result<SymExpr, StoreError> {
    let c0 = p.get_i64("expr constant")?;
    let n = p.get_u32("expr term count")? as usize;
    let mut terms = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let input = p.get_u32("term input")?;
        let dim = p.get_u32("term dim")?;
        let coef = p.get_i64("term coefficient")?;
        terms.push((DimVar { input, dim }, coef));
    }
    Ok(SymExpr::from_parts(c0, terms))
}

fn put_signature(w: &mut ByteWriter, sig: Option<&ShapeSignature>) {
    let Some(sig) = sig else {
        w.put_u8(0);
        return;
    };
    w.put_u8(1);
    w.put_u32(sig.inputs.len() as u32);
    for classes in &sig.inputs {
        match classes {
            None => w.put_u8(0),
            Some(dims) => {
                w.put_u8(1);
                w.put_u32(dims.len() as u32);
                for c in dims {
                    match c {
                        DimClass::Polymorphic => w.put_u8(0),
                        DimClass::Specialized(n) => {
                            w.put_u8(1);
                            w.put_u64(*n as u64);
                        }
                        DimClass::DataDependent => w.put_u8(2),
                    }
                }
            }
        }
    }
    w.put_u32(sig.outputs.len() as u32);
    for shape in &sig.outputs {
        match shape {
            None => w.put_u8(0),
            Some(dims) => {
                w.put_u8(1);
                w.put_u32(dims.len() as u32);
                for d in dims {
                    match d {
                        SymDim::Known(e) => {
                            w.put_u8(0);
                            put_expr(w, e);
                        }
                        SymDim::Unknown(taint) => {
                            w.put_u8(1);
                            w.put_u32(taint.len() as u32);
                            for v in taint {
                                w.put_u32(v.input);
                                w.put_u32(v.dim);
                            }
                        }
                    }
                }
            }
        }
    }
    w.put_u32(sig.constraints.len() as u32);
    for c in &sig.constraints {
        w.put_str(c);
    }
}

fn get_signature(p: &mut ByteReader<'_>) -> Result<Option<ShapeSignature>, StoreError> {
    if p.get_u8("signature present")? == 0 {
        return Ok(None);
    }
    let n_inputs = p.get_u32("signature input count")? as usize;
    let mut inputs = Vec::with_capacity(n_inputs.min(64));
    for _ in 0..n_inputs {
        if p.get_u8("input classes present")? == 0 {
            inputs.push(None);
            continue;
        }
        let n_dims = p.get_u32("input dim count")? as usize;
        let mut dims = Vec::with_capacity(n_dims.min(64));
        for _ in 0..n_dims {
            dims.push(match p.get_u8("dim class tag")? {
                0 => DimClass::Polymorphic,
                1 => DimClass::Specialized(p.get_u64("specialized extent")? as usize),
                2 => DimClass::DataDependent,
                t => return Err(StoreError::Parse(format!("unknown dim class tag {t}"))),
            });
        }
        inputs.push(Some(dims));
    }
    let n_outputs = p.get_u32("signature output count")? as usize;
    let mut outputs = Vec::with_capacity(n_outputs.min(64));
    for _ in 0..n_outputs {
        if p.get_u8("output shape present")? == 0 {
            outputs.push(None);
            continue;
        }
        let n_dims = p.get_u32("output dim count")? as usize;
        let mut dims = Vec::with_capacity(n_dims.min(64));
        for _ in 0..n_dims {
            dims.push(match p.get_u8("sym dim tag")? {
                0 => SymDim::Known(get_expr(p)?),
                1 => {
                    let n_taint = p.get_u32("taint count")? as usize;
                    let mut taint = std::collections::BTreeSet::new();
                    for _ in 0..n_taint {
                        let input = p.get_u32("taint input")?;
                        let dim = p.get_u32("taint dim")?;
                        taint.insert(DimVar { input, dim });
                    }
                    SymDim::Unknown(taint)
                }
                t => return Err(StoreError::Parse(format!("unknown sym dim tag {t}"))),
            });
        }
        outputs.push(Some(dims));
    }
    let n_constraints = p.get_u32("constraint count")? as usize;
    let mut constraints = Vec::with_capacity(n_constraints.min(64));
    for _ in 0..n_constraints {
        constraints.push(p.get_str("constraint")?.to_owned());
    }
    Ok(Some(ShapeSignature {
        inputs,
        outputs,
        constraints,
    }))
}

/// Shape-class metadata carried by a v3 plan file: the class identity
/// hashes and the admitted-shape census. `Default` (all zeros, empty
/// census) marks a plan that is not class-eligible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClassMeta {
    /// The plan's `PlanClassKey` hash (0 when not class-eligible).
    pub class_hash: u64,
    /// The class hash with every pin erased (0 when not class-eligible).
    pub coarse_hash: u64,
    /// `(bucket label, hits)` per concrete shape the class plan served.
    pub census: Vec<(String, u64)>,
}

/// A fully decoded plan file: the program, the pass roster that compiled
/// it, and the shape-class metadata.
#[derive(Debug)]
pub struct DecodedPlan {
    /// The decoded program (its `passes` record is empty — a disk-loaded
    /// plan ran no passes in this process).
    pub plan: CompiledProgram,
    /// The roster the compiling process ran, for reports.
    pub roster: Vec<String>,
    /// Shape-class metadata (all-default when not class-eligible).
    pub class: ClassMeta,
}

/// FNV-1a over the checksummed header prefix followed by the payload.
fn file_checksum(prefix: &[u8], payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in prefix.iter().chain(payload) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serialize `plan` into a self-contained plan file image with no
/// shape-class metadata. Thin wrapper over [`encode_plan_with`].
pub fn encode_plan(plan: &CompiledProgram, content_hash: u64, roster_fingerprint: u64) -> Vec<u8> {
    encode_plan_with(
        plan,
        content_hash,
        roster_fingerprint,
        &ClassMeta::default(),
    )
}

/// Serialize `plan` into a self-contained plan file image.
pub fn encode_plan_with(
    plan: &CompiledProgram,
    content_hash: u64,
    roster_fingerprint: u64,
    class: &ClassMeta,
) -> Vec<u8> {
    let mut p = ByteWriter::with_capacity(1024);
    p.put_str(plan.pipeline);
    let cfg = &plan.exec_config;
    p.put_str(cfg.device.name);
    p.put_f64(cfg.device.launch_overhead_ns);
    p.put_f64(cfg.device.bytes_per_ns);
    p.put_f64(cfg.device.flops_per_ns);
    p.put_f64(cfg.host_dispatch_ns);
    p.put_f64(cfg.host_scalar_ns);
    p.put_f64(cfg.control_entry_ns);
    p.put_f64(cfg.sync_ns);
    p.put_u64(cfg.parallel_threads as u64);
    let c = &plan.conversion;
    for v in [
        c.candidates,
        c.mutations_removed,
        c.views_rewritten,
        c.updates_inserted,
        c.loop_carries_added,
        c.branch_returns_added,
    ] {
        p.put_u64(v as u64);
    }
    p.put_u64(plan.fusion_groups as u64);
    p.put_u64(plan.parallel_loops as u64);
    p.put_u32(plan.passes.len() as u32);
    for run in &plan.passes {
        p.put_str(run.name);
    }
    p.put_str(&plan.graph.to_string());
    put_signature(&mut p, plan.signature.as_ref());
    p.put_u32(class.census.len() as u32);
    for (label, hits) in &class.census {
        p.put_str(label);
        p.put_u64(*hits);
    }
    let payload = p.into_bytes();

    let poly_dims = plan
        .signature
        .as_ref()
        .map_or(0, |s| s.polymorphic_dims() as u32);
    let mut w = ByteWriter::with_capacity(HEADER_LEN + payload.len());
    w.put_raw(&MAGIC);
    w.put_u32(FORMAT_VERSION);
    w.put_u32(poly_dims); // flags: polymorphic-dim count of the signature
    w.put_u64(content_hash);
    w.put_u64(roster_fingerprint);
    w.put_u64(class.class_hash);
    w.put_u64(class.coarse_hash);
    w.put_u64(payload.len() as u64);
    let mut bytes = w.into_bytes();
    debug_assert_eq!(bytes.len(), CHECKSUMMED_PREFIX);
    let checksum = file_checksum(&bytes, &payload);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes
}

/// Decode a plan file image, validating the header against `expected`.
/// Thin wrapper over [`decode_plan_full`] returning `(plan, roster)`.
///
/// # Errors
///
/// Any [`StoreError`]; callers treat every variant as a cache miss.
pub fn decode_plan(
    bytes: &[u8],
    expected: Expected,
) -> Result<(CompiledProgram, Vec<String>), StoreError> {
    let decoded = decode_plan_full(bytes, expected)?;
    Ok((decoded.plan, decoded.roster))
}

/// Decode a plan file image, validating the header against `expected`.
///
/// The decoded program's `passes` record is empty: a disk-loaded plan ran
/// no passes in this process (that is the point). The roster the compiling
/// process ran is returned alongside for reports, together with the
/// shape-class metadata.
///
/// # Errors
///
/// Any [`StoreError`]; callers treat every variant as a cache miss.
pub fn decode_plan_full(bytes: &[u8], expected: Expected) -> Result<DecodedPlan, StoreError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.get_raw(8, "magic")?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = r.get_u32("version")?;
    if version != FORMAT_VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let _flags = r.get_u32("flags")?;
    let content_hash = r.get_u64("content hash")?;
    if let Some(want) = expected.content_hash {
        if content_hash != want {
            return Err(StoreError::KeyMismatch {
                found: content_hash,
                expected: want,
            });
        }
    }
    let roster_fp = r.get_u64("roster fingerprint")?;
    if let Some(want) = expected.roster_fingerprint {
        if roster_fp != want {
            return Err(StoreError::RosterMismatch {
                found: roster_fp,
                expected: want,
            });
        }
    }
    let class_hash = r.get_u64("class hash")?;
    let coarse_hash = r.get_u64("coarse class hash")?;
    let payload_len = r.get_u64("payload length")? as usize;
    let checksum = r.get_u64("checksum")?;
    let payload = r.get_raw(
        payload_len,
        "payload", // declared length runs past EOF => truncated
    )?;
    if bytes.len() < CHECKSUMMED_PREFIX
        || file_checksum(&bytes[..CHECKSUMMED_PREFIX], payload) != checksum
    {
        return Err(StoreError::ChecksumMismatch);
    }

    let mut p = ByteReader::new(payload);
    let pipeline = intern_pipeline(p.get_str("pipeline name")?)?;
    let device_name = intern_device(p.get_str("device name")?)?;
    let device = DeviceProfile {
        name: device_name,
        launch_overhead_ns: p.get_f64("launch overhead")?,
        bytes_per_ns: p.get_f64("bytes/ns")?,
        flops_per_ns: p.get_f64("flops/ns")?,
    };
    let exec_config = ExecConfig {
        device,
        host_dispatch_ns: p.get_f64("host dispatch")?,
        host_scalar_ns: p.get_f64("host scalar")?,
        control_entry_ns: p.get_f64("control entry")?,
        sync_ns: p.get_f64("sync")?,
        parallel_threads: p.get_u64("parallel threads")? as usize,
    };
    let mut conv = [0usize; 6];
    for (i, slot) in conv.iter_mut().enumerate() {
        *slot = p.get_u64(CONVERSION_FIELDS[i])? as usize;
    }
    let conversion = ConversionStats {
        candidates: conv[0],
        mutations_removed: conv[1],
        views_rewritten: conv[2],
        updates_inserted: conv[3],
        loop_carries_added: conv[4],
        branch_returns_added: conv[5],
    };
    let fusion_groups = p.get_u64("fusion groups")? as usize;
    let parallel_loops = p.get_u64("parallel loops")? as usize;
    let n_passes = p.get_u32("pass count")? as usize;
    let mut roster = Vec::with_capacity(n_passes.min(64));
    for _ in 0..n_passes {
        roster.push(p.get_str("pass name")?.to_owned());
    }
    let text = p.get_str("graph text")?;
    let graph = parse_graph(text).map_err(|e| StoreError::Parse(format!("graph: {e}")))?;
    graph
        .verify()
        .map_err(|e| StoreError::Parse(format!("graph verify: {e:?}")))?;
    let signature = get_signature(&mut p)?;
    let n_census = p.get_u32("census count")? as usize;
    let mut census = Vec::with_capacity(n_census.min(64));
    for _ in 0..n_census {
        let label = p.get_str("census bucket")?.to_owned();
        let hits = p.get_u64("census hits")?;
        census.push((label, hits));
    }
    Ok(DecodedPlan {
        plan: CompiledProgram {
            graph,
            exec_config,
            pipeline,
            conversion,
            fusion_groups,
            parallel_loops,
            passes: Vec::new(),
            signature,
        },
        roster,
        class: ClassMeta {
            class_hash,
            coarse_hash,
            census,
        },
    })
}

const CONVERSION_FIELDS: [&str; 6] = [
    "candidates",
    "mutations removed",
    "views rewritten",
    "updates inserted",
    "loop carries",
    "branch returns",
];
