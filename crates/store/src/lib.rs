//! Persistent plan store: a versioned binary serialization for
//! [`CompiledProgram`](tssa_pipelines::CompiledProgram) and an on-disk
//! cache so compiled plans survive process restarts.
//!
//! The paper's pipeline amortizes an expensive compile across many
//! executions; without persistence that amortization resets on every
//! deploy or crash. This crate closes the loop:
//!
//! - [`bytes`] — little-endian encode/decode primitives (also reused by the
//!   binary tensor wire codec in `tssa-net`).
//! - [`format`] — the plan file format: magic + version + content hash +
//!   roster fingerprint + checksum header, payload carrying the transformed
//!   graph as textual IR plus the [`ExecConfig`](tssa_backend::ExecConfig)
//!   and compile statistics.
//! - [`store`] — [`PlanStore`]: a cache directory keyed by content hash,
//!   reads that treat every damaged or stale entry as an evict-and-miss,
//!   and an async writer thread so saves never block serving.
//!
//! Invalidation is two-level: the *content hash* (what program, which
//! pipeline, what config) names the entry, and the *roster fingerprint*
//! (which passes the compiler would run today) guards it — if the optimizer
//! changed since the entry was written, the entry is stale and recompiled.
//!
//! # Examples
//!
//! ```
//! use tssa_pipelines::{Pipeline, TensorSsa};
//! use tssa_store::{roster_fingerprint, PlanStore};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = tssa_frontend::compile(
//!     "def f(x: Tensor):
//!          y = x.clone()
//!          y[0] = relu(y[0])
//!          return y
//! ")?;
//! let pipeline = TensorSsa::default();
//! let plan = Arc::new(pipeline.compile(&g));
//! let fp = roster_fingerprint(pipeline.roster().iter().copied());
//!
//! let dir = std::env::temp_dir().join("tssa-store-doc");
//! let store = PlanStore::open(&dir)?;
//! store.save_async(0xF00D, fp, Arc::clone(&plan));
//! store.flush();
//! let warm = store.load(0xF00D, fp).expect("intact entry");
//! assert_eq!(warm.pipeline, "TensorSSA");
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub mod bytes;
pub mod format;
pub mod store;

pub use format::{
    peek_header, ClassMeta, DecodedPlan, Expected, PlanHeader, StoreError, FORMAT_VERSION,
    HEADER_LEN, MAGIC,
};
pub use store::{PlanStore, StoreStats};

/// FNV-1a over a byte slice — the repo's standard content hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a pass roster: FNV-1a over the pass names in order, with
/// a separator byte so `["a", "bc"]` and `["ab", "c"]` differ.
pub fn roster_fingerprint<'a>(names: impl IntoIterator<Item = &'a str>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for name in names {
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_fingerprint_separates_boundaries() {
        assert_ne!(
            roster_fingerprint(["a", "bc"]),
            roster_fingerprint(["ab", "c"])
        );
        assert_ne!(roster_fingerprint(["a"]), roster_fingerprint(["a", "a"]));
        assert_eq!(
            roster_fingerprint(["cse", "dce"]),
            roster_fingerprint(vec!["cse", "dce"])
        );
    }

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("a") from the published reference implementation.
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
