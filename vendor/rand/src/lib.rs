//! Offline shim reproducing the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! splitmix64 — deterministic per seed, with statistical quality more than
//! sufficient for generating benchmark inputs. The exact stream differs from
//! upstream `rand`'s StdRng (ChaCha12); nothing in this workspace depends on
//! the specific values, only on determinism and range bounds.

/// Types that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The random-value interface: a raw `u64` source plus range sampling.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from a half-open range `lo..hi` (`lo < hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Half-open ranges that can be sampled by an [`Rng`]. The element type is a
/// trait parameter (as in upstream `rand`) so literal types infer from the
/// call site.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),+ $(,)?) => {
        $(impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = rng.next_u64() % span;
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        })+
    };
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

macro_rules! impl_float_range {
    ($($t:ty, $bits:expr, $mantissa:expr);+ $(;)?) => {
        $(impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "gen_range requires start < end");
                // A uniform fraction in [0, 1) from the top mantissa bits.
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                let v = self.start + unit * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if v >= self.end { <$t>::next_down(self.end) } else { v }
            }
        })+
    };
}

impl_float_range!(f32, 32, 24; f64, 64, 53);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ behind the `StdRng`
    /// name. Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn float_range_is_half_open() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn int_range_covers_bounds() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = r.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
