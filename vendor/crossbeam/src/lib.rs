//! Offline shim reproducing the subset of `crossbeam` 0.8 used by this
//! workspace: multi-producer multi-consumer channels with bounded capacity,
//! implemented over `std::sync::{Mutex, Condvar}`.
//!
//! Semantics mirror `crossbeam-channel`:
//!
//! * senders and receivers are cloneable handles;
//! * a channel disconnects when *all* handles on one side drop;
//! * `recv` on an empty disconnected channel fails, but drains buffered
//!   messages first;
//! * `try_send` on a full bounded channel fails immediately with the value.
//!
//! Rendezvous (capacity 0) channels are not supported by the shim; a bounded
//! capacity of 0 is treated as 1.

pub mod channel;
pub mod thread;
