//! MPMC channels with the `crossbeam_channel` API shape.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    /// `Some(cap)` bounds the queue; `None` is unbounded.
    cap: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Create a channel holding at most `cap` in-flight messages (`cap == 0` is
/// treated as 1; the shim has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

/// Create a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&chan)), Receiver(chan))
}

/// Sending half; clone for more producers.
pub struct Sender<T>(Arc<Chan<T>>);

/// Receiving half; clone for more consumers.
pub struct Receiver<T>(Arc<Chan<T>>);

impl<T> Sender<T> {
    /// Block until the message is enqueued, or fail if all receivers left.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.0.lock();
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.0.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .0
                        .not_full
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue without blocking; fail when full or disconnected.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.0.lock();
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.0.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.0.lock().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives; fail once empty *and* disconnected.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.0.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .0
                .not_empty
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// As [`Receiver::recv`] with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.0.lock();
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .0
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = g;
        }
    }

    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.0.lock();
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of buffered messages.
    pub fn len(&self) -> usize {
        self.0.lock().queue.len()
    }

    /// Whether the buffer is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.0.lock().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.0.not_full.notify_all();
        }
    }
}

/// All receivers disconnected; the unsent value is returned.
pub struct SendError<T>(pub T);

/// Reasons [`Sender::try_send`] fails; the unsent value is returned.
pub enum TrySendError<T> {
    /// The bounded buffer is at capacity.
    Full(T),
    /// All receivers disconnected.
    Disconnected(T),
}

/// All senders disconnected and the buffer is drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Reasons [`Receiver::recv_timeout`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the timeout.
    Timeout,
    /// All senders disconnected and the buffer is drained.
    Disconnected,
}

/// Reasons [`Receiver::try_recv`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The buffer is currently empty.
    Empty,
    /// All senders disconnected and the buffer is drained.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> Error for SendError<T> {}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("sending on a full channel"),
            TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
        }
    }
}

impl<T> Error for TrySendError<T> {}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

impl Error for RecvError {}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl Error for RecvTimeoutError {}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty, disconnected channel")
            }
        }
    }
}

impl Error for TryRecvError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn bounded_try_send_fills_up() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
    }

    #[test]
    fn recv_drains_after_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = bounded::<i32>(4);
        drop(rx);
        assert!(tx.send(1).is_err());
        assert!(matches!(tx.try_send(2), Err(TrySendError::Disconnected(2))));
    }

    #[test]
    fn recv_timeout_times_out() {
        let (_tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn mpmc_sums_across_threads() {
        let (tx, rx) = bounded(16);
        let producers: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 4 * (0..100u64).sum::<u64>());
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || tx.send(2).unwrap());
        thread::sleep(Duration::from_millis(5));
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
    }
}
