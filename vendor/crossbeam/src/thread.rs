//! Scoped threads with the `crossbeam::thread` API shape, over
//! `std::thread::scope` (std has provided structured scoped threads since
//! 1.63, so the shim is a thin adapter).

use std::any::Any;

/// Error payload of a panicked scoped thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope in which borrowed-data threads can be spawned.
pub struct Scope<'scope, 'env>(&'scope std::thread::Scope<'scope, 'env>)
where
    'env: 'scope;

/// Handle joining one scoped thread.
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a thread that may borrow from the enclosing scope. As in
    /// `crossbeam`, the closure receives the scope (for nested spawns).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.0;
        ScopedJoinHandle(self.0.spawn(move || f(&Scope(inner))))
    }
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Wait for the thread; `Err` carries its panic payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.0.join()
    }
}

/// Run `f` with a scope; all threads it spawned are joined before returning.
/// The shim requires every spawned thread to be joined explicitly (as the
/// workspace does); it does not collect panics of unjoined threads into the
/// result the way upstream does.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope(s))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn join_surfaces_panics() {
        let caught = scope(|s| s.spawn(|_| panic!("boom")).join().is_err()).unwrap();
        assert!(caught);
    }
}
