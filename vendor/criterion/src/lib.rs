//! Offline shim reproducing the subset of the `criterion` 0.5 API used by
//! this workspace: a plain wall-clock harness that runs each benchmark a
//! configurable number of times and prints mean/min timings, without the
//! statistical machinery, plotting, or CLI of upstream.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark registry/driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Run a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.0));
        self
    }

    /// End the group (upstream flushes reports here; the shim prints as it
    /// goes, so this only consumes the group).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identify by parameter value only.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId(p.to_string())
    }

    /// Identify by function name and parameter value.
    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{p}"))
    }
}

/// Passed to benchmark closures; measures the routine under [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(sample_size: usize) -> Bencher {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Measure the routine `sample_size` times (after 2 warmup runs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().copied().unwrap_or_default();
        println!(
            "{label:<48} mean {:>10.1?}  min {:>10.1?}  ({} samples)",
            mean,
            min,
            self.samples.len()
        );
    }
}

/// Collect benchmark functions into one named runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(b.samples.len(), 5);
        // 2 warmups + 5 samples.
        assert_eq!(count, 7);
    }

    #[test]
    fn group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter("p"), &41, |b, &x| {
            b.iter(|| x + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
