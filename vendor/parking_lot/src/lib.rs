//! Offline shim reproducing the subset of the `parking_lot` 0.12 API used by
//! this workspace, implemented over `std::sync`.
//!
//! Differences from upstream that matter here:
//!
//! * guards are thin wrappers over the `std` guards (no fairness, no
//!   `lock_api` generics);
//! * poisoning is swallowed — like real `parking_lot`, a panic while holding
//!   a lock does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with the `parking_lot::Mutex` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]; unlocks on drop.
///
/// Holds an `Option` so [`Condvar::wait`] can temporarily surrender the
/// underlying `std` guard; it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create an unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Acquire the lock if free, else `None`.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn inner(&self) -> &std::sync::MutexGuard<'a, T> {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }

    fn inner_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

/// A reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create an unlocked lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquire exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Whether a [`Condvar`] wait returned because the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with the `parking_lot::Condvar` API (works with this
/// module's [`MutexGuard`], no mutex registered at construction).
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's lock and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// As [`Condvar::wait`] with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => p.into_inner(),
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
