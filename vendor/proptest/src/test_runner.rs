//! Test-runner configuration (`ProptestConfig`).

/// Controls how many cases each property runs. Mirrors the upstream field
/// names this workspace uses; knobs other than `cases` are accepted but
/// inert in the shim (there is no shrinking phase to bound).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of deterministic cases to run per property.
    pub cases: u32,
    /// Upper bound on shrink iterations (inert: the shim never shrinks).
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 256,
            max_shrink_iters: 1024,
        }
    }
}
