//! The [`Strategy`] trait and its combinators.

use std::sync::Arc;

use crate::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value from the deterministic random source.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build recursive values: `f` receives the strategy for the previous
    /// depth level and returns the strategy one level deeper; `self` is the
    /// leaf. `desired_size` and `expected_branch_size` are accepted for API
    /// compatibility but unused (no size-driven termination is needed when
    /// depth is bounded up front).
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable [`Strategy`].
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice among strategies of one value type (see `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),+ $(,)?) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be nonempty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        })+
    };
}

impl_int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

macro_rules! impl_float_strategy {
    ($($t:ty, $mantissa:expr);+ $(;)?) => {
        $(impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range must be nonempty");
                let unit = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / (1u64 << $mantissa) as $t;
                let v = self.start + unit * (self.end - self.start);
                if v >= self.end { <$t>::next_down(self.end) } else { v }
            }
        })+
    };
}

impl_float_strategy!(f32, 24; f64, 53);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic(7, 0)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (2usize..9).generate(&mut r);
            assert!((2..9).contains(&v));
            let f = (-1.0f32..1.0).generate(&mut r);
            assert!((-1.0..1.0).contains(&f));
            let i = (-5i8..-1).generate(&mut r);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(3usize).prop_map(|v| v * 2);
        assert_eq!(s.generate(&mut r), 6);
    }

    #[test]
    fn union_respects_zero_weight_arm_exclusion() {
        let mut r = rng();
        let s = Union::new(vec![(1, Just(1u8).boxed()), (0, Just(2u8).boxed())]);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r), 1);
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + depth(c),
            }
        }
        let s = Just(())
            .prop_map(|()| Tree::Leaf)
            .prop_recursive(4, 8, 1, |inner| inner.prop_map(|t| Tree::Node(Box::new(t))));
        let mut r = rng();
        for _ in 0..20 {
            assert!(depth(&s.generate(&mut r)) <= 4);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c) = (0usize..4, Just("x"), -2i32..2).generate(&mut r);
        assert!(a < 4);
        assert_eq!(b, "x");
        assert!((-2..2).contains(&c));
    }
}
