//! `any::<T>()` support for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (`any::<bool>()`, …).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniform strategy over all values of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),+ $(,)?) => {
        $(
            impl Strategy for AnyPrimitive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrimitive<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )+
    };
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_produces_both_values() {
        let s = any::<bool>();
        let mut rng = TestRng::deterministic(2, 0);
        let draws: Vec<bool> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
