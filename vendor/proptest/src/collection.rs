//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy producing `Vec`s whose length is drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Generate vectors of `element` values with a length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec length range must be nonempty");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn length_stays_in_range() {
        let s = vec(Just(1u8), 2..6);
        let mut rng = TestRng::deterministic(1, 0);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 1));
        }
    }
}
