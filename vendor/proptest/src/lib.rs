//! Offline shim reproducing the subset of the `proptest` 1.x API used by this
//! workspace: strategies, combinators, the `proptest!` macro family, and
//! deterministic case generation.
//!
//! Differences from upstream that matter here:
//!
//! * **no shrinking** — a failing case reports its deterministic case index
//!   (re-runnable, since generation is a pure function of test name + index)
//!   instead of a minimized input;
//! * `*.proptest-regressions` files are ignored;
//! * config knobs other than `cases` are accepted but inert.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod arbitrary;

/// Deterministic per-case random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator whose stream is a pure function of `(name_seed, case)`.
    pub fn deterministic(name_seed: u64, case: u64) -> TestRng {
        TestRng(name_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D)
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// FNV-1a hash used to derive a per-test seed from its name.
pub fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// What `use proptest::prelude::*` brings in, mirroring upstream.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop` module path (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests.
///
/// Accepts an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each generated
/// test runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let name_seed =
                    $crate::fnv(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..(config.cases as u64) {
                    let mut __proptest_rng = $crate::TestRng::deterministic(name_seed, case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __proptest_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed on case {case}/{}: {message}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the enclosing property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the enclosing property case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r,
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), l, r,
                    ));
                }
            }
        }
    };
}

/// Fail the enclosing property case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                    ));
                }
            }
        }
    };
}

/// Pick among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
