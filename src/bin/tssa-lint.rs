//! `tssa-lint`: static analysis CLI for imperative tensor DSL programs.
//!
//! ```text
//! tssa-lint rules                              # list rules and defaults
//! tssa-lint lint FILE... [--deny R] [--allow R] [--warn R]
//! tssa-lint workloads                          # lint + purity-certify the paper workloads
//! tssa-lint shapes                             # shape-polymorphism certificates for the workloads
//! tssa-lint fuzz [--seeds N] [--start K]       # differential fuzz of the full pipeline
//! ```
//!
//! Exit status is 1 when any Deny-level diagnostic fires, a workload's
//! compiled graph fails purity or shape certification, or any fuzz seed
//! diverges.

use std::process::ExitCode;

use tensorssa::backend::RtValue;
use tensorssa::ir::Graph;
use tensorssa::lint::{certify_pure, certify_shapes, check_effects, fuzz, Linter, Severity};
use tensorssa::pipelines::{Pipeline, TensorSsa};
use tensorssa::serve::{signature_of, ClassSignature, PipelineKind};
use tensorssa::workloads::all_workloads;

const USAGE: &str = "usage: tssa-lint <rules|lint|workloads|shapes|fuzz> [options]

  rules                                list lint rules with default severities
  lint FILE... [--deny R] [--allow R]  lint DSL source files (exit 1 on deny)
  workloads                            lint the paper workloads and certify the
                                       TensorSSA pipeline output mutation-free
  shapes                               certify shape polymorphism of each
                                       workload's compiled plan (exit 1 when
                                       any output dim is data-dependent)
  fuzz [--seeds N] [--start K]         differential fuzz: N random programs
                                       (default 200) through the full pipeline
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "rules" => cmd_rules(),
        "lint" => cmd_lint(rest),
        "workloads" => cmd_workloads(),
        "shapes" => cmd_shapes(),
        "fuzz" => cmd_fuzz(rest),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("tssa-lint: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_rules() -> Result<bool, String> {
    let linter = Linter::new();
    for (name, severity, describe) in linter.rules() {
        println!("{severity:<5} {name:<32} {describe}");
    }
    println!(
        "deny {:<32} effect checker judgments (always deny)",
        "effect"
    );
    Ok(true)
}

fn cmd_lint(rest: &[String]) -> Result<bool, String> {
    let mut linter = Linter::new();
    let mut files: Vec<String> = Vec::new();
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--deny" | "--allow" | "--warn" => {
                let rule = iter
                    .next()
                    .ok_or_else(|| format!("{arg} needs a rule name"))?;
                let severity = Severity::parse(&arg[2..]).unwrap();
                if !linter.set_severity(rule, severity) {
                    return Err(format!("unknown rule `{rule}` (see `tssa-lint rules`)"));
                }
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`\n{USAGE}"));
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return Err(format!("no input files\n{USAGE}"));
    }
    let mut denies = 0usize;
    let mut warns = 0usize;
    for path in &files {
        let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let graph = tensorssa::frontend::compile(&source).map_err(|e| format!("{path}: {e}"))?;
        for d in linter.lint(&graph) {
            println!("{path}: {d}");
            match d.severity {
                Severity::Deny => denies += 1,
                _ => warns += 1,
            }
        }
    }
    println!(
        "{} file(s) linted: {warns} warning(s), {denies} denial(s)",
        files.len()
    );
    Ok(denies == 0)
}

fn cmd_workloads() -> Result<bool, String> {
    let linter = Linter::new();
    let mut failed = false;
    for w in all_workloads() {
        let g = w.graph().map_err(|e| format!("{}: {e}", w.name))?;
        let report = check_effects(&g);
        let diags = linter.lint(&g);
        let denies = diags
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count();
        if denies > 0 {
            failed = true;
            for d in diags.iter().filter(|d| d.severity == Severity::Deny) {
                println!("{}: {d}", w.name);
            }
        }
        let cp = TensorSsa::default().compile(&g);
        let purity = certify_pure(&cp.graph);
        match &purity {
            Ok(()) => println!(
                "{:<10} {:3} imperative effect(s), {:2} lint warning(s) -> compiled graph PURE",
                w.name,
                report.violations.len(),
                diags.len() - denies,
            ),
            Err(violations) => {
                failed = true;
                println!(
                    "{:<10} compiled graph NOT pure ({} violation(s)):",
                    w.name,
                    violations.len()
                );
                for v in violations {
                    println!("    {v}");
                }
            }
        }
    }
    Ok(!failed)
}

fn cmd_shapes() -> Result<bool, String> {
    let mut failed = false;
    for w in all_workloads() {
        let g = w.graph().map_err(|e| format!("{}: {e}", w.name))?;
        let cp = TensorSsa::default().compile(&g);
        // The ranks the plan is specialized to: defaults for batch/seq, the
        // same signature the serving layer certifies against on load.
        let ranks: Vec<Option<usize>> = w
            .inputs(0, 0, 1)
            .iter()
            .map(|v| match v {
                RtValue::Tensor(t) => Some(t.rank()),
                _ => None,
            })
            .collect();
        let sig = certify_shapes(&cp.graph, &ranks);
        let data_dependent = sig.data_dependent_output_dims();
        println!(
            "{:<10} {} polymorphic, {} specialized input dim(s){}",
            w.name,
            sig.polymorphic_dims(),
            sig.specialized_dims(),
            if data_dependent > 0 {
                format!(" -- {data_dependent} DATA-DEPENDENT output dim(s)")
            } else {
                String::new()
            }
        );
        print!("{}", sig.render());
        // The skeleton the serving cache keys its shape class on: `*` dims
        // admit any extent, pinned dims split classes. One skeleton = one
        // cached plan serving every admitted concrete shape.
        let args = signature_of(&w.inputs(0, 0, 1));
        match ClassSignature::derive(w.source, PipelineKind::TensorSsa, &args, &sig) {
            Some(class) => println!(
                "  class {:016x}: {}",
                class.key.class_hash(),
                class.key.render()
            ),
            None => println!("  class: ineligible (example not admitted)"),
        }
        if data_dependent > 0 {
            failed = true;
        }
    }
    Ok(!failed)
}

fn cmd_fuzz(rest: &[String]) -> Result<bool, String> {
    let mut seeds = 200u64;
    let mut start = 0u64;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let parse = |v: Option<&String>, what: &str| -> Result<u64, String> {
            v.ok_or_else(|| format!("{what} needs a number"))?
                .parse::<u64>()
                .map_err(|e| format!("{what}: {e}"))
        };
        match arg.as_str() {
            "--seeds" => seeds = parse(iter.next(), "--seeds")?,
            "--start" => start = parse(iter.next(), "--start")?,
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let compile = |g: &Graph| -> Result<(Graph, tensorssa::backend::ExecConfig), String> {
        let cp = TensorSsa::default().compile(g);
        Ok((cp.graph, cp.exec_config))
    };
    let mut failures = 0usize;
    for seed in start..start + seeds {
        if let Err(e) = fuzz::diff_case_compiled(seed, &compile) {
            failures += 1;
            eprintln!("{e}");
        }
    }
    println!("fuzz: {seeds} seed(s) starting at {start}, {failures} divergence(s)");
    Ok(failures == 0)
}
