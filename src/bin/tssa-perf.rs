//! `tssa-perf`: the per-pass performance gate for CI.
//!
//! ```text
//! tssa-perf bench [--reps N] [--out PATH]       # measure and write a report
//! tssa-perf check [--reps N] [--baseline PATH] [--budgets PATH]
//! tssa-perf selftest-negative                   # prove the gate can fail
//! ```
//!
//! `bench` replays the 8 paper workloads through the full TensorSSA
//! pipeline (`compile_traced`), takes the median-of-N wall time of every
//! pass plus the output graph's live node count, and writes the aggregate
//! as JSON (the checked-in baseline lives at `perf/BENCH_5.json`).
//!
//! `check` re-measures and compares against the baseline under the budgets
//! in `perf/budgets.toml`. A pass regresses when its median wall time
//! exceeds `max(time_floor_us, baseline × max_time_ratio)` — the ratio
//! catches real slowdowns on passes large enough to time reliably, and the
//! absolute floor keeps micro-passes from tripping the gate on scheduler
//! noise. Node counts are deterministic, so they must match the baseline
//! within `max_node_delta` (default exactly). A changed pass roster or a
//! baseline recorded under a different build profile is a hard error: the
//! baseline must be regenerated, not waived.
//!
//! `alerts` evaluates the rules in `perf/alerts.toml` against a Prometheus
//! text exposition (a `GET /metrics` scrape from `tssa-serve-bin`). Each
//! rule compares one metric's summed value against a threshold; a metric
//! absent from the scrape never fires (Prometheus "no data" semantics).
//! Unparseable exposition lines are skipped, so a raw scrape works as-is.
//!
//! `selftest-negative` doctors a baseline in memory and exits successfully
//! only if `check`'s comparison logic flags it — CI runs it so a silently
//! disabled gate fails the build. It also doctors an exposition with
//! dropped spans and fails unless the `spans_dropped` alert rule fires.

use std::process::ExitCode;
use std::time::Duration;

use tensorssa::obs::json::{self, JsonValue};
use tensorssa::pipelines::{CompiledProgram, Pipeline, TensorSsa};
use tensorssa::workloads::all_workloads;

const USAGE: &str = "usage: tssa-perf <bench|check|alerts|selftest-negative> [options]

  bench [--reps N] [--out PATH]       measure the paper workloads through the
                                      TensorSSA pipeline (median of N reps,
                                      default 5) and write the report JSON
                                      (default perf/BENCH_5.json)
  check [--reps N] [--baseline PATH] [--budgets PATH]
                                      re-measure and fail (exit 1) when any
                                      pass breaches its budget vs baseline
  alerts --exposition PATH [--rules PATH]
                                      evaluate alert rules (default
                                      perf/alerts.toml) against a Prometheus
                                      text scrape; exit 1 if any rule fires
  selftest-negative                   verify the gate detects a doctored
                                      baseline and that alert rules can
                                      fire (exit 1 if either fails)
";

const DEFAULT_BASELINE: &str = "perf/BENCH_5.json";
const DEFAULT_BUDGETS: &str = "perf/budgets.toml";
const DEFAULT_ALERTS: &str = "perf/alerts.toml";
const DEFAULT_REPS: usize = 5;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "bench" => cmd_bench(rest),
        "check" => cmd_check(rest),
        "alerts" => cmd_alerts(rest),
        "selftest-negative" => cmd_selftest_negative(rest),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(true)
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("tssa-perf: {msg}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// One pass's aggregate across the reps of one workload.
#[derive(Debug, Clone, PartialEq)]
struct PassStat {
    name: String,
    median_wall_us: u64,
    rewrites: u64,
}

/// One workload's measurement.
#[derive(Debug, Clone, PartialEq)]
struct WorkloadStat {
    name: String,
    nodes: u64,
    passes: Vec<PassStat>,
}

/// The full report (what BENCH_5.json serializes).
#[derive(Debug, Clone, PartialEq)]
struct Report {
    profile: String,
    pipeline: String,
    reps: usize,
    workloads: Vec<WorkloadStat>,
}

fn build_profile() -> &'static str {
    // Debug builds run the lint pass sanitizer inside every pass, so their
    // timings are not comparable with release timings; the profile is
    // recorded in the report and enforced at check time.
    if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    }
}

fn measure(reps: usize) -> Result<Report, String> {
    if reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let pipeline = TensorSsa::default();
    let mut workloads = Vec::new();
    for w in all_workloads() {
        let graph = w.graph().map_err(|e| format!("{}: {e}", w.name))?;
        let runs: Vec<CompiledProgram> = (0..reps).map(|_| pipeline.compile(&graph)).collect();
        let first = &runs[0];
        let roster: Vec<&'static str> = first.passes.iter().map(|p| p.name).collect();
        for r in &runs[1..] {
            let names: Vec<&'static str> = r.passes.iter().map(|p| p.name).collect();
            if names != roster {
                return Err(format!("{}: pass roster varies across reps", w.name));
            }
            if r.graph.live_node_count() != first.graph.live_node_count() {
                return Err(format!("{}: node count varies across reps", w.name));
            }
        }
        let passes = roster
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let mut walls: Vec<Duration> = runs.iter().map(|r| r.passes[i].duration).collect();
                walls.sort();
                PassStat {
                    name: (*name).to_string(),
                    median_wall_us: walls[walls.len() / 2].as_micros() as u64,
                    rewrites: first.passes[i].rewrites as u64,
                }
            })
            .collect();
        workloads.push(WorkloadStat {
            name: w.name.to_string(),
            nodes: first.graph.live_node_count() as u64,
            passes,
        });
    }
    Ok(Report {
        profile: build_profile().to_string(),
        pipeline: pipeline.name().to_string(),
        reps,
        workloads,
    })
}

// ---------------------------------------------------------------------------
// Report JSON
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Report {
    fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"profile\": \"{}\",\n",
            json_escape(&self.profile)
        ));
        out.push_str(&format!(
            "  \"pipeline\": \"{}\",\n",
            json_escape(&self.pipeline)
        ));
        out.push_str(&format!("  \"reps\": {},\n", self.reps));
        out.push_str("  \"workloads\": [\n");
        for (wi, w) in self.workloads.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"name\": \"{}\",\n", json_escape(&w.name)));
            out.push_str(&format!("      \"nodes\": {},\n", w.nodes));
            out.push_str("      \"passes\": [\n");
            for (pi, p) in w.passes.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"pass\": \"{}\", \"median_wall_us\": {}, \"rewrites\": {}}}{}\n",
                    json_escape(&p.name),
                    p.median_wall_us,
                    p.rewrites,
                    if pi + 1 < w.passes.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]\n");
            out.push_str(&format!(
                "    }}{}\n",
                if wi + 1 < self.workloads.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    fn from_json(text: &str) -> Result<Report, String> {
        let value = json::parse(text).map_err(|e| format!("baseline: {e}"))?;
        let str_field = |v: &JsonValue, key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("baseline: missing string field `{key}`"))
        };
        let num_field = |v: &JsonValue, key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .map(|n| n as u64)
                .ok_or_else(|| format!("baseline: missing numeric field `{key}`"))
        };
        let mut workloads = Vec::new();
        for w in value
            .get("workloads")
            .and_then(JsonValue::as_array)
            .ok_or("baseline: missing `workloads` array")?
        {
            let mut passes = Vec::new();
            for p in w
                .get("passes")
                .and_then(JsonValue::as_array)
                .ok_or("baseline: missing `passes` array")?
            {
                passes.push(PassStat {
                    name: str_field(p, "pass")?,
                    median_wall_us: num_field(p, "median_wall_us")?,
                    rewrites: num_field(p, "rewrites")?,
                });
            }
            workloads.push(WorkloadStat {
                name: str_field(w, "name")?,
                nodes: num_field(w, "nodes")?,
                passes,
            });
        }
        Ok(Report {
            profile: str_field(&value, "profile")?,
            pipeline: str_field(&value, "pipeline")?,
            reps: num_field(&value, "reps")? as usize,
            workloads,
        })
    }
}

// ---------------------------------------------------------------------------
// Budgets (minimal TOML subset)
// ---------------------------------------------------------------------------

/// Budget knobs for one pass (or the default).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Budget {
    /// Breach when `current > max(time_floor_us, baseline * max_time_ratio)`.
    max_time_ratio: f64,
    /// Absolute floor below which timing noise never breaches.
    time_floor_us: u64,
    /// Allowed absolute difference in output node count.
    max_node_delta: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_time_ratio: 5.0,
            time_floor_us: 5_000,
            max_node_delta: 0,
        }
    }
}

/// Parsed `perf/budgets.toml`: a default budget plus per-pass overrides.
#[derive(Debug, Clone, Default, PartialEq)]
struct Budgets {
    default: Budget,
    per_pass: Vec<(String, Budget)>,
}

impl Budgets {
    fn for_pass(&self, pass: &str) -> Budget {
        self.per_pass
            .iter()
            .find(|(name, _)| name == pass)
            .map_or(self.default, |&(_, b)| b)
    }

    /// Parse the TOML subset the budgets file uses: `[default]` and
    /// `[pass.<name>]` section headers (bare or double-quoted names),
    /// `key = value` pairs with integer or float values, `#` comments.
    fn parse(text: &str) -> Result<Budgets, String> {
        let mut budgets = Budgets::default();
        // `None` until the first section header; keys before one are errors.
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.split_once('#') {
                Some((before, _)) => before.trim(),
                None => raw.trim(),
            };
            if line.is_empty() {
                continue;
            }
            let at = |msg: &str| format!("budgets line {}: {msg}", lineno + 1);
            if let Some(header) = line.strip_prefix('[') {
                let header = header
                    .strip_suffix(']')
                    .ok_or_else(|| at("unterminated section header"))?
                    .trim();
                let name = if header == "default" {
                    "default".to_string()
                } else if let Some(pass) = header.strip_prefix("pass.") {
                    let pass = pass.trim();
                    let pass = pass
                        .strip_prefix('"')
                        .and_then(|p| p.strip_suffix('"'))
                        .unwrap_or(pass);
                    if pass.is_empty() {
                        return Err(at("empty pass name"));
                    }
                    budgets.per_pass.push((pass.to_string(), budgets.default));
                    format!("pass.{pass}")
                } else {
                    return Err(at(&format!(
                        "unknown section `[{header}]` (expected [default] or [pass.<name>])"
                    )));
                };
                section = Some(name);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| at("expected `key = value`"))?;
            let (key, value) = (key.trim(), value.trim());
            let target = match section.as_deref() {
                Some("default") => &mut budgets.default,
                Some(_) => &mut budgets.per_pass.last_mut().expect("section pushed").1,
                None => return Err(at("key before any section header")),
            };
            match key {
                "max_time_ratio" => {
                    target.max_time_ratio = value
                        .parse::<f64>()
                        .map_err(|_| at(&format!("bad float `{value}`")))?;
                }
                "time_floor_us" => {
                    target.time_floor_us = value
                        .parse::<u64>()
                        .map_err(|_| at(&format!("bad integer `{value}`")))?;
                }
                "max_node_delta" => {
                    target.max_node_delta = value
                        .parse::<u64>()
                        .map_err(|_| at(&format!("bad integer `{value}`")))?;
                }
                other => return Err(at(&format!("unknown key `{other}`"))),
            }
        }
        // Defaults set after a `[pass.*]` section do not retroactively apply;
        // require [default] first so the file reads the way it behaves.
        if let Some(pos) = text.find("[default]") {
            if text[..pos].contains("[pass.") {
                return Err("budgets: [default] must precede [pass.*] sections".into());
            }
        }
        Ok(budgets)
    }
}

// ---------------------------------------------------------------------------
// Alert rules (same TOML subset as budgets)
// ---------------------------------------------------------------------------

/// Comparison operator for an alert rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AlertOp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl AlertOp {
    fn parse(s: &str) -> Result<AlertOp, String> {
        match s {
            "gt" => Ok(AlertOp::Gt),
            "ge" => Ok(AlertOp::Ge),
            "lt" => Ok(AlertOp::Lt),
            "le" => Ok(AlertOp::Le),
            other => Err(format!("unknown op `{other}` (expected gt|ge|lt|le)")),
        }
    }

    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
        }
    }

    fn symbol(self) -> &'static str {
        match self {
            AlertOp::Gt => ">",
            AlertOp::Ge => ">=",
            AlertOp::Lt => "<",
            AlertOp::Le => "<=",
        }
    }
}

/// One rule from `perf/alerts.toml`.
#[derive(Debug, Clone, PartialEq)]
struct AlertRule {
    name: String,
    metric: String,
    op: AlertOp,
    threshold: f64,
    severity: String,
    summary: String,
}

/// Parse `[alert.<name>]` sections in the budgets TOML subset. Every rule
/// must name a metric; op defaults to `gt`, threshold to 0.
fn parse_alert_rules(text: &str) -> Result<Vec<AlertRule>, String> {
    let mut rules: Vec<AlertRule> = Vec::new();
    let mut in_section = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.split_once('#') {
            Some((before, _)) => before.trim(),
            None => raw.trim(),
        };
        if line.is_empty() {
            continue;
        }
        let at = |msg: &str| format!("alerts line {}: {msg}", lineno + 1);
        if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| at("unterminated section header"))?
                .trim();
            let name = header
                .strip_prefix("alert.")
                .ok_or_else(|| {
                    at(&format!(
                        "unknown section `[{header}]` (expected [alert.<name>])"
                    ))
                })?
                .trim();
            let name = name
                .strip_prefix('"')
                .and_then(|n| n.strip_suffix('"'))
                .unwrap_or(name);
            if name.is_empty() {
                return Err(at("empty alert name"));
            }
            rules.push(AlertRule {
                name: name.to_string(),
                metric: String::new(),
                op: AlertOp::Gt,
                threshold: 0.0,
                severity: "warn".into(),
                summary: String::new(),
            });
            in_section = true;
            continue;
        }
        if !in_section {
            return Err(at("key before any [alert.<name>] section"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| at("expected `key = value`"))?;
        let (key, value) = (key.trim(), value.trim());
        let unquote = |v: &str| -> String {
            v.strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .unwrap_or(v)
                .to_string()
        };
        let rule = rules.last_mut().expect("section pushed");
        match key {
            "metric" => rule.metric = unquote(value),
            "op" => rule.op = AlertOp::parse(&unquote(value)).map_err(|e| at(&e))?,
            "threshold" => {
                rule.threshold = value
                    .parse::<f64>()
                    .map_err(|_| at(&format!("bad number `{value}`")))?;
            }
            "severity" => rule.severity = unquote(value),
            "summary" => rule.summary = unquote(value),
            other => return Err(at(&format!("unknown key `{other}`"))),
        }
    }
    for rule in &rules {
        if rule.metric.is_empty() {
            return Err(format!("alert `{}` has no metric", rule.name));
        }
    }
    Ok(rules)
}

/// Sum every sample of every metric in a Prometheus text exposition,
/// keyed by metric name (label sets collapse into one total). Comment
/// lines and anything that doesn't parse as `name[{labels}] value` are
/// skipped, so a raw network scrape works without cleanup.
fn parse_exposition(text: &str) -> std::collections::HashMap<String, f64> {
    let mut sums: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for raw in text.lines() {
        let mut line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // Strip an OpenMetrics exemplar suffix (` # {trace_id="..."} v`)
        // so the last whitespace token is the sample value again.
        if let Some(cut) = line.find(" # ") {
            line = line[..cut].trim_end();
        }
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .unwrap_or(line.len());
        let name = &line[..name_end];
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            continue;
        }
        let Some(value_tok) = line.rsplit(|c: char| c.is_whitespace()).next() else {
            continue;
        };
        let Ok(value) = value_tok.parse::<f64>() else {
            continue;
        };
        if value.is_finite() {
            *sums.entry(name.to_string()).or_insert(0.0) += value;
        }
    }
    sums
}

/// The result of evaluating one rule against one exposition.
#[derive(Debug, Clone, PartialEq)]
struct AlertOutcome {
    rule: AlertRule,
    /// `None` when the metric was absent from the exposition (no data).
    value: Option<f64>,
    firing: bool,
}

fn evaluate_alerts(
    rules: &[AlertRule],
    samples: &std::collections::HashMap<String, f64>,
) -> Vec<AlertOutcome> {
    rules
        .iter()
        .map(|rule| {
            let value = samples.get(&rule.metric).copied();
            // Absent metric → no data → never fires, mirroring Prometheus.
            let firing = value.is_some_and(|v| rule.op.holds(v, rule.threshold));
            AlertOutcome {
                rule: rule.clone(),
                value,
                firing,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

/// One budget breach (or structural mismatch) found by `check`.
#[derive(Debug, Clone, PartialEq)]
struct Breach {
    workload: String,
    what: String,
}

impl std::fmt::Display for Breach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.workload, self.what)
    }
}

fn compare(current: &Report, baseline: &Report, budgets: &Budgets) -> Result<Vec<Breach>, String> {
    if current.profile != baseline.profile {
        return Err(format!(
            "build profile mismatch: baseline is `{}`, this run is `{}` — \
             regenerate the baseline with `cargo run --release --bin tssa-perf -- bench`",
            baseline.profile, current.profile
        ));
    }
    let mut breaches = Vec::new();
    for base_w in &baseline.workloads {
        let Some(cur_w) = current.workloads.iter().find(|w| w.name == base_w.name) else {
            breaches.push(Breach {
                workload: base_w.name.clone(),
                what: "workload missing from this run".into(),
            });
            continue;
        };
        let node_budget = budgets.default;
        let delta = cur_w.nodes.abs_diff(base_w.nodes);
        if delta > node_budget.max_node_delta {
            breaches.push(Breach {
                workload: cur_w.name.clone(),
                what: format!(
                    "output graph has {} nodes, baseline {} (allowed delta {})",
                    cur_w.nodes, base_w.nodes, node_budget.max_node_delta
                ),
            });
        }
        let base_roster: Vec<&str> = base_w.passes.iter().map(|p| p.name.as_str()).collect();
        let cur_roster: Vec<&str> = cur_w.passes.iter().map(|p| p.name.as_str()).collect();
        if base_roster != cur_roster {
            breaches.push(Breach {
                workload: cur_w.name.clone(),
                what: format!(
                    "pass roster changed (baseline {base_roster:?}, now {cur_roster:?}) — \
                     regenerate the baseline"
                ),
            });
            continue;
        }
        for (base_p, cur_p) in base_w.passes.iter().zip(&cur_w.passes) {
            let budget = budgets.for_pass(&base_p.name);
            let allowed = (base_p.median_wall_us as f64 * budget.max_time_ratio)
                .max(budget.time_floor_us as f64);
            if cur_p.median_wall_us as f64 > allowed {
                breaches.push(Breach {
                    workload: cur_w.name.clone(),
                    what: format!(
                        "pass:{} took {}µs, budget {}µs (baseline {}µs × {:.1}, floor {}µs)",
                        cur_p.name,
                        cur_p.median_wall_us,
                        allowed as u64,
                        base_p.median_wall_us,
                        budget.max_time_ratio,
                        budget.time_floor_us
                    ),
                });
            }
        }
    }
    for cur_w in &current.workloads {
        if !baseline.workloads.iter().any(|w| w.name == cur_w.name) {
            breaches.push(Breach {
                workload: cur_w.name.clone(),
                what: "workload not in baseline — regenerate the baseline".into(),
            });
        }
    }
    Ok(breaches)
}

// ---------------------------------------------------------------------------
// Commands
// ---------------------------------------------------------------------------

fn parse_reps(
    rest: &[String],
    out: Option<&mut String>,
    baseline: Option<&mut String>,
    budgets: Option<&mut String>,
) -> Result<usize, String> {
    let mut reps = DEFAULT_REPS;
    let mut out = out;
    let mut baseline = baseline;
    let mut budgets = budgets;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut take = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--reps" => {
                reps = take()?
                    .parse()
                    .map_err(|_| "--reps needs an integer".to_string())?;
            }
            "--out" if out.is_some() => **out.as_mut().unwrap() = take()?,
            "--baseline" if baseline.is_some() => **baseline.as_mut().unwrap() = take()?,
            "--budgets" if budgets.is_some() => **budgets.as_mut().unwrap() = take()?,
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    Ok(reps)
}

fn cmd_bench(rest: &[String]) -> Result<bool, String> {
    let mut out = DEFAULT_BASELINE.to_string();
    let reps = parse_reps(rest, Some(&mut out), None, None)?;
    let report = measure(reps)?;
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, report.to_json()).map_err(|e| format!("{out}: {e}"))?;
    let passes: usize = report.workloads.iter().map(|w| w.passes.len()).sum();
    println!(
        "tssa-perf: wrote {out} ({} workloads, {passes} pass timings, profile {}, median of {reps})",
        report.workloads.len(),
        report.profile
    );
    Ok(true)
}

fn cmd_check(rest: &[String]) -> Result<bool, String> {
    let mut baseline_path = DEFAULT_BASELINE.to_string();
    let mut budgets_path = DEFAULT_BUDGETS.to_string();
    let reps = parse_reps(
        rest,
        None,
        Some(&mut baseline_path),
        Some(&mut budgets_path),
    )?;
    let baseline_text =
        std::fs::read_to_string(&baseline_path).map_err(|e| format!("{baseline_path}: {e}"))?;
    let baseline = Report::from_json(&baseline_text)?;
    let budgets_text =
        std::fs::read_to_string(&budgets_path).map_err(|e| format!("{budgets_path}: {e}"))?;
    let budgets = Budgets::parse(&budgets_text)?;
    // The alert rules ride along in the same directory; catch syntax rot
    // here rather than at scrape time in CI.
    if std::path::Path::new(DEFAULT_ALERTS).exists() {
        let alerts_text = std::fs::read_to_string(DEFAULT_ALERTS)
            .map_err(|e| format!("{DEFAULT_ALERTS}: {e}"))?;
        parse_alert_rules(&alerts_text)?;
    }
    let current = measure(reps)?;
    let breaches = compare(&current, &baseline, &budgets)?;
    if breaches.is_empty() {
        let timings: usize = current.workloads.iter().map(|w| w.passes.len()).sum();
        println!(
            "tssa-perf: {} workloads, {timings} pass timings within budget vs {baseline_path}",
            current.workloads.len()
        );
        Ok(true)
    } else {
        eprintln!(
            "tssa-perf: {} budget breach(es) vs {baseline_path}:",
            breaches.len()
        );
        for b in &breaches {
            eprintln!("  {b}");
        }
        Ok(false)
    }
}

fn cmd_alerts(rest: &[String]) -> Result<bool, String> {
    let mut rules_path = DEFAULT_ALERTS.to_string();
    let mut exposition_path: Option<String> = None;
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        let mut take = || {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{arg} needs a value"))
        };
        match arg.as_str() {
            "--rules" => rules_path = take()?,
            "--exposition" => exposition_path = Some(take()?),
            other => return Err(format!("unknown option `{other}`\n{USAGE}")),
        }
    }
    let exposition_path = exposition_path.ok_or("alerts needs --exposition PATH")?;
    let rules_text =
        std::fs::read_to_string(&rules_path).map_err(|e| format!("{rules_path}: {e}"))?;
    let rules = parse_alert_rules(&rules_text)?;
    if rules.is_empty() {
        return Err(format!("{rules_path}: no alert rules defined"));
    }
    let exposition =
        std::fs::read_to_string(&exposition_path).map_err(|e| format!("{exposition_path}: {e}"))?;
    let samples = parse_exposition(&exposition);
    if samples.is_empty() {
        return Err(format!(
            "{exposition_path}: no parseable samples — is this a Prometheus text exposition?"
        ));
    }
    let outcomes = evaluate_alerts(&rules, &samples);
    let firing: Vec<&AlertOutcome> = outcomes.iter().filter(|o| o.firing).collect();
    for o in &outcomes {
        match o.value {
            Some(v) if o.firing => eprintln!(
                "tssa-perf: ALERT [{}] {}: {} = {v} {} {} — {}",
                o.rule.severity,
                o.rule.name,
                o.rule.metric,
                o.rule.op.symbol(),
                o.rule.threshold,
                o.rule.summary
            ),
            Some(v) => println!("tssa-perf: ok {}: {} = {v}", o.rule.name, o.rule.metric),
            None => println!(
                "tssa-perf: no data for {}: metric {} absent",
                o.rule.name, o.rule.metric
            ),
        }
    }
    if firing.is_empty() {
        println!(
            "tssa-perf: {} alert rule(s) evaluated against {exposition_path}, none firing",
            outcomes.len()
        );
        Ok(true)
    } else {
        eprintln!("tssa-perf: {} alert(s) firing", firing.len());
        Ok(false)
    }
}

fn cmd_selftest_negative(rest: &[String]) -> Result<bool, String> {
    if !rest.is_empty() {
        return Err(format!("selftest-negative takes no options\n{USAGE}"));
    }
    // One rep is enough: the doctored regressions are deterministic (node
    // counts) or unbounded (timing budget of zero), independent of noise.
    let current = measure(1)?;
    let budgets = Budgets::default();

    // Doctored baseline 1: every node count off by more than the allowed
    // delta. The gate must flag every workload.
    let mut doctored = current.clone();
    for w in &mut doctored.workloads {
        w.nodes += budgets.default.max_node_delta + 5;
    }
    let breaches = compare(&current, &doctored, &budgets)?;
    if breaches.len() != current.workloads.len() {
        eprintln!(
            "tssa-perf: selftest-negative FAILED: node-count doctoring produced {} breaches, \
             expected {}",
            breaches.len(),
            current.workloads.len()
        );
        return Ok(false);
    }

    // Doctored baseline 2: a zero-time baseline plus a zero-floor budget —
    // any measurable pass time must breach.
    let mut zeroed = current.clone();
    for w in &mut zeroed.workloads {
        for p in &mut w.passes {
            p.median_wall_us = 0;
        }
    }
    let strict = Budgets {
        default: Budget {
            max_time_ratio: 1.0,
            time_floor_us: 0,
            max_node_delta: 0,
        },
        per_pass: Vec::new(),
    };
    let measurable: usize = current
        .workloads
        .iter()
        .flat_map(|w| &w.passes)
        .filter(|p| p.median_wall_us > 0)
        .count();
    let breaches = compare(&current, &zeroed, &strict)?;
    if measurable > 0 && breaches.is_empty() {
        eprintln!(
            "tssa-perf: selftest-negative FAILED: zero-time baseline produced no breaches \
             across {measurable} measurable pass timings"
        );
        return Ok(false);
    }

    // And a profile mismatch must be a hard error, not a silent pass.
    let mut wrong_profile = current.clone();
    wrong_profile.profile = if current.profile == "release" {
        "debug".into()
    } else {
        "release".into()
    };
    if compare(&current, &wrong_profile, &budgets).is_ok() {
        eprintln!("tssa-perf: selftest-negative FAILED: profile mismatch not rejected");
        return Ok(false);
    }

    // Finally, the checked-in alert rules must be able to fire: doctor an
    // exposition with dropped spans and demand the spans_dropped rule
    // trips, and demand a clean exposition stays silent.
    let rules_text = std::fs::read_to_string(DEFAULT_ALERTS)
        .map_err(|e| format!("{DEFAULT_ALERTS}: {e} (selftest requires the alert rules)"))?;
    let rules = parse_alert_rules(&rules_text)?;
    let dropped_rule = rules
        .iter()
        .find(|r| r.metric == "tssa_obs_spans_dropped_total")
        .ok_or("selftest-negative: no alert rule covers tssa_obs_spans_dropped_total")?;
    let doctored_scrape = "\
# HELP tssa_obs_spans_dropped_total Spans dropped by the sink\n\
# TYPE tssa_obs_spans_dropped_total counter\n\
tssa_obs_spans_dropped_total 7\n\
tssa_obs_spans_written_total 120\n";
    let outcomes = evaluate_alerts(&rules, &parse_exposition(doctored_scrape));
    let fired = outcomes
        .iter()
        .any(|o| o.firing && o.rule.name == dropped_rule.name);
    if !fired {
        eprintln!(
            "tssa-perf: selftest-negative FAILED: 7 dropped spans did not fire `{}`",
            dropped_rule.name
        );
        return Ok(false);
    }
    let clean_scrape = "tssa_obs_spans_dropped_total 0\ntssa_obs_spans_written_total 120\n";
    let outcomes = evaluate_alerts(&rules, &parse_exposition(clean_scrape));
    if outcomes.iter().any(|o| o.firing) {
        eprintln!("tssa-perf: selftest-negative FAILED: a rule fires on a clean exposition");
        return Ok(false);
    }

    println!(
        "tssa-perf: selftest-negative passed — the gate detects doctored baselines \
         and the alert rules fire"
    );
    Ok(true)
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        Report {
            profile: "release".into(),
            pipeline: "TensorSSA".into(),
            reps: 5,
            workloads: vec![WorkloadStat {
                name: "yolov3".into(),
                nodes: 40,
                passes: vec![
                    PassStat {
                        name: "tensorssa-convert".into(),
                        median_wall_us: 120,
                        rewrites: 4,
                    },
                    PassStat {
                        name: "dce".into(),
                        median_wall_us: 30,
                        rewrites: 2,
                    },
                ],
            }],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report();
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn budgets_toml_subset_parses_defaults_and_overrides() {
        let text = r#"
# Per-pass perf budgets.
[default]
max_time_ratio = 4.5   # ratio vs baseline
time_floor_us = 3000
max_node_delta = 0

[pass.fuse-vertical]
max_time_ratio = 8.0

[pass."tensorssa-convert"]
time_floor_us = 9000
"#;
        let budgets = Budgets::parse(text).unwrap();
        assert_eq!(budgets.default.max_time_ratio, 4.5);
        assert_eq!(budgets.default.time_floor_us, 3000);
        let fuse = budgets.for_pass("fuse-vertical");
        assert_eq!(fuse.max_time_ratio, 8.0);
        assert_eq!(fuse.time_floor_us, 3000, "override inherits the default");
        let conv = budgets.for_pass("tensorssa-convert");
        assert_eq!(conv.time_floor_us, 9000);
        assert_eq!(budgets.for_pass("dce"), budgets.default);
    }

    #[test]
    fn budgets_rejects_malformed_input() {
        assert!(
            Budgets::parse("max_time_ratio = 2.0").is_err(),
            "key before section"
        );
        assert!(Budgets::parse("[mystery]\n").is_err(), "unknown section");
        assert!(
            Budgets::parse("[default]\nmystery = 1\n").is_err(),
            "unknown key"
        );
        assert!(
            Budgets::parse("[default]\nmax_time_ratio = fast\n").is_err(),
            "bad float"
        );
        assert!(
            Budgets::parse("[pass.dce]\ntime_floor_us = 1\n[default]\ntime_floor_us = 2\n")
                .is_err(),
            "[default] after [pass.*]"
        );
    }

    #[test]
    fn compare_flags_time_regressions_beyond_ratio_and_floor() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        let budgets = Budgets {
            default: Budget {
                max_time_ratio: 2.0,
                time_floor_us: 100,
                max_node_delta: 0,
            },
            per_pass: Vec::new(),
        };
        // 120µs → 230µs: under the 2× ratio (240µs), no breach.
        current.workloads[0].passes[0].median_wall_us = 230;
        assert!(compare(&current, &baseline, &budgets).unwrap().is_empty());
        // 120µs → 250µs: over the ratio, breach.
        current.workloads[0].passes[0].median_wall_us = 250;
        let breaches = compare(&current, &baseline, &budgets).unwrap();
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].what.contains("pass:tensorssa-convert"));
        // 30µs → 90µs: 3× the baseline but under the 100µs floor, no breach.
        current.workloads[0].passes[0].median_wall_us = 120;
        current.workloads[0].passes[1].median_wall_us = 90;
        assert!(compare(&current, &baseline, &budgets).unwrap().is_empty());
    }

    #[test]
    fn compare_flags_node_count_and_roster_changes() {
        let baseline = sample_report();
        let budgets = Budgets::default();
        let mut current = baseline.clone();
        current.workloads[0].nodes += 1;
        let breaches = compare(&current, &baseline, &budgets).unwrap();
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].what.contains("nodes"));

        let mut current = baseline.clone();
        current.workloads[0].passes.pop();
        let breaches = compare(&current, &baseline, &budgets).unwrap();
        assert_eq!(breaches.len(), 1);
        assert!(breaches[0].what.contains("pass roster changed"));
    }

    #[test]
    fn compare_rejects_profile_mismatch() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.profile = "debug".into();
        let err = compare(&current, &baseline, &Budgets::default()).unwrap_err();
        assert!(err.contains("profile mismatch"));
    }

    #[test]
    fn alert_rules_parse_and_validate() {
        let text = r#"
# spans must never drop
[alert.spans_dropped]
metric = "tssa_obs_spans_dropped_total"
op = "gt"
threshold = 0
severity = "page"
summary = "sink dropped spans"

[alert.low_headroom]
metric = "tssa_pool_workers"
op = "lt"
threshold = 1
"#;
        let rules = parse_alert_rules(text).unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].name, "spans_dropped");
        assert_eq!(rules[0].op, AlertOp::Gt);
        assert_eq!(rules[0].severity, "page");
        assert_eq!(rules[1].op, AlertOp::Lt);
        assert_eq!(rules[1].threshold, 1.0);
        assert_eq!(rules[1].severity, "warn", "severity defaults to warn");

        assert!(
            parse_alert_rules("metric = \"x\"").is_err(),
            "key before section"
        );
        assert!(
            parse_alert_rules("[alert.x]\n").is_err(),
            "rule without metric"
        );
        assert!(
            parse_alert_rules("[alert.x]\nmetric = \"m\"\nop = \"between\"\n").is_err(),
            "unknown op"
        );
        assert!(parse_alert_rules("[watch.x]\n").is_err(), "unknown section");
    }

    #[test]
    fn exposition_parser_sums_series_and_skips_junk() {
        let text = "\
# HELP tssa_net_responses_total responses\n\
# TYPE tssa_net_responses_total counter\n\
tssa_net_responses_total{code=\"200\"} 10\n\
tssa_net_responses_total{code=\"429\"} 2.5\n\
tssa_obs_spans_dropped_total 0\n\
1a4\n\
this line is chunked-transfer noise\n\
tssa_queue_wait_us_bucket{le=\"64\"} 3\n\
tssa_queue_wait_us_bucket{le=\"128\"} 5 # {trace_id=\"00000000000000ff\"} 90\n";
        let sums = parse_exposition(text);
        assert_eq!(sums.get("tssa_net_responses_total"), Some(&12.5));
        assert_eq!(sums.get("tssa_obs_spans_dropped_total"), Some(&0.0));
        assert_eq!(
            sums.get("tssa_queue_wait_us_bucket"),
            Some(&8.0),
            "exemplar suffix is stripped, not parsed as the value"
        );
        assert!(!sums.contains_key("this"), "prose lines are skipped");
        assert!(!sums.contains_key("1a4"), "chunk-size lines are skipped");
    }

    #[test]
    fn alerts_fire_on_threshold_and_stay_silent_on_no_data() {
        let rules = parse_alert_rules(
            "[alert.dropped]\nmetric = \"dropped_total\"\nop = \"gt\"\nthreshold = 0\n\
             [alert.ghost]\nmetric = \"not_scraped\"\nop = \"gt\"\nthreshold = 0\n",
        )
        .unwrap();
        let samples = parse_exposition("dropped_total 3\n");
        let outcomes = evaluate_alerts(&rules, &samples);
        assert!(outcomes[0].firing, "3 > 0 fires");
        assert_eq!(outcomes[0].value, Some(3.0));
        assert!(!outcomes[1].firing, "absent metric never fires");
        assert_eq!(outcomes[1].value, None);

        let quiet = evaluate_alerts(&rules, &parse_exposition("dropped_total 0\n"));
        assert!(!quiet[0].firing, "0 > 0 does not fire");
    }

    #[test]
    fn checked_in_alert_rules_cover_dropped_spans() {
        // Guard the satellite requirement itself: the repo's rules file
        // must parse and must watch the span-drop counter.
        let manifest = env!("CARGO_MANIFEST_DIR");
        let text = std::fs::read_to_string(format!("{manifest}/perf/alerts.toml")).unwrap();
        let rules = parse_alert_rules(&text).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.metric == "tssa_obs_spans_dropped_total")
            .expect("a rule must watch tssa_obs_spans_dropped_total");
        assert_eq!(rule.op, AlertOp::Gt);
        assert_eq!(rule.threshold, 0.0);
        let fired = evaluate_alerts(
            std::slice::from_ref(rule),
            &parse_exposition("tssa_obs_spans_dropped_total 1\n"),
        );
        assert!(fired[0].firing, "one dropped span must page");
    }

    #[test]
    fn checked_in_alert_rules_cover_profile_merge_cost() {
        // The op-level profiler meters its own merge wall time; the rules
        // file must watch it so a runaway merge cost files a ticket.
        let manifest = env!("CARGO_MANIFEST_DIR");
        let text = std::fs::read_to_string(format!("{manifest}/perf/alerts.toml")).unwrap();
        let rules = parse_alert_rules(&text).unwrap();
        let rule = rules
            .iter()
            .find(|r| r.metric == "tssa_obs_profile_merge_us")
            .expect("a rule must watch tssa_obs_profile_merge_us");
        assert_eq!(rule.op, AlertOp::Gt);
        assert!(
            rule.threshold > 0.0,
            "merge cost is nonzero whenever the profiler runs; the rule must not fire on healthy scrapes"
        );
        let healthy = evaluate_alerts(
            std::slice::from_ref(rule),
            &parse_exposition("tssa_obs_profile_merge_us 120\n"),
        );
        assert!(!healthy[0].firing, "a healthy merge cost stays quiet");
        let runaway = evaluate_alerts(
            std::slice::from_ref(rule),
            &parse_exposition(&format!(
                "tssa_obs_profile_merge_us {}\n",
                rule.threshold + 1.0
            )),
        );
        assert!(runaway[0].firing, "a runaway merge cost must fire");
    }

    #[test]
    fn compare_flags_missing_and_extra_workloads() {
        let baseline = sample_report();
        let current = Report {
            workloads: vec![WorkloadStat {
                name: "lstm".into(),
                nodes: 10,
                passes: Vec::new(),
            }],
            ..baseline.clone()
        };
        let breaches = compare(&current, &baseline, &Budgets::default()).unwrap();
        let texts: Vec<String> = breaches.iter().map(Breach::to_string).collect();
        assert!(texts.iter().any(|t| t.contains("missing from this run")));
        assert!(texts.iter().any(|t| t.contains("not in baseline")));
    }
}
