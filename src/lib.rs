//! Umbrella crate for the TensorSSA reproduction.
//!
//! Re-exports every subsystem crate under one roof so examples and
//! integration tests can `use tensorssa::…`. See the repository `README.md`
//! for an architecture overview and `DESIGN.md` for the system inventory.
//!
//! # Quick start
//!
//! ```
//! use tensorssa::tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Tensor::zeros(&[2, 3]);
//! let row = a.select(0, 0)?;           // a view sharing storage with `a`
//! row.fill_(1.0)?;                     // the mutation TensorSSA removes
//! assert_eq!(a.sum_all(), 3.0);
//! # Ok(())
//! # }
//! ```

pub use tssa_alias as alias;
pub use tssa_backend as backend;
pub use tssa_core as core;
pub use tssa_frontend as frontend;
pub use tssa_fusion as fusion;
pub use tssa_ir as ir;
pub use tssa_lint as lint;
pub use tssa_obs as obs;
pub use tssa_pipelines as pipelines;
pub use tssa_serve as serve;
pub use tssa_tensor as tensor;
pub use tssa_workloads as workloads;
