#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#     bash scripts/ci.sh
#
# Every step must pass. The same commands are what reviewers run locally;
# the workspace is fully offline (external deps are vendored shims under
# vendor/), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo build --examples"
cargo build --examples

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

step "trace_dump example (end-to-end trace invariants)"
# Serves one traced attention request and asserts the trace's shape: the
# expected top-level spans, >= 3 nesting levels, per-pass timings covering
# >= 90% of the compile span, and a Chrome-trace export that parses.
cargo run --release --example trace_dump
test -s target/trace_dump.json
# Cross-check the export with an independent JSON parser when available.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("target/trace_dump.json") as f:
    trace = json.load(f)
names = {e["name"] for e in trace["traceEvents"]}
expected = {"request", "request:load", "compile:TensorSSA", "exec", "batch[0]"}
missing = expected - names
assert not missing, f"trace is missing spans: {missing}"
print(f"python3 cross-check: {len(trace['traceEvents'])} events, all expected spans present")
EOF
fi

step "tssa-lint over the example DSL programs"
# Fails on any Deny-level diagnostic (e.g. a shape-incompatible view chain).
cargo run --release -q --bin tssa-lint -- lint examples/dsl/*.tssa

step "tssa-lint workload purity certification"
# Lints the 8 paper workloads and proves the TensorSSA pipeline's output
# mutation-free via the effect checker (the soundness claim of §4.1).
cargo run --release -q --bin tssa-lint -- workloads

step "tssa-lint workload shape certification"
# Certifies a ShapeSignature for each compiled workload: exits nonzero when
# any output dim is data-dependent (i.e. the symbolic shape analysis cannot
# express it over the input dims), which would defeat plan reuse across
# batch sizes.
cargo run --release -q --bin tssa-lint -- shapes

step "cross-shape differential suite (one class plan per workload)"
# Sweeps every workload across six batch sizes through one cached class
# plan: outputs must match a per-shape cold compile, with exactly one
# compile per sweep and every later load admitted by the class key.
cargo test --release -q -p tssa-serve --test shape_class

step "shape-class recompile gate + perf/BENCH_9.json"
# Loads and serves all 8 workloads at six batch sizes and fails if the
# global tssa_pass_wall_us histogram records any sample after a class's
# first compile. The recompiles-avoided counts are deterministic and are
# regenerated into the committed perf/BENCH_9.json.
cargo run --release -q -p tssa-bench --bin serve_throughput -- shape-class --json perf/BENCH_9.json

step "profiling-overhead gate + perf/BENCH_10.json"
# Runs the same closed-loop load with the op-level profiler off and with
# sampled (10%) profiling attached; fails if the profiled simulated
# makespan exceeds 1.05x the unprofiled one. The simulated figures are
# deterministic and are regenerated into the committed perf/BENCH_10.json.
cargo run --release -q -p tssa-bench --bin serve_throughput -- profiling-overhead --json perf/BENCH_10.json

step "tssa-profile: fusion-group hotness ranking (8 workloads)"
# Profiles every workload under the TensorSSA pipeline and prints the
# codegen work-list; fails unless attributed op self-time covers >= 90% of
# the measured execution wall time and the flamegraph export parses as
# collapsed-stack.
cargo run --release -q -p tssa-bench --bin tssa-profile -- rank

step "serve chaos suite (210 seeded fault schedules, streaming span sink)"
# Deterministic fault injection through the full serving stack: worker
# panics, compile stalls, cache poisoning, admission bursts, slow
# executions — over mixed batch sizes riding one shape class, with every
# response checked against its request's shape. Seeds are fixed (0..210
# inside the test), so a failure here
# reproduces locally with the seed named in the assertion message. The whole
# suite runs traced into one NDJSON StreamSink and asserts the sink stayed
# healthy: zero spans dropped, every line on disk parseable.
cargo test --release -q -p tssa-serve --test chaos

step "tssa-perf: per-pass budgets vs checked-in baseline"
# Replays the 8 paper workloads through the TensorSSA pipeline and fails
# when any pass's median wall time breaches perf/budgets.toml against the
# committed perf/BENCH_5.json, or any output graph's node count changes.
cargo run --release -q --bin tssa-perf -- check

step "tssa-perf: negative selftest (the gate must be able to fail)"
# Doctors a baseline in memory and requires the comparison logic to flag
# it — a perf gate that cannot fail is not a gate.
cargo run --release -q --bin tssa-perf -- selftest-negative

step "tssa-serve-bin boot smoke (ephemeral port, scrape, SIGTERM drain)"
# Boots the network front-end on an ephemeral port, sends one real infer
# request and one /metrics scrape over TCP, then proves SIGTERM drains
# cleanly: the process must exit 0 on its own.
BIN_LOG="$(mktemp)"
SCRAPE="$(mktemp)"
SPANS="$(mktemp -d)/spans.ndjson"
# Run the binary directly (built by the workspace build step): a `cargo
# run &` would background cargo itself and SIGTERM would never reach the
# server. --spans turns on the streaming sink so the scrape carries the
# tssa_obs_* counters the alert gate below watches.
./target/release/tssa-serve-bin --addr 127.0.0.1:0 --spans "$SPANS" >"$BIN_LOG" 2>&1 &
BIN_PID=$!
PORT=""
for _ in $(seq 1 100); do
  PORT="$(sed -n 's/.*listening on [^:]*:\([0-9]*\)$/\1/p' "$BIN_LOG" | head -n1)"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "tssa-serve-bin never reported its port"; cat "$BIN_LOG"; kill "$BIN_PID" 2>/dev/null; exit 1; }
BODY='{"model": "default", "inputs": [{"tensor": {"shape": [2, 4], "data": [1, 1, 1, 1, 1, 1, 1, 1]}}]}'
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'POST /v1/infer HTTP/1.1\r\nHost: ci\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' "${#BODY}" "$BODY" >&3
INFER_RESPONSE="$(cat <&3)"
exec 3<&- 3>&-
echo "$INFER_RESPONSE" | grep -q "200 OK" || { echo "infer smoke failed: $INFER_RESPONSE"; kill "$BIN_PID"; exit 1; }
echo "$INFER_RESPONSE" | grep -q '"ok":true' || { echo "infer body wrong: $INFER_RESPONSE"; kill "$BIN_PID"; exit 1; }
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /metrics HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
cat <&3 >"$SCRAPE"
exec 3<&- 3>&-
grep -q "tssa_queue_wait_us" "$SCRAPE" || { echo "/metrics scrape missing queue-wait series"; kill "$BIN_PID"; exit 1; }
grep -q "tssa_autoscaler_workers" "$SCRAPE" || { echo "/metrics scrape missing autoscaler series"; kill "$BIN_PID"; exit 1; }
grep -q "tssa_obs_spans_dropped_total" "$SCRAPE" || { echo "/metrics scrape missing sink series"; kill "$BIN_PID"; exit 1; }
grep -q "tssa_obs_profile_merge_us" "$SCRAPE" || { echo "/metrics scrape missing profiler series"; kill "$BIN_PID"; exit 1; }
# The op-level profiler is on by default (sampled at 10%); its debug
# endpoint must serve the merged table.
exec 3<>"/dev/tcp/127.0.0.1/$PORT"
printf 'GET /debug/profile HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
PROFILE_RESPONSE="$(cat <&3)"
exec 3<&- 3>&-
echo "$PROFILE_RESPONSE" | grep -q '"total_self_us"' || { echo "/debug/profile missing totals: $PROFILE_RESPONSE"; kill "$BIN_PID"; exit 1; }
# The scrape doubles as the input to the alert gate below.
kill -TERM "$BIN_PID"
DRAIN_OK=""
for _ in $(seq 1 100); do
  if ! kill -0 "$BIN_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
  sleep 0.1
done
[ -n "$DRAIN_OK" ] || { echo "tssa-serve-bin did not exit after SIGTERM"; kill -9 "$BIN_PID"; exit 1; }
wait "$BIN_PID" && echo "boot smoke: infer 200, metrics scraped, SIGTERM drained, exit 0"

step "warm-restart smoke (persistent plan cache across SIGTERM)"
# Boots with --cache-dir, serves one request, drains on SIGTERM, then
# reboots against the same directory — at --example-batch 3, a batch size
# the first boot never compiled. The class entry on disk must admit it:
# the second boot's load comes from disk (tssa_plan_cache_disk_hits_total
# >= 1) without recompiling (no tssa_pass_wall_us samples on the warm
# scrape).
CACHE_DIR="$(mktemp -d)"
WARM_LOG="$(mktemp)"
WARM_SCRAPE="$(mktemp)"
for BOOT in cold warm; do
  : >"$WARM_LOG"
  EXAMPLE_BATCH=2
  [ "$BOOT" = warm ] && EXAMPLE_BATCH=3
  ./target/release/tssa-serve-bin --addr 127.0.0.1:0 --cache-dir "$CACHE_DIR" --example-batch "$EXAMPLE_BATCH" >"$WARM_LOG" 2>&1 &
  WARM_PID=$!
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/.*listening on [^:]*:\([0-9]*\)$/\1/p' "$WARM_LOG" | head -n1)"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "warm-restart: $BOOT boot never reported its port"; cat "$WARM_LOG"; kill "$WARM_PID" 2>/dev/null; exit 1; }
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'POST /v1/infer HTTP/1.1\r\nHost: ci\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' "${#BODY}" "$BODY" >&3
  cat <&3 | grep -q '"ok":true' || { echo "warm-restart: $BOOT boot infer failed"; kill "$WARM_PID"; exit 1; }
  exec 3<&- 3>&-
  exec 3<>"/dev/tcp/127.0.0.1/$PORT"
  printf 'GET /metrics HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' >&3
  cat <&3 >"$WARM_SCRAPE"
  exec 3<&- 3>&-
  kill -TERM "$WARM_PID"
  DRAIN_OK=""
  for _ in $(seq 1 100); do
    if ! kill -0 "$WARM_PID" 2>/dev/null; then DRAIN_OK=1; break; fi
    sleep 0.1
  done
  [ -n "$DRAIN_OK" ] || { echo "warm-restart: $BOOT boot did not drain"; kill -9 "$WARM_PID"; exit 1; }
  wait "$WARM_PID" || { echo "warm-restart: $BOOT boot exited nonzero"; exit 1; }
done
DISK_HITS="$(sed -n 's/^tssa_plan_cache_disk_hits_total \([0-9]*\).*/\1/p' "$WARM_SCRAPE" | head -n1)"
[ -n "$DISK_HITS" ] && [ "$DISK_HITS" -ge 1 ] || { echo "warm boot never hit the disk cache (disk_hits=$DISK_HITS)"; exit 1; }
if grep -q '^tssa_pass_wall_us' "$WARM_SCRAPE"; then
  echo "warm boot recompiled (pass timings present on the warm scrape)"; exit 1
fi
# The smoke request rode the disk-loaded class at a batch size ([2, 4])
# different from the warm boot's example: its per-bucket hit counter must
# be on the scrape.
grep -q 'tssa_plan_class_hits_total{bucket="2x4",plan="default"}' "$WARM_SCRAPE" \
  || { echo "warm scrape missing the per-bucket class-hit counter"; exit 1; }
rm -rf "$CACHE_DIR" "$WARM_LOG" "$WARM_SCRAPE"
echo "warm-restart smoke: disk_hits=$DISK_HITS, zero recompiles on warm boot, class bucket counter live"

step "tssa-perf: alert rules vs the live scrape"
# Evaluates perf/alerts.toml against the /metrics scrape captured above;
# a dropped span or runtime execution failure in the smoke run fails CI.
cargo run --release -q --bin tssa-perf -- alerts --exposition "$SCRAPE"
rm -f "$BIN_LOG" "$SCRAPE"

step "differential fuzz smoke (200 seeds)"
# Random imperative programs (views + mutations + nested control flow)
# executed by the reference interpreter before and after the full TensorSSA
# pipeline; any numeric divergence fails the build.
cargo run --release -q --bin tssa-lint -- fuzz --seeds 200

printf '\nCI: all checks passed.\n'
