#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#     bash scripts/ci.sh
#
# Every step must pass. The same commands are what reviewers run locally;
# the workspace is fully offline (external deps are vendored shims under
# vendor/), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo build --examples"
cargo build --examples

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

step "trace_dump example (end-to-end trace invariants)"
# Serves one traced attention request and asserts the trace's shape: the
# expected top-level spans, >= 3 nesting levels, per-pass timings covering
# >= 90% of the compile span, and a Chrome-trace export that parses.
cargo run --release --example trace_dump
test -s target/trace_dump.json
# Cross-check the export with an independent JSON parser when available.
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json
with open("target/trace_dump.json") as f:
    trace = json.load(f)
names = {e["name"] for e in trace["traceEvents"]}
expected = {"request", "request:load", "compile:TensorSSA", "exec", "batch[0]"}
missing = expected - names
assert not missing, f"trace is missing spans: {missing}"
print(f"python3 cross-check: {len(trace['traceEvents'])} events, all expected spans present")
EOF
fi

printf '\nCI: all checks passed.\n'
