#!/usr/bin/env bash
# Repository CI gate. Run from the repo root:
#
#     bash scripts/ci.sh
#
# Every step must pass. The same commands are what reviewers run locally;
# the workspace is fully offline (external deps are vendored shims under
# vendor/), so no network access is required.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo fmt --check"
cargo fmt --check

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo build --examples"
cargo build --examples

step "cargo test --workspace -q"
cargo test --workspace -q

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -q -- -D warnings

printf '\nCI: all checks passed.\n'
