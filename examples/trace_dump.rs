//! Trace one attention request end to end and export the span tree.
//!
//! ```text
//! cargo run --release --example trace_dump
//! ```
//!
//! Serves a single attention request through `tssa-serve` with a tracer
//! installed, then:
//!
//! 1. prints the span tree as indented text (the walkthrough in
//!    `EXPERIMENTS.md`);
//! 2. writes `target/trace_dump.json` in Chrome-trace format (open it at
//!    `chrome://tracing` or <https://ui.perfetto.dev>);
//! 3. validates the export with the built-in JSON parser and asserts the
//!    trace's shape: the expected top-level spans are present, the request
//!    tree is at least three levels deep, and the per-pass spans account
//!    for at least 90% of the compile span.
//!
//! Any violated expectation panics, so CI can run this example as a gate.

use tensorssa::backend::RtValue;
use tensorssa::obs::{chrome_trace_json, json, text_tree, SpanRecord, Tracer};
use tensorssa::serve::{BatchSpec, PipelineKind, ServeConfig, Service};
use tensorssa::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (tracer, sink) = Tracer::ring(4096);

    // One attention request through the full service path: load (compile)
    // then submit → queue → batch → exec.
    let workload = Workload::by_name("attention").expect("known workload");
    let inputs: Vec<RtValue> = workload.inputs(2, 24, 11);
    let service = Service::new(
        ServeConfig::default()
            .with_workers(1)
            .with_tracer(tracer.clone()),
    );
    let model = service
        .loader(workload.source)
        .pipeline(PipelineKind::TensorSsa)
        .example(&inputs)
        .batch(BatchSpec::unbatched(inputs.len()))
        .load()?;
    let response = service.submit(&model, inputs)?.wait()?;
    println!(
        "attention request served: {} output(s), {}",
        response.outputs.len(),
        response.stats
    );
    service.shutdown();

    let records = sink.snapshot();
    assert!(sink.dropped() == 0, "ring buffer must not drop spans here");

    println!("\n=== span tree ===\n{}", text_tree(&records));

    // Export and re-validate with the dependency-free JSON parser.
    let chrome = chrome_trace_json(&records);
    let out_path = std::path::Path::new("target").join("trace_dump.json");
    std::fs::create_dir_all("target")?;
    std::fs::write(&out_path, &chrome)?;
    println!("chrome trace written to {}", out_path.display());

    let parsed = json::parse(&chrome).expect("exported trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(json::JsonValue::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), records.len(), "one event per span");
    let event_names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(json::JsonValue::as_str))
        .collect();
    for expected in [
        "request:load",
        "compile:TensorSSA",
        "request",
        "queue",
        "batch",
        "exec",
        "batch[0]",
    ] {
        assert!(
            event_names.contains(&expected),
            "trace is missing the {expected} span"
        );
    }

    // The request tree must nest at least three levels: request → batch →
    // exec → batch[0].
    let by_id: std::collections::HashMap<u64, &SpanRecord> =
        records.iter().map(|r| (r.id, r)).collect();
    let depth_of = |record: &SpanRecord| {
        let mut depth = 0;
        let mut cursor = record.parent;
        while let Some(id) = cursor {
            depth += 1;
            cursor = by_id.get(&id).and_then(|r| r.parent);
        }
        depth
    };
    let max_depth = records.iter().map(depth_of).max().unwrap_or(0);
    assert!(
        max_depth >= 3,
        "expected >= 3 nesting levels, got {max_depth}"
    );

    // Per-pass attribution must be airtight: the compile span's children
    // (graph capture + one span per pass) cover at least 90% of it.
    let compile = records
        .iter()
        .find(|r| r.name == "compile:TensorSSA")
        .expect("compile span");
    let children: Vec<&SpanRecord> = records
        .iter()
        .filter(|r| r.parent == Some(compile.id))
        .collect();
    let pass_count = children.iter().filter(|r| r.category == "pass").count();
    assert!(pass_count >= 5, "expected the TensorSSA pass sequence");
    let child_sum: u64 = children.iter().map(|r| r.dur_ns).sum();
    let coverage = child_sum as f64 / compile.dur_ns.max(1) as f64;
    println!(
        "compile span: {:.1}us across {} children ({} passes), {:.1}% attributed",
        compile.dur_ns as f64 / 1_000.0,
        children.len(),
        pass_count,
        coverage * 100.0
    );
    assert!(
        coverage >= 0.9,
        "per-pass spans cover only {:.1}% of the compile span",
        coverage * 100.0
    );
    assert!(coverage <= 1.05, "children exceed their parent span");

    println!("trace_dump: all trace invariants hold.");
    Ok(())
}
