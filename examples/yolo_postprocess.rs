//! Compare all five pipelines on the YOLOv3 post-processing workload —
//! the bounding-box decode the paper's introduction motivates.
//!
//! ```text
//! cargo run --release --example yolo_postprocess
//! ```

use tensorssa::backend::DeviceProfile;
use tensorssa::pipelines::all_pipelines;
use tensorssa::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::by_name("yolov3").expect("built-in workload");
    let graph = workload.graph()?;
    println!("=== YOLOv3 post-processing (imperative capture) ===\n{graph}");

    let inputs = workload.inputs(4, 0, 2024);
    let device = DeviceProfile::consumer();

    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>10}",
        "pipeline", "launches", "device(us)", "host(us)", "total(us)"
    );
    let mut eager_total = None;
    for pipeline in all_pipelines() {
        let compiled = pipeline.compile(&graph);
        let (_, stats) = compiled.run(device.clone(), &inputs)?;
        let total = stats.total_us();
        let eager = *eager_total.get_or_insert(total);
        println!(
            "{:<22} {:>10} {:>12.1} {:>12.1} {:>10.1}  ({:.2}x)",
            pipeline.name(),
            stats.kernel_launches,
            stats.device_ns / 1000.0,
            stats.host_ns / 1000.0,
            total,
            eager / total,
        );
    }
    Ok(())
}
