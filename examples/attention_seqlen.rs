//! Sweep the attention workload over sequence lengths (the shape of the
//! paper's Figure 8): latency should grow linearly, with TensorSSA below
//! the baselines at every point thanks to horizontal parallelization of the
//! causal-masking loop.
//!
//! ```text
//! cargo run --release --example attention_seqlen
//! ```

use tensorssa::backend::DeviceProfile;
use tensorssa::pipelines::all_pipelines;
use tensorssa::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = Workload::by_name("attention").expect("built-in workload");
    let graph = workload.graph()?;
    let device = DeviceProfile::datacenter();
    let seqs = [4usize, 8, 16, 32, 64];

    print!("{:<22}", "pipeline");
    for s in seqs {
        print!("{:>12}", format!("seq={s}"));
    }
    println!();
    for pipeline in all_pipelines() {
        let compiled = pipeline.compile(&graph);
        print!("{:<22}", pipeline.name());
        for s in seqs {
            let inputs = workload.inputs(0, s, 99);
            let (_, stats) = compiled.run(device.clone(), &inputs)?;
            print!("{:>12}", format!("{:.0}us", stats.total_us()));
        }
        println!();
    }
    Ok(())
}
