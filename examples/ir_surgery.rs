//! Build graph IR directly with the builder API (no DSL), run alias
//! analysis, apply the TensorSSA conversion, and inspect every stage —
//! the workflow of someone extending the compiler.
//!
//! ```text
//! cargo run --example ir_surgery
//! ```

use tensorssa::alias::AliasAnalysis;
use tensorssa::core::passes::dce;
use tensorssa::core::{convert_to_tensorssa, defunctionalize};
use tensorssa::ir::{Graph, MutateKind, Op, Type, ViewKind};

fn main() {
    // b = x.clone(); v = b[0]; v.relu_(); return b
    let mut g = Graph::new();
    let x = g.add_input("x", Type::Tensor);
    let clone = g.append(g.top(), Op::CloneOp, &[x], &[Type::Tensor]);
    let b = g.out(clone);
    let zero = g.constant_int(0);
    let sel = g.append(
        g.top(),
        Op::View(ViewKind::Select { dim: 0 }),
        &[b, zero],
        &[Type::Tensor],
    );
    let v = g.out(sel);
    g.append(g.top(), Op::Mutate(MutateKind::Relu), &[v], &[Type::Tensor]);
    g.set_returns(g.top(), &[b]);
    g.verify().expect("well-formed by construction");
    println!("=== imperative ===\n{g}");

    // Alias analysis: the view must-aliases the clone, and together they form
    // one functionalization candidate.
    let analysis = AliasAnalysis::build(&g);
    println!(
        "alias: must_alias(v, b) = {}, candidates = {}",
        analysis.must_alias(v, b),
        analysis.candidates().len()
    );

    let stats = convert_to_tensorssa(&mut g);
    dce(&mut g);
    println!("\n=== TensorSSA form ({stats:?}) ===\n{g}");

    // Round-trip: convert the immutable operators back to views/mutations
    // (§3.2 "flexibility").
    let defn = defunctionalize(&mut g);
    dce(&mut g);
    println!("=== defunctionalized again ({defn:?}) ===\n{g}");
    g.verify().expect("still well-formed");
}
