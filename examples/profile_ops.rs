//! Per-operator cost breakdown of a workload before and after TensorSSA —
//! shows *where* the time goes (the paper's §5.2 analysis that view/mutation
//! operators dominate the imperative programs).
//!
//! ```text
//! cargo run --release --example profile_ops [workload]
//! ```

use tensorssa::backend::{DeviceProfile, ExecConfig, Executor};
use tensorssa::pipelines::{Pipeline, TensorSsa};
use tensorssa::workloads::Workload;

fn print_profile(title: &str, entries: &[(String, tensorssa::backend::OpProfile)]) {
    println!("\n== {title} ==");
    println!(
        "{:<26} {:>6} {:>9} {:>12} {:>12}",
        "operator", "count", "launches", "device(us)", "host(us)"
    );
    for (name, p) in entries.iter().take(12) {
        println!(
            "{:<26} {:>6} {:>9} {:>12.1} {:>12.1}",
            name,
            p.count,
            p.launches,
            p.device_ns / 1000.0,
            p.host_ns / 1000.0
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "lstm".into());
    let workload = Workload::by_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let graph = workload.graph()?;
    let inputs = workload.inputs(0, 0, 7);

    let eager =
        Executor::with_profiling(ExecConfig::eager().with_device(DeviceProfile::consumer()));
    let (_, eager_stats) = eager.run(&graph, &inputs)?;
    print_profile(
        &format!("{name} — eager ({eager_stats})"),
        &eager.take_profile(),
    );

    let compiled = TensorSsa::default().compile(&graph);
    let ours = Executor::with_profiling(
        compiled
            .exec_config
            .clone()
            .with_device(DeviceProfile::consumer()),
    );
    let (_, our_stats) = ours.run(&compiled.graph, &inputs)?;
    print_profile(
        &format!("{name} — TensorSSA ({our_stats})"),
        &ours.take_profile(),
    );
    Ok(())
}
