//! Tooling tour: static shape inference and Graphviz export on a workload.
//!
//! ```text
//! cargo run --example inspect_tools [workload] > graph.dot
//! ```
//!
//! stderr shows the inferred shapes; stdout is a DOT document you can render
//! with `dot -Tsvg graph.dot`.

use tensorssa::backend::RtValue;
use tensorssa::ir::{infer_shapes, to_dot};
use tensorssa::pipelines::{Pipeline, TensorSsa};
use tensorssa::workloads::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "yolov3".into());
    let workload = Workload::by_name(&name).unwrap_or_else(|| panic!("unknown workload `{name}`"));
    let graph = workload.graph()?;

    // Static shapes from the default input configuration.
    let inputs = workload.inputs(0, 0, 1);
    let input_shapes: Vec<Option<Vec<usize>>> = inputs
        .iter()
        .map(|v| match v {
            RtValue::Tensor(t) => Some(t.shape().to_vec()),
            _ => None,
        })
        .collect();
    let info = infer_shapes(&graph, &input_shapes);
    eprintln!("== inferred output shapes ({name}) ==");
    for (i, &ret) in graph.block(graph.top()).returns.iter().enumerate() {
        match info.shape(ret) {
            Some(shape) => {
                let rendered: Vec<String> = shape.iter().map(|d| d.to_string()).collect();
                eprintln!("  output {i}: [{}]", rendered.join(", "));
            }
            None => eprintln!("  output {i}: unknown"),
        }
    }

    // DOT of the optimized form.
    let compiled = TensorSsa::default().compile(&graph);
    println!("{}", to_dot(&compiled.graph));
    Ok(())
}
