//! Quickstart: capture an imperative tensor program, functionalize it with
//! TensorSSA, and execute both forms.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tensorssa::backend::{DeviceProfile, RtValue};
use tensorssa::frontend::compile;
use tensorssa::pipelines::{Eager, Pipeline, TensorSsa};
use tensorssa::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Figure 4): mutate each row of a tensor
    // inside a loop, through a view.
    let source = "def add_rows(b0: Tensor, n: int):
    b = b0.clone()
    for i in range(n):
        b[i] = sigmoid(b[i]) + 1.0
    return b
";
    let graph = compile(source)?;
    println!("=== captured imperative IR ===\n{graph}");

    let eager = Eager.compile(&graph);
    let ours = TensorSsa::default().compile(&graph);
    println!(
        "=== after TensorSSA + fusion + parallelization ===\n{}",
        ours.graph
    );
    println!(
        "conversion: {:?}\nfusion groups: {}  parallel loops: {}",
        ours.conversion, ours.fusion_groups, ours.parallel_loops
    );

    let inputs = [
        RtValue::Tensor(Tensor::rand_uniform(&[64, 32], -1.0, 1.0, 7)),
        RtValue::Int(64),
    ];
    let (eager_out, eager_stats) = eager.run(DeviceProfile::consumer(), &inputs)?;
    let (our_out, our_stats) = ours.run(DeviceProfile::consumer(), &inputs)?;

    assert!(
        eager_out[0]
            .as_tensor()?
            .allclose(our_out[0].as_tensor()?, 1e-5),
        "results must agree"
    );
    println!("\neager:     {eager_stats}");
    println!("tensorssa: {our_stats}");
    println!(
        "speedup {:.2}x, kernel launches {} -> {}",
        eager_stats.total_ns() / our_stats.total_ns(),
        eager_stats.kernel_launches,
        our_stats.kernel_launches
    );
    Ok(())
}
